//! Noise analysis: why genetic circuits need stochastic verification.
//!
//! The paper's premise is McAdams & Arkin's "It's a noisy business" [6]:
//! molecule counts are small, so deterministic ODEs mislead. This
//! example quantifies that for the Figure 1 AND gate: it runs a
//! 64-replicate stochastic ensemble, compares the ensemble mean to the
//! RK4 ODE solution, and reports the noise statistics (standard
//! deviation, Fano factor, coefficient of variation, decorrelation
//! time) that determine how long the logic analyzer must observe each
//! input combination.
//!
//! Run with `cargo run --release --example noise_analysis`.

use genetic_logic::gates::catalog;
use genetic_logic::ssa::{ode, run_ensemble, CompiledModel, Direct};
use genetic_logic::vasim::stats::{self, ensemble_noise};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = catalog::by_id("book_and").expect("catalog circuit");
    // Both inputs present: GFP should settle high.
    let mut model = circuit.model.clone();
    model.set_initial_amount("LacI", 15.0);
    model.set_initial_amount("TetR", 15.0);
    let compiled = CompiledModel::new(&model)?;

    println!("ensemble vs ODE for {} (both inputs at 15)\n", circuit.id);
    let ensemble = run_ensemble(&compiled, || Box::new(Direct::new()), 64, 800.0, 20.0, 7, 4)?;
    let ode_trace = ode::integrate(&compiled, 800.0, 0.002, 20.0)?;

    println!(
        "{:>6} {:>12} {:>12} {:>6} {:>6} {:>10}",
        "t", "SSA mean GFP", "SSA std", "Fano", "CV", "ODE GFP"
    );
    // Every noise figure reads straight off the ensemble moments (the
    // same mergeable partial aggregate the glc-worker protocol ships) —
    // nothing is re-derived from raw replicate traces.
    let noise = ensemble_noise(&ensemble, "GFP").expect("GFP recorded");
    let ode_gfp = ode_trace.series("GFP").unwrap();
    for (point, ode_value) in noise.iter().zip(ode_gfp).step_by(5) {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>6.2} {:>6.2} {:>10.1}",
            point.t, point.mean, point.std_dev, point.fano, point.cv, ode_value
        );
    }

    // Single-trajectory noise statistics at stationarity.
    let single = genetic_logic::ssa::simulate(&compiled, &mut Direct::new(), 6000.0, 1.0, 3)?;
    let window = &single.series("GFP").unwrap()[1000..];
    let s = stats::stats(window);
    println!("\nstationary single-trajectory statistics of GFP:");
    println!(
        "  mean {:.1}   std {:.1}   Fano {:.2}   CV {:.2}   min {:.0}   max {:.0}",
        s.mean, s.std_dev, s.fano, s.cv, s.min, s.max
    );
    match stats::decorrelation_lag(window, 500) {
        Some(lag) => println!(
            "  decorrelation time ≈ {lag} t.u. — hold times must be many times this \
             for Case_I streams to sample independent states"
        ),
        None => println!("  noise does not decorrelate within 500 t.u."),
    }

    // The punchline: the ODE says "always exactly the same level"; the
    // ensemble spread is what the threshold + filters have to survive.
    let final_std = noise.last().unwrap().std_dev;
    println!(
        "\nODE predicts a noiseless {:.1}; the real spread is ±{final_std:.1} molecules —",
        ode_gfp.last().unwrap()
    );
    println!("this is why the paper digitizes with a threshold and filters variation.");
    Ok(())
}
