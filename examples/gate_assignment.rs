//! Gate assignment: pick repressors to maximize the noise margin.
//!
//! Cello's central optimization chooses *which* library repressor
//! implements each gate of a netlist; a poor assignment leaves some
//! input combination's output too close to the threshold, and the logic
//! analyzer then reports instability or wrong states. This example
//! scores the default assignment of a synthesized circuit, deliberately
//! scrambles it, re-optimizes with the hill-climbing search, and shows
//! the effect on the analyzer's verdict end to end.
//!
//! Run with `cargo run --release --example gate_assignment`.

use genetic_logic::core::{verify, AnalyzerConfig, LogicAnalyzer, TruthTable};
use genetic_logic::gates::assign;
use genetic_logic::gates::compile::compile;
use genetic_logic::gates::netlist::{Gate, Netlist};
use genetic_logic::gates::synth::synthesize;
use genetic_logic::vasim::{Experiment, ExperimentConfig};

fn analyze(netlist: &Netlist, expected: &TruthTable) -> Result<String, Box<dyn std::error::Error>> {
    let model = compile(netlist)?;
    let config = ExperimentConfig::new(1000.0, 15.0);
    let result =
        Experiment::new(config).run(&model, netlist.input_names(), netlist.output_name(), 17)?;
    let report = LogicAnalyzer::new(AnalyzerConfig::new(15.0)).analyze(&result.data)?;
    let verdict = verify(&report, expected);
    Ok(format!(
        "{} (fitness {:.2}%) — {}",
        report.expression, report.fitness, verdict
    ))
}

fn reassigned(netlist: &Netlist, names: Vec<String>) -> Netlist {
    let gates: Vec<Gate> = netlist
        .gates()
        .iter()
        .zip(names)
        .map(|(g, repressor)| Gate {
            repressor,
            inputs: g.inputs.clone(),
        })
        .collect();
    Netlist::new(
        netlist.input_names().to_vec(),
        netlist.output_name(),
        gates,
        netlist.outputs().to_vec(),
        netlist.is_constitutive(),
    )
    .expect("structure preserved")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let expected = TruthTable::from_hex(3, 0x1C);
    let netlist = synthesize(&expected, &["IPTG", "aTc", "Ara"], "YFP");
    println!("circuit 0x1C: {} gates\n", netlist.gate_count());

    let default_score = assign::evaluate(&netlist, 15.0);
    println!(
        "default assignment  {:?}\n  margin {:.1} (on_min {:.1} / off_max {:.1})",
        netlist
            .gates()
            .iter()
            .map(|g| g.repressor.as_str())
            .collect::<Vec<_>>(),
        default_score.margin,
        default_score.on_min,
        default_score.off_max
    );
    println!("  analyzer: {}\n", analyze(&netlist, &expected)?);

    // Scramble: rotate the assignment so response curves mismatch their
    // positions in the cascade.
    let mut names: Vec<String> = netlist
        .gates()
        .iter()
        .map(|g| g.repressor.clone())
        .collect();
    names.rotate_left(1);
    let scrambled = reassigned(&netlist, names);
    let scrambled_score = assign::evaluate(&scrambled, 15.0);
    println!(
        "scrambled assignment  {:?}\n  margin {:.1}",
        scrambled
            .gates()
            .iter()
            .map(|g| g.repressor.as_str())
            .collect::<Vec<_>>(),
        scrambled_score.margin
    );
    println!("  analyzer: {}\n", analyze(&scrambled, &expected)?);

    // Optimize from the scrambled start.
    let (optimized, optimized_score) = assign::optimize(&scrambled, 15.0);
    println!(
        "optimized assignment  {:?}\n  margin {:.1} (on_min {:.1} / off_max {:.1})",
        optimized
            .gates()
            .iter()
            .map(|g| g.repressor.as_str())
            .collect::<Vec<_>>(),
        optimized_score.margin,
        optimized_score.on_min,
        optimized_score.off_max
    );
    println!("  analyzer: {}", analyze(&optimized, &expected)?);
    assert!(optimized_score.margin >= scrambled_score.margin);
    Ok(())
}
