//! Robustness analysis: how parameter choices change verified behaviour.
//!
//! The paper's conclusion: "the circuit may not behave as expected if
//! the circuit parameter(s), like threshold value, are varied. This may
//! help users to analyze the circuit's behavior and robustness for
//! different parameter sets before creating them in the laboratory."
//! This example sweeps the threshold/input level across a range for one
//! circuit, reporting for each point the extracted expression, fitness,
//! wrong states and total output variation — plus D-VASim-style
//! automatic threshold and propagation-delay estimates to suggest a
//! good operating point.
//!
//! Run with `cargo run --release --example threshold_robustness`.

use genetic_logic::core::{verify, AnalyzerConfig, LogicAnalyzer};
use genetic_logic::gates::catalog;
use genetic_logic::vasim::{estimate_delay, estimate_threshold, Experiment, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = catalog::by_id("cello_0x04").expect("catalog circuit");
    println!("robustness sweep of {} ({})\n", entry.id, entry.description);

    // First, the automated D-VASim-style calibration: estimate the
    // circuit's natural threshold and propagation delay.
    let calibration = Experiment::new(ExperimentConfig::new(800.0, 15.0).repeats(2)).run(
        &entry.model,
        &entry.inputs,
        &entry.output,
        11,
    )?;
    match estimate_threshold(&calibration) {
        Ok(est) => {
            println!(
                "estimated threshold: {:.1} (low {:.1} / high {:.1}, separation {:.1})",
                est.threshold, est.low_mean, est.high_mean, est.separation
            );
            if let Ok(delay) = estimate_delay(&calibration, est.threshold) {
                println!(
                    "estimated propagation delay: mean {:.0} t.u., max {:.0} t.u.",
                    delay.mean, delay.max
                );
            }
        }
        Err(err) => println!("calibration failed: {err}"),
    }
    println!();

    println!(
        "{:>9} | {:<30} | {:>8} | {:>7} | wrong states",
        "threshold", "extracted expression", "fitness", "Var tot"
    );
    for threshold in [3.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0] {
        let config = ExperimentConfig::paper_protocol(entry.inputs.len(), threshold);
        let result = Experiment::new(config).run(&entry.model, &entry.inputs, &entry.output, 7)?;
        let report = LogicAnalyzer::new(AnalyzerConfig::new(threshold)).analyze(&result.data)?;
        let verdict = verify(&report, &entry.expected);
        let total_var: usize = report.combos.iter().map(|c| c.variation_count).sum();
        println!(
            "{:>9} | {:<30} | {:>7.2}% | {:>7} | {}",
            threshold,
            report.expression.to_string(),
            report.fitness,
            total_var,
            if verdict.equivalent {
                "none".to_string()
            } else {
                verdict.wrong_labels().join(", ")
            }
        );
    }
    Ok(())
}
