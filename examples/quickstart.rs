//! Quickstart: build a genetic inverter, simulate it, extract its logic.
//!
//! Walks the whole pipeline in one file:
//!
//! 1. describe a one-gate genetic circuit (a NOT gate: the input
//!    represses the reporter promoter) as a reaction-network model;
//! 2. drive it through both input states in the virtual lab;
//! 3. run the paper's logic analysis algorithm on the logged traces;
//! 4. verify the extracted Boolean expression against the intent.
//!
//! Run with `cargo run --release --example quickstart`.

use genetic_logic::core::{verify, AnalyzerConfig, LogicAnalyzer, TruthTable};
use genetic_logic::model::ModelBuilder;
use genetic_logic::vasim::{Experiment, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The circuit: LacI represses the GFP promoter (Hill repression),
    //    GFP degrades at first order. Input species are *boundary*
    //    species — the experiment clamps them from outside.
    let model = ModelBuilder::new("quickstart_inverter")
        .boundary_species("LacI", 0.0)
        .species("GFP", 0.0)
        .parameter("ymax", 3.0)
        .parameter("ymin", 0.06)
        .parameter("kdeg", 0.05)
        .reaction_full(
            "gfp_production",
            vec![],
            vec![("GFP".into(), 1)],
            vec!["LacI".into()],
            "ymin + (ymax - ymin) * hillr(LacI, 8, 3)",
        )?
        .reaction("gfp_degradation", &["GFP"], &[], "kdeg * GFP")?
        .build()?;

    // 2. The experiment: hold each input combination for 1000 time
    //    units, applying the input at the 15-molecule threshold level —
    //    the paper's protocol.
    let config = ExperimentConfig::new(1000.0, 15.0).repeats(3);
    let result = Experiment::new(config).run(&model, &["LacI".to_string()], "GFP", 42)?;
    println!(
        "simulated {} samples over {} time units",
        result.data.len(),
        result.total_time
    );

    // 3. Algorithm 1: digitize at the threshold, analyze cases and
    //    variation, apply both filters, construct the expression.
    let analyzer = LogicAnalyzer::new(AnalyzerConfig::new(15.0));
    let report = analyzer.analyze(&result.data)?;
    println!("{report}");

    // 4. Verification: the circuit was meant to be an inverter.
    let intended = TruthTable::from_hex(1, 0x1); // high only at LacI = 0
    let verdict = verify(&report, &intended);
    println!("{verdict}");
    assert!(verdict.equivalent, "the inverter should verify");
    Ok(())
}
