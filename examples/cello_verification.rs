//! Verify a Cello circuit before "building" it.
//!
//! The paper's headline use-case: a designer has a Cello-synthesized
//! circuit (named by the hex id of its intended truth table, e.g.
//! `0x0B`) and wants to check, from stochastic simulation alone, that
//! the genetic implementation really computes that function. This
//! example synthesizes the circuit from the gate library, runs the
//! paper's 10,000-t.u. protocol, and prints the Figure 4-style
//! analytics with the verification verdict.
//!
//! Pass a hex id as the first argument (default `0x0B`):
//! `cargo run --release --example cello_verification -- 0x1C`.

use genetic_logic::core::{verify, AnalyzerConfig, BoolExpr, LogicAnalyzer, TruthTable};
use genetic_logic::gates::catalog;
use genetic_logic::vasim::{Experiment, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "0x0B".to_string());
    let hex = u64::from_str_radix(arg.trim_start_matches("0x"), 16)?;
    let entry = catalog::cello(3, hex);
    let expected = TruthTable::from_hex(3, hex);

    println!("circuit: {} — {}", entry.id, entry.description);
    println!(
        "gates: {}   components: {}   intended: {}",
        entry.gate_count,
        entry.component_count,
        BoolExpr::minimized(entry.inputs.clone(), &expected)
    );
    println!();

    // The paper's protocol: every combination held 1000 t.u., inputs
    // applied at the 15-molecule threshold, full sweep repeated to fill
    // at least 10,000 t.u.
    let config = ExperimentConfig::paper_protocol(entry.inputs.len(), 15.0);
    let result = Experiment::new(config).run(&entry.model, &entry.inputs, &entry.output, 7)?;

    let report = LogicAnalyzer::new(AnalyzerConfig::new(15.0)).analyze(&result.data)?;
    println!("{report}");

    let verdict = verify(&report, &expected);
    println!("{verdict}");
    if !verdict.unobserved_wrong_states.is_empty() {
        println!(
            "note: wrong states {:?} were never exercised by the sweep — extend the protocol",
            verdict.unobserved_wrong_states
        );
    }
    Ok(())
}
