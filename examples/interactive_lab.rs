//! Interactive virtual-lab session (the D-VASim user experience).
//!
//! Drives the Figure 1 AND-gate circuit by hand: start the simulation,
//! inject inducers one at a time while it runs, watch the reporter
//! respond, then wash everything out — and finally hand the session's
//! full trace to the logic analyzer as if it were a scripted sweep.
//!
//! Run with `cargo run --release --example interactive_lab`.

use genetic_logic::core::{AnalyzerConfig, LogicAnalyzer};
use genetic_logic::gates::catalog;
use genetic_logic::vasim::VirtualLab;
use glc_core::data::AnalogData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = catalog::by_id("book_and").expect("catalog circuit");
    let mut lab = VirtualLab::load(&circuit.model, 1.0, 2024)?;

    let observe = |lab: &VirtualLab, note: &str| {
        println!(
            "t = {:>6.0}  LacI = {:>4.0}  TetR = {:>4.0}  CI = {:>5.1}  GFP = {:>5.1}   {note}",
            lab.time(),
            lab.amount("LacI").unwrap(),
            lab.amount("TetR").unwrap(),
            lab.amount("CI").unwrap(),
            lab.amount("GFP").unwrap(),
        );
    };

    println!(
        "interactive session on {} ({})\n",
        circuit.id, circuit.description
    );
    observe(&lab, "fresh cell");

    lab.run_for(600.0)?;
    observe(&lab, "settled with no inputs (CI high, GFP off)");

    lab.set_amount("LacI", 15.0)?;
    lab.run_for(600.0)?;
    observe(&lab, "LacI only — still off (AND needs both)");

    lab.set_amount("TetR", 15.0)?;
    lab.run_for(600.0)?;
    observe(&lab, "both inducers — GFP should be on");

    lab.set_amount("LacI", 0.0)?;
    lab.set_amount("TetR", 0.0)?;
    lab.run_for(600.0)?;
    observe(&lab, "washed out — GFP decays");

    lab.set_amount("TetR", 15.0)?;
    lab.run_for(600.0)?;
    observe(&lab, "TetR only — off again");

    // The session trace doubles as analyzer input: the five phases
    // covered 4 of 4 combinations (00, 10, 11, 00, 01).
    let trace = lab.into_trace();
    let inputs: Vec<(String, Vec<f64>)> = circuit
        .inputs
        .iter()
        .map(|name| (name.clone(), trace.series(name).unwrap().to_vec()))
        .collect();
    let output = (
        circuit.output.clone(),
        trace.series(&circuit.output).unwrap().to_vec(),
    );
    let report =
        LogicAnalyzer::new(AnalyzerConfig::new(15.0)).analyze(&AnalogData::new(inputs, output)?)?;
    println!("\nlogic extracted from the session:\n{report}");
    Ok(())
}
