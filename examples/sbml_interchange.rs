//! The full file-based toolchain: SBOL → SBML → simulation → analysis.
//!
//! The paper's pipeline is: Cello emits an SBOL file (structure only);
//! the SBOL→SBML converter [14] derives the behavioural model; D-VASim
//! loads the SBML, runs the experiment and logs the data; the logic
//! analyzer consumes the log. This example performs every leg with our
//! equivalents and proves each interchange step is lossless:
//!
//! 1. synthesize circuit 0x70 and serialize its *structure* to the SBOL
//!    subset;
//! 2. convert the SBOL document to a behavioural model (the role of
//!    [14]) and round-trip that model through the SBML subset;
//! 3. run the sweep experiment on the reloaded model and log the trace
//!    to CSV;
//! 4. re-read the CSV as if it came from a foreign simulator, analyze,
//!    and verify.
//!
//! Run with `cargo run --release --example sbml_interchange`.

use genetic_logic::core::{verify, AnalyzerConfig, LogicAnalyzer, TruthTable};
use genetic_logic::gates::{sbol, synth};
use genetic_logic::model::sbml;
use genetic_logic::vasim::{csv, Experiment, ExperimentConfig};
use glc_core::data::AnalogData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let expected = TruthTable::from_hex(3, 0x70);
    let inputs = ["IPTG", "aTc", "Ara"];

    // 1. Structure: synthesize and emit SBOL.
    let netlist = synth::synthesize(&expected, &inputs, "YFP");
    let sbol_doc = sbol::write(&netlist);
    println!(
        "SBOL: {} bytes describing {} gates ({} interactions)",
        sbol_doc.len(),
        netlist.gate_count(),
        sbol_doc.matches("<interaction").count()
    );

    // 2. Behaviour: SBOL → model (the converter of [14]), then prove the
    //    SBML round trip is exact.
    let model = sbol::convert(&sbol_doc)?;
    let sbml_doc = sbml::write(&model);
    let reloaded = sbml::read(&sbml_doc)?;
    assert_eq!(reloaded, model, "SBML round trip must be lossless");
    println!(
        "SBML: {} bytes, {} species, {} reactions",
        sbml_doc.len(),
        model.species().len(),
        model.reactions().len()
    );

    // 3. Experiment on the reloaded model, logged to CSV.
    let input_names: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
    let config = ExperimentConfig::paper_protocol(inputs.len(), 15.0);
    let result = Experiment::new(config).run(&reloaded, &input_names, "YFP", 5)?;
    let log = csv::to_csv(&result.trace);
    println!("CSV:  {} samples, {} bytes", result.trace.len(), log.len());

    // 4. Analyze the re-read log.
    let trace = csv::from_csv(&log)?;
    let series: Vec<(String, Vec<f64>)> = input_names
        .iter()
        .map(|name| (name.clone(), trace.series(name).unwrap().to_vec()))
        .collect();
    let output = ("YFP".to_string(), trace.series("YFP").unwrap().to_vec());
    let data = AnalogData::new(series, output)?;

    let report = LogicAnalyzer::new(AnalyzerConfig::new(15.0)).analyze(&data)?;
    let verdict = verify(&report, &expected);
    println!(
        "\nYFP = {}   (fitness {:.2}%)",
        report.expression, report.fitness
    );
    println!("{verdict}");
    assert!(verdict.equivalent);
    Ok(())
}
