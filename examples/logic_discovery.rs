//! Discover the logic of an *unknown* circuit — including its internals.
//!
//! The paper's second use-case: "it helps in extracting the Boolean
//! logic of a circuit even when the user does not have any prior
//! knowledge about its expected behaviour", and because the user picks
//! the input/output species (`IS`, `OS`) freely, the same algorithm can
//! probe *intermediate* circuit components. This example treats a
//! catalog circuit as a black box, extracts its end-to-end logic, then
//! re-runs the analysis with each internal repressor as the output to
//! reconstruct the whole gate-level structure from simulation data
//! alone.
//!
//! Run with `cargo run --release --example logic_discovery`.

use genetic_logic::core::{AnalyzerConfig, LogicAnalyzer};
use genetic_logic::gates::catalog;
use genetic_logic::vasim::{Experiment, ExperimentConfig};
use glc_core::data::AnalogData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "mystery" circuit. Pretend we only know its model, inputs and
    // which species fluoresce.
    let entry = catalog::by_id("cello_0x1C").expect("catalog circuit");
    println!("mystery circuit with inputs {:?}\n", entry.inputs);

    let config = ExperimentConfig::paper_protocol(entry.inputs.len(), 15.0);
    let result = Experiment::new(config).run(&entry.model, &entry.inputs, &entry.output, 3)?;
    let analyzer = LogicAnalyzer::new(AnalyzerConfig::new(15.0));

    // End-to-end logic.
    let report = analyzer.analyze(&result.data)?;
    println!(
        "end-to-end:   {} = {}   (fitness {:.2}%)",
        entry.output, report.expression, report.fitness
    );

    // Probe every internal species: same trace, different OS. This is
    // the paper's "Boolean logic analysis on the intermediate circuit
    // components".
    for species in entry.model.species() {
        let name = &species.id;
        if entry.inputs.contains(name) || *name == entry.output {
            continue;
        }
        let series = result
            .trace
            .series(name)
            .expect("all species are recorded")
            .to_vec();
        let inputs: Vec<(String, Vec<f64>)> = entry
            .inputs
            .iter()
            .map(|input| (input.clone(), result.trace.series(input).unwrap().to_vec()))
            .collect();
        let data = AnalogData::new(inputs, (name.clone(), series))?;
        let report = analyzer.analyze(&data)?;
        println!(
            "intermediate: {} = {}   (fitness {:.2}%)",
            name, report.expression, report.fitness
        );
    }

    println!(
        "\nground truth: {} gates, intended function 0x1C",
        entry.gate_count
    );
    Ok(())
}
