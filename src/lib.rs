//! Umbrella crate for the genetic logic analysis & verification suite.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can depend on a single package:
//!
//! * [`model`] — reaction-network models, kinetic laws, SBML-subset I/O;
//! * [`ssa`] — stochastic simulation algorithms and traces;
//! * [`gates`] — genetic gate library, netlists, synthesis, circuit catalog;
//! * [`vasim`] — virtual-lab experiments, threshold & delay analysis;
//! * [`core`] — the DATE 2017 logic analysis & verification algorithm.

pub use glc_core as core;
pub use glc_gates as gates;
pub use glc_model as model;
pub use glc_ssa as ssa;
pub use glc_vasim as vasim;
