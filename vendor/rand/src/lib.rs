//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] convenience methods
//! `gen`, `gen_range`, and `gen_bool` — backed by xoshiro256** seeded via
//! SplitMix64. The stream differs from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine: every consumer in this workspace only relies
//! on determinism for a fixed seed, not on a specific stream.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from an RNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty gen_range range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift bounded sampling (Lemire); the tiny modulo bias
        // of the plain variant is irrelevant for test data generation.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Core 64-bit random source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable random sources, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    ///
    /// Small, fast, and statistically solid for simulation workloads
    /// (passes BigCrush). Seeded through SplitMix64 per the xoshiro
    /// authors' recommendation so that low-entropy seeds (0, 1, 2, …)
    /// still produce well-mixed initial states.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
