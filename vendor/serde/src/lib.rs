//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of serde this workspace actually exercises:
//! `#[derive(Serialize, Deserialize)]` on structs and enums (including
//! `#[serde(skip)]` fields), round-tripped through `serde_json`. Instead
//! of upstream serde's zero-copy visitor architecture, both traits go
//! through an owned [`Value`] tree — dramatically simpler, and fully
//! sufficient for the JSON round trips the workspace performs.
//!
//! Encoding conventions match `serde_json`'s defaults so the derived
//! formats look familiar: structs are objects, unit enum variants are
//! strings, data-carrying variants are single-key objects.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned JSON-like value tree: the interchange form between
/// [`Serialize`], [`Deserialize`] and `serde_json`'s text layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number. Integers round-trip exactly up to 2^53, which
    /// covers every integer field in this workspace.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: the value tree did not have the expected
/// shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error for an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Num(n) => Ok(*n),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Num(n) => Ok(*n as f32),
            other => Err(DeError::expected("number", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// A value tree serializes as itself — the identity impls upstream
// serde_json provides for its `Value`, needed by callers that carry
// opaque caller-supplied JSON through typed structs (e.g. a request
// id echoed back verbatim).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == N => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(u64::from_value(&7u64.to_value()), Ok(7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, "a".to_string()), (2.0, "b".to_string())];
        let back: Vec<(f64, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<f64> = None;
        assert_eq!(opt.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        assert!(f64::from_value(&Value::Bool(true)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Num(1.0)).is_err());
        assert!(u64::from_value(&Value::Num(1.5)).is_err());
    }
}
