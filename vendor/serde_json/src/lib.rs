//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree to JSON text and parses it back.
//!
//! Numbers are written with Rust's shortest-round-trip `{:?}` formatting
//! so `f64` fields survive a text round trip bitwise. Non-finite floats
//! — which strict JSON cannot represent — are written as the tokens
//! `NaN`, `inf` and `-inf` and accepted back by the parser; this file
//! format only ever talks to itself.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(err: DeError) -> Self {
        Error(err.0)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the supported value shapes; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if n.is_nan() {
        out.push_str("NaN");
    } else if n == f64::INFINITY {
        out.push_str("inf");
    } else if n == f64::NEG_INFINITY {
        out.push_str("-inf");
    } else {
        // `{:?}` is Rust's shortest representation that parses back to
        // the same bits.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Num(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::Num(f64::INFINITY)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Value::Num(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("numeric bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        // Fast path: scan bytes to the closing quote and validate the
        // span once. Escapes drop to the per-character loop below with
        // the already-scanned prefix kept.
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'"' | b'\\' => break,
                _ => self.pos += 1,
            }
        }
        let prefix = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8".into()))?;
        if self.peek() == Some(b'"') {
            self.pos += 1;
            return Ok(prefix.to_string());
        }
        let mut out = String::from(prefix);
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe) —
                    // a scalar is at most 4 bytes, so validate only
                    // that window, not the rest of the document.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next().expect("non-empty"),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("non-empty")
                        }
                        Err(_) => return Err(Error("invalid UTF-8".into())),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!("expected `,` or `]`, got {other:?}")));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!("expected `,` or `}}`, got {other:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "1.5", "-2", "\"hi\"", "NaN", "inf"] {
            let value = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&value, &mut out);
            if json == "NaN" {
                assert_eq!(out, "NaN");
            } else if json == "-2" {
                assert_eq!(out, "-2.0");
            } else if json == "1.5" {
                assert_eq!(out, "1.5");
            } else {
                assert_eq!(out, json);
            }
        }
    }

    #[test]
    fn f64_bitwise_round_trip() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -0.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn nested_structures() {
        let value: Vec<(String, Vec<f64>)> =
            vec![("a\"b\\c".into(), vec![1.0, 2.5]), ("μ".into(), vec![])];
        let json = to_string(&value).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("\"open").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
