//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use — `Strategy` with `prop_map`/`prop_recursive`,
//! `Just`, ranges, tuples, `collection::vec`, `any::<bool>()`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!` and the `proptest!`
//! test wrapper. Differences from upstream: no shrinking (a failing case
//! panics with the drawn values unreduced) and a fixed deterministic
//! case schedule (64 cases per test, seeds 0..64), which keeps failures
//! reproducible without a persistence file.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;
use std::rc::Rc;

/// Number of cases each `proptest!` test runs.
pub const CASES: u64 = 64;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, Strategy,
    };
}

/// A source of random values of one type.
///
/// Unlike upstream proptest (value trees + shrinking), a strategy here
/// simply draws a value from an RNG.
pub trait Strategy: Clone + 'static {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone + 'static,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `f` receives a strategy for the
    /// "smaller" level and returns the strategy for one level up.
    /// `depth` bounds the recursion; the size hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        Self: Sized,
        Self::Value: 'static,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..depth {
            // Each level picks a leaf half the time, so generated trees
            // have geometrically distributed depth up to `depth`.
            strategy = oneof(vec![leaf.clone(), f(strategy).boxed()]);
        }
        strategy
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniformly picks one of the given strategies per drawn value.
pub fn oneof<T: 'static>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy {
        inner: Rc::new(move |rng: &mut TestRng| {
            let pick = rng.gen_range(0..choices.len());
            choices[pick].generate(rng)
        }),
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone + 'static,
    O: 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value" of a type (implemented for the types the
/// workspace asks for).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates an [`Any`] strategy: `any::<bool>()` etc.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

macro_rules! strategy_tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

strategy_tuple_impls! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy producing vectors whose elements come from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniformly chooses between the listed strategies (all arms must share
/// one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::oneof(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Wraps property-test functions: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            for case in 0..$crate::CASES {
                let rng = &mut <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(
                    0x5eed_0000u64 ^ case,
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn fresh_rng() -> TestRng {
        rand::SeedableRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_and_maps() {
        let mut rng = fresh_rng();
        let strategy = (0.0f64..10.0).prop_map(|x| x * 2.0);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((0.0..20.0).contains(&v));
        }
    }

    #[test]
    fn oneof_and_vec() {
        let mut rng = fresh_rng();
        let strategy = collection::vec(prop_oneof![Just(1u64), Just(2u64)], 3usize);
        for _ in 0..50 {
            let v = strategy.generate(&mut rng);
            assert_eq!(v.len(), 3);
            assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(value) => {
                    assert!(*value < 10, "leaf out of strategy range");
                    0
                }
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strategy = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = fresh_rng();
        for _ in 0..200 {
            assert!(depth(&strategy.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #[test]
        fn the_macro_works(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
            prop_assert_eq!(x + 1, 1 + x);
        }
    }
}
