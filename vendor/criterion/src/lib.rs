//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: per benchmark it warms up once, times
//! `sample_size` samples, and prints min/median/mean. No statistical
//! regression machinery; good enough to compare engines side by side
//! and to keep the bench targets compiling and runnable offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation (recorded, reported as elements/second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.criterion.sample_size),
            sample_size: self.criterion.sample_size,
        };
        routine(&mut bencher, input);
        self.report(&id.id, &bencher.samples);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.criterion.sample_size),
            sample_size: self.criterion.sample_size,
        };
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("  {}/{id}: no samples", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let mut line = format!(
            "  {}/{id}: median {median:?}  mean {mean:?}  min {:?}  ({} samples)",
            self.name,
            sorted[0],
            sorted.len()
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let rate = n as f64 / mean.as_secs_f64();
            line.push_str(&format!("  {rate:.0} elem/s"));
        }
        println!("{line}");
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times the routine under benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (plus one
    /// untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default().sample_size(3);
        sample_bench(&mut criterion);
    }
}
