//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes this workspace uses: structs with named fields (including
//! `#[serde(skip)]` fields), tuple structs, and enums with unit and tuple
//! variants. Parsing works directly on `proc_macro::TokenStream` — the
//! offline build has no `syn`/`quote` — which is manageable because the
//! supported grammar is small.
//!
//! Encoding conventions (shared with the `serde` crate's doc):
//! * named struct → object keyed by field name (skipped fields omitted,
//!   restored with `Default::default()`);
//! * newtype struct → the inner value; other tuple structs → array;
//! * unit variant → string of the variant name;
//! * tuple variant → single-key object, value = inner value (1 field) or
//!   array (n fields).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct.
struct Field {
    name: String,
    skip: bool,
}

/// One parsed enum variant: name plus tuple-field count (`None` = unit).
struct Variant {
    name: String,
    fields: Option<usize>,
}

/// The parsed shape of the derive input.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push((\"{n}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(entries)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Some(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![\
                         (\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Some(k) => {
                        let binds: Vec<String> = (0..k).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..k)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                             (\"{vn}\".to_string(), \
                             ::serde::Value::Array(::std::vec![{vals}]))]),\n",
                            binds = binds.join(", "),
                            vals = vals.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_value(value.get(\"{n}\")\
                         .ok_or_else(|| ::serde::DeError(\
                         \"missing field `{n}` in {name}\".to_string()))?)?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if !matches!(value, ::serde::Value::Object(_)) {{\n\
                 return Err(::serde::DeError::expected(\"{name} object\", value));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
            } else {
                let gets: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                     Ok({name}({gets})),\n\
                     other => Err(::serde::DeError::expected(\"{name} array\", other)),\n\
                     }}",
                    gets = gets.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.fields {
                    None => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    Some(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Some(k) => {
                        let gets: Vec<String> = (0..k)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{\n\
                             ::serde::Value::Array(items) if items.len() == {k} => \
                             Ok({name}::{vn}({gets})),\n\
                             other => Err(::serde::DeError::expected(\
                             \"{name}::{vn} fields\", other)),\n\
                             }},\n",
                            gets = gets.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 _ => Err(::serde::DeError(\
                 format!(\"unknown {name} variant `{{s}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (key, inner) = &entries[0];\n\
                 match key.as_str() {{\n\
                 {data_arms}\
                 _ => Err(::serde::DeError(\
                 format!(\"unknown {name} variant `{{key}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::DeError::expected(\"{name}\", other)),\n\
                 }}\n}}\n}}\n"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------

/// Parses the derive input item into its supported shape.
///
/// Panics with a readable message on unsupported shapes (generics,
/// struct-variant enums) — a compile error at the derive site.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => {
                panic!("serde derive stand-in: unsupported struct body for `{name}`: {other:?}")
            }
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive stand-in: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde derive stand-in: unsupported item kind `{other}`"),
    }
}

/// Skips `#[...]` attributes; returns whether any was `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    loop {
        match (tokens.get(*pos), tokens.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if attribute_is_serde_skip(g.stream()) {
                    skip = true;
                }
                *pos += 2;
            }
            _ => return skip,
        }
    }
}

/// Recognizes the content of a `#[serde(skip)]` attribute.
fn attribute_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Skips `pub` / `pub(crate)` style visibility.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(ident)) => {
            *pos += 1;
            ident.to_string()
        }
        other => panic!("serde derive stand-in: expected identifier, got {other:?}"),
    }
}

/// Parses `name: Type, ...` named-field lists, honoring `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let skip = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                panic!("serde derive stand-in: expected `:` after field `{name}`, got {other:?}")
            }
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, skip });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (angle brackets
/// tracked so `Vec<(A, B)>` style types are consumed whole).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                saw_tokens_since_comma = false;
                count += 1;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Parses enum variants (unit and tuple shapes).
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Some(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde derive stand-in: struct variant `{name}` is not supported")
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    variants
}
