//! Interchange integration: SBML and CSV round trips across the whole
//! catalog, and engine-independence of the logic verdicts.

use genetic_logic::core::{verify, AnalyzerConfig, LogicAnalyzer};
use genetic_logic::gates::catalog;
use genetic_logic::model::sbml;
use genetic_logic::ssa::{Direct, NextReaction};
use genetic_logic::vasim::{csv, Experiment, ExperimentConfig};
use glc_core::data::AnalogData;

#[test]
fn every_catalog_model_round_trips_through_sbml() {
    for entry in catalog::all() {
        let document = sbml::write(&entry.model);
        let reloaded =
            sbml::read(&document).unwrap_or_else(|e| panic!("{}: SBML read failed: {e}", entry.id));
        assert_eq!(reloaded, entry.model, "{}: SBML round trip", entry.id);
    }
}

#[test]
fn sbml_reload_preserves_simulation_behaviour() {
    // Same seed + same model (original vs round-tripped) must produce
    // identical traces.
    let entry = catalog::by_id("cello_0x04").unwrap();
    let reloaded = sbml::read(&sbml::write(&entry.model)).unwrap();
    let config = ExperimentConfig::new(300.0, 15.0);
    let a = Experiment::new(config.clone())
        .run(&entry.model, &entry.inputs, &entry.output, 8)
        .unwrap();
    let b = Experiment::new(config)
        .run(&reloaded, &entry.inputs, &entry.output, 8)
        .unwrap();
    assert_eq!(a.trace, b.trace);
}

#[test]
fn csv_logged_experiment_analyzes_identically() {
    let entry = catalog::by_id("book_nor").unwrap();
    let config = ExperimentConfig::new(400.0, 15.0).repeats(2);
    let result = Experiment::new(config)
        .run(&entry.model, &entry.inputs, &entry.output, 4)
        .unwrap();

    let direct = LogicAnalyzer::new(AnalyzerConfig::new(15.0))
        .analyze(&result.data)
        .unwrap();

    let reloaded = csv::from_csv(&csv::to_csv(&result.trace)).unwrap();
    let inputs: Vec<(String, Vec<f64>)> = entry
        .inputs
        .iter()
        .map(|name| (name.clone(), reloaded.series(name).unwrap().to_vec()))
        .collect();
    let output = (
        entry.output.clone(),
        reloaded.series(&entry.output).unwrap().to_vec(),
    );
    let from_csv = LogicAnalyzer::new(AnalyzerConfig::new(15.0))
        .analyze(&AnalogData::new(inputs, output).unwrap())
        .unwrap();

    assert_eq!(direct.minterms, from_csv.minterms);
    assert_eq!(direct.fitness, from_csv.fitness);
}

#[test]
fn direct_and_next_reaction_engines_agree_on_logic() {
    // Different exact engines produce statistically different traces but
    // the same verified logic.
    let entry = catalog::by_id("cello_0x70").unwrap();
    let config = ExperimentConfig::new(600.0, 15.0);
    for (name, engine) in [
        (
            "direct",
            &mut Direct::new() as &mut dyn genetic_logic::ssa::Engine,
        ),
        ("next-reaction", &mut NextReaction::new()),
    ] {
        let result = Experiment::new(config.clone())
            .run_with_engine(&entry.model, &entry.inputs, &entry.output, 21, engine)
            .unwrap();
        let report = LogicAnalyzer::new(AnalyzerConfig::new(15.0))
            .analyze(&result.data)
            .unwrap();
        assert!(
            verify(&report, &entry.expected).equivalent,
            "{name} engine produced wrong logic: {}",
            report.expression
        );
    }
}
