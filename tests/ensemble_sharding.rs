//! Property tests for the mergeable-partials contract: **any**
//! contiguous sharding of the replicate range `0..R` must finalize
//! bitwise-identically to the unsharded `run_ensemble`, and partial
//! merging must be associative — on real catalog circuits, for both an
//! exact engine (Direct, integer-valued traces) and the Langevin
//! engine (continuous-valued traces, where plain `f64` partial sums
//! would diverge in the last bits between groupings).
//!
//! This is the property the process-level `glc-worker` protocol stands
//! on: a coordinator may cut the replicate range anywhere and the
//! merged aggregate is still the single-process answer, bit for bit.

use genetic_logic::gates::catalog;
use genetic_logic::model::Model;
use genetic_logic::ssa::{
    run_ensemble, run_partial, CompiledModel, Direct, Engine, Ensemble, EnsemblePartial, Langevin,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn prepared(id: &str) -> CompiledModel {
    let entry = catalog::by_id(id).expect("catalog circuit");
    let mut model: Model = entry.model.clone();
    for input in &entry.inputs {
        model.set_initial_amount(input, 15.0);
    }
    CompiledModel::new(&model).expect("compiles")
}

fn assert_bitwise_equal(a: &Ensemble, b: &Ensemble, context: &str) {
    assert_eq!(a.replicates, b.replicates, "{context}: replicate counts");
    for (label, mine, theirs) in [
        ("mean", &a.mean, &b.mean),
        ("std_dev", &a.std_dev, &b.std_dev),
    ] {
        for (s, species) in mine.species().iter().enumerate() {
            for (k, (va, vb)) in mine
                .series_at(s)
                .iter()
                .zip(theirs.series_at(s))
                .enumerate()
            {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "{context}: {label} of {species} at sample {k}: {va} vs {vb}"
                );
            }
        }
    }
}

/// Turns raw picked cut points into a sorted, deduplicated partition of
/// `0..replicates` and returns the contiguous seed ranges.
fn contiguous_ranges(replicates: u64, picks: &[u64], base_seed: u64) -> Vec<(u64, u64)> {
    let mut cuts: Vec<u64> = picks
        .iter()
        .map(|p| 1 + p % replicates.max(1))
        .filter(|&c| c < replicates)
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut ranges = Vec::new();
    let mut start = 0u64;
    for cut in cuts.into_iter().chain(std::iter::once(replicates)) {
        ranges.push((base_seed + start, base_seed + cut));
        start = cut;
    }
    ranges
}

/// Shards, merges (left fold and right fold), and checks both against
/// the unsharded ensemble bitwise.
#[allow(clippy::too_many_arguments)]
fn check_sharding<F>(
    model: &CompiledModel,
    make_engine: F,
    replicates: u64,
    picks: &[u64],
    t_end: f64,
    sample_dt: f64,
    base_seed: u64,
    context: &str,
) where
    F: Fn() -> Box<dyn Engine> + Sync,
{
    let reference = run_ensemble(
        model,
        &make_engine,
        replicates as usize,
        t_end,
        sample_dt,
        base_seed,
        1,
    )
    .expect("unsharded ensemble");

    let partials: Vec<EnsemblePartial> = contiguous_ranges(replicates, picks, base_seed)
        .into_iter()
        .map(|(lo, hi)| {
            run_partial(model, &make_engine, lo..hi, t_end, sample_dt).expect("shard runs")
        })
        .collect();

    // Left fold: ((P0 + P1) + P2) + …
    let mut left = partials[0].clone();
    for partial in &partials[1..] {
        left.merge(partial).expect("merge");
    }
    // Right fold: P0 + (P1 + (P2 + …)) — associativity means the two
    // groupings agree exactly.
    let mut right = partials[partials.len() - 1].clone();
    for partial in partials[..partials.len() - 1].iter().rev() {
        let mut merged = partial.clone();
        merged.merge(&right).expect("merge");
        right = merged;
    }
    prop_assert_helper(&left, &right, &reference, context);
}

fn prop_assert_helper(
    left: &EnsemblePartial,
    right: &EnsemblePartial,
    reference: &Ensemble,
    context: &str,
) {
    assert_eq!(left, right, "{context}: merge is not associative");
    let from_left = left.finalize().expect("finalize");
    let from_right = right.finalize().expect("finalize");
    assert_bitwise_equal(&from_left, reference, &format!("{context} (left fold)"));
    assert_bitwise_equal(&from_right, reference, &format!("{context} (right fold)"));
}

proptest! {
    /// Direct method, mass-action book AND gate: integer-valued traces.
    #[test]
    fn sharding_is_bitwise_invisible_direct_book_and(
        picks in vec(0u64..8, 0usize..5),
        seed in 0u64..10_000,
    ) {
        let model = prepared("book_and");
        check_sharding(
            &model,
            || Box::new(Direct::new()),
            8,
            &picks,
            20.0,
            4.0,
            seed,
            "direct/book_and",
        );
    }

    /// Direct method on the largest Cello circuit (Hill kinetics).
    #[test]
    fn sharding_is_bitwise_invisible_direct_cello(
        picks in vec(0u64..6, 0usize..4),
        seed in 0u64..10_000,
    ) {
        let model = prepared("cello_0x1C");
        check_sharding(
            &model,
            || Box::new(Direct::new()),
            6,
            &picks,
            10.0,
            2.0,
            seed,
            "direct/cello_0x1C",
        );
    }

    /// Langevin on the Cello circuit: continuous-valued traces are the
    /// adversarial case for merge associativity — plain f64 partial
    /// sums would differ between groupings here.
    #[test]
    fn sharding_is_bitwise_invisible_langevin_cello(
        picks in vec(0u64..6, 0usize..4),
        seed in 0u64..10_000,
    ) {
        let model = prepared("cello_0x1C");
        check_sharding(
            &model,
            || Box::new(Langevin::new(0.1).expect("valid dt")),
            6,
            &picks,
            10.0,
            2.0,
            seed,
            "langevin/cello_0x1C",
        );
    }

    /// Langevin on the book AND gate (stiff mass-action laws, small
    /// dt): non-integral traces on the cooperative-binding kinetics.
    #[test]
    fn sharding_is_bitwise_invisible_langevin_book_and(
        picks in vec(0u64..5, 0usize..4),
        seed in 0u64..10_000,
    ) {
        let model = prepared("book_and");
        check_sharding(
            &model,
            || Box::new(Langevin::new(0.01).expect("valid dt")),
            5,
            &picks,
            5.0,
            1.0,
            seed,
            "langevin/book_and",
        );
    }
}
