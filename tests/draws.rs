//! Property tests for the batched Gaussian draw engine
//! (`glc_ssa::draws`): the block path must be bitwise-interchangeable
//! with the scalar reference — values *and* RNG draw-stream position —
//! for any sequence of request shapes, and the output must actually
//! look like a standard normal.

use genetic_logic::ssa::draws::BLOCK_PAIRS;
use genetic_logic::ssa::{standard_normal, NormalBlock, NormalCarry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

proptest! {
    /// For any request-length sequence (odd lengths, empties, and
    /// block-boundary stragglers included) and any seed, `fill`
    /// produces the exact values of the scalar reference loop and
    /// leaves the RNG at the identical stream position after *every*
    /// request, not just at the end.
    #[test]
    fn fill_is_bitwise_the_scalar_reference(
        seed in 0u64..u64::MAX,
        lens in proptest::collection::vec(0usize..(2 * BLOCK_PAIRS + 9), 1..10),
    ) {
        let mut block_rng = StdRng::seed_from_u64(seed);
        let mut scalar_rng = StdRng::seed_from_u64(seed);
        let mut block = NormalBlock::new();
        let mut carry = NormalCarry::new();
        for &len in &lens {
            let mut batched = vec![0.0f64; len];
            block.fill(&mut block_rng, &mut batched);
            for (i, z) in batched.iter().enumerate() {
                let reference = standard_normal(&mut scalar_rng, &mut carry);
                prop_assert_eq!(
                    z.to_bits(),
                    reference.to_bits(),
                    "len {} index {}",
                    len,
                    i
                );
            }
            prop_assert_eq!(block.has_carry(), carry.0.is_some());
            // Identical stream position at the request boundary.
            prop_assert_eq!(block_rng.gen::<u64>(), scalar_rng.gen::<u64>());
        }
    }

    /// The carry rule is deterministic: replaying the same seed with
    /// the same odd-length request sequence reproduces every bit, and
    /// an odd request leaves exactly one parked half behind.
    #[test]
    fn odd_count_carry_is_deterministic(seed in 0u64..u64::MAX, odd_half in 0usize..40) {
        let len = 2 * odd_half + 1;
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut block = NormalBlock::new();
            let mut first = vec![0.0f64; len];
            block.fill(&mut rng, &mut first);
            assert!(block.has_carry(), "odd request must park the sine half");
            // The next request starts with the parked half.
            let mut second = vec![0.0f64; 3];
            block.fill(&mut rng, &mut second);
            (first, second)
        };
        let (a1, a2) = run(seed);
        let (b1, b2) = run(seed);
        for (x, y) in a1.iter().zip(&b1).chain(a2.iter().zip(&b2)) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Requests that straddle the refill boundary — one block exactly,
    /// one short, one long — agree with one single oversized request
    /// from the same seed (the block split is invisible).
    #[test]
    fn block_boundary_split_is_invisible(seed in 0u64..u64::MAX, extra in 0usize..17) {
        let total = 2 * BLOCK_PAIRS + extra;
        let mut whole_rng = StdRng::seed_from_u64(seed);
        let mut whole_block = NormalBlock::new();
        let mut whole = vec![0.0f64; total];
        whole_block.fill(&mut whole_rng, &mut whole);

        let mut split_rng = StdRng::seed_from_u64(seed);
        let mut split_block = NormalBlock::new();
        let mut head = vec![0.0f64; 2 * BLOCK_PAIRS];
        let mut tail = vec![0.0f64; extra];
        split_block.fill(&mut split_rng, &mut head);
        split_block.fill(&mut split_rng, &mut tail);

        for (i, (w, s)) in whole.iter().zip(head.iter().chain(&tail)).enumerate() {
            prop_assert_eq!(w.to_bits(), s.to_bits(), "index {}", i);
        }
        prop_assert_eq!(whole_rng.gen::<u64>(), split_rng.gen::<u64>());
    }

    /// Stream-position parity across arbitrary seeds: after any fill,
    /// the block consumed exactly two raw draws per fresh pair — no
    /// hidden buffering ahead of the request.
    #[test]
    fn stream_position_is_two_draws_per_fresh_pair(seed in 0u64..u64::MAX, len in 1usize..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut block = NormalBlock::new();
        let mut out = vec![0.0f64; len];
        block.fill(&mut rng, &mut out);
        let fresh_pairs = (len as u64).div_ceil(2);
        let mut counted = StdRng::seed_from_u64(seed);
        for _ in 0..2 * fresh_pairs {
            counted.next_u64();
        }
        prop_assert_eq!(rng.gen::<u64>(), counted.gen::<u64>());
    }
}

/// Statistical sanity, deliberately non-proptest (one big fixed-seed
/// sample): mean ≈ 0, variance ≈ 1, symmetric tails, and pair halves
/// uncorrelated — Box–Muller's cosine and sine halves are independent.
#[test]
fn sample_moments_match_standard_normal() {
    let mut rng = StdRng::seed_from_u64(20_170_327);
    let mut block = NormalBlock::new();
    let mut z = vec![0.0f64; 400_000];
    block.fill(&mut rng, &mut z);
    let n = z.len() as f64;
    let mean = z.iter().sum::<f64>() / n;
    let var = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let above = z.iter().filter(|&&v| v > 0.0).count() as f64 / n;
    let kurt = z.iter().map(|v| (v - mean).powi(4)).sum::<f64>() / n / (var * var);
    assert!(mean.abs() < 0.01, "mean {mean}");
    assert!((var - 1.0).abs() < 0.01, "variance {var}");
    assert!((above - 0.5).abs() < 0.005, "P(z > 0) = {above}");
    assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    // Pair halves (even/odd positions) are independent normals.
    let cov = z
        .chunks_exact(2)
        .map(|p| (p[0] - mean) * (p[1] - mean))
        .sum::<f64>()
        / (n / 2.0);
    assert!(cov.abs() < 0.01, "pair covariance {cov}");
}
