//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use genetic_logic::core::bdd::Bdd;
use genetic_logic::core::boolexpr::TruthTable;
use genetic_logic::core::cases::CaseAnalysis;
use genetic_logic::core::digitize::digitize;
use genetic_logic::core::qmc;
use genetic_logic::core::variation;
use genetic_logic::gates::compile::compile;
use genetic_logic::gates::synth::synthesize;
use genetic_logic::model::Expr;
use genetic_logic::ssa::Trace;
use genetic_logic::vasim::csv;
use proptest::prelude::*;

/// Strategy for random expression trees over variables a, b, c.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Non-negative literals only: `-5` prints back as unary
        // negation, which is semantically equal but structurally
        // distinct; negation is exercised via the Neg combinator below.
        (0.0f64..100.0).prop_map(|v| Expr::num((v * 100.0).round() / 100.0)),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::add(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::sub(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::mul(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::div(l, r)),
            inner.prop_map(|e| Expr::Neg(Box::new(e))),
        ]
    })
}

proptest! {
    /// Printing and re-parsing an expression is the identity.
    #[test]
    fn expr_display_parse_round_trip(expr in arb_expr()) {
        let printed = expr.to_string();
        let reparsed = Expr::parse(&printed)
            .unwrap_or_else(|e| panic!("`{printed}` failed to reparse: {e}"));
        prop_assert_eq!(reparsed, expr);
    }

    /// Compiled evaluation matches tree-walking evaluation.
    #[test]
    fn expr_compiled_matches_tree(expr in arb_expr(),
                                  a in -50.0f64..50.0,
                                  b in -50.0f64..50.0,
                                  c in -50.0f64..50.0) {
        use genetic_logic::model::expr::SymbolTable;
        let mut table = SymbolTable::new();
        table.intern("a");
        table.intern("b");
        table.intern("c");
        let compiled = expr.compile(&table).unwrap();
        let env: &[(&str, f64)] = &[("a", a), ("b", b), ("c", c)];
        let tree = expr.eval(env).unwrap();
        let fast = compiled.eval(&[a, b, c]);
        // NaN-equal counts as equal (0/0 etc. must agree in kind).
        prop_assert!(tree == fast || (tree.is_nan() && fast.is_nan()),
                     "tree {} vs compiled {}", tree, fast);
    }

    /// QMC covers exactly the requested on-set for random functions.
    #[test]
    fn qmc_implements_its_spec(bits in proptest::collection::vec(any::<bool>(), 16)) {
        let table = TruthTable::new(4, bits);
        let cubes = qmc::minimize(4, &table.minterms(), &[]);
        for m in 0..16usize {
            let covered = cubes.iter().any(|c| c.covers(m));
            prop_assert_eq!(covered, table.value(m), "minterm {}", m);
        }
    }

    /// BDD connectives agree with pointwise truth-table operations.
    #[test]
    fn bdd_ops_match_table_ops(xa in 0u64..256, xb in 0u64..256) {
        let ta = TruthTable::from_hex(3, xa);
        let tb = TruthTable::from_hex(3, xb);
        let mut bdd = Bdd::new(3);
        let fa = bdd.from_truth_table(&ta);
        let fb = bdd.from_truth_table(&tb);
        let and = bdd.and(fa, fb);
        let or = bdd.or(fa, fb);
        let xor = bdd.xor(fa, fb);
        let not = bdd.not(fa);
        prop_assert_eq!(bdd.to_truth_table(and).to_hex(), xa & xb);
        prop_assert_eq!(bdd.to_truth_table(or).to_hex(), xa | xb);
        prop_assert_eq!(bdd.to_truth_table(xor).to_hex(), xa ^ xb);
        prop_assert_eq!(bdd.to_truth_table(not).to_hex(), !xa & 0xFF);
        // Canonicity: equal functions share one node.
        prop_assert_eq!(bdd.equivalent(fa, fb), xa == xb);
    }

    /// BDD satisfying-assignment count equals the number of minterms.
    #[test]
    fn bdd_sat_count_matches(hex in 0u64..256) {
        let table = TruthTable::from_hex(3, hex);
        let mut bdd = Bdd::new(3);
        let f = bdd.from_truth_table(&table);
        prop_assert_eq!(bdd.sat_count(f), hex.count_ones() as u64);
    }

    /// Synthesized netlists compute their specification and compile to
    /// valid models.
    #[test]
    fn synthesis_is_correct_for_random_functions(hex in 0u64..256) {
        let table = TruthTable::from_hex(3, hex);
        let netlist = synthesize(&table, &["A", "B", "C"], "OUT");
        prop_assert_eq!(netlist.truth_table().to_hex(), hex);
        let model = compile(&netlist).unwrap();
        prop_assert!(model.validate().is_ok());
    }

    /// CaseAnalysis conserves samples and bounds its statistics.
    #[test]
    fn case_analysis_invariants(
        raw in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 1..200)
    ) {
        let a: Vec<bool> = raw.iter().map(|r| r.0).collect();
        let b: Vec<bool> = raw.iter().map(|r| r.1).collect();
        let y: Vec<bool> = raw.iter().map(|r| r.2).collect();
        let analysis = CaseAnalysis::analyze(&[a, b], &y);
        let total: usize = (0..4).map(|i| analysis.case_count(i)).sum();
        prop_assert_eq!(total, raw.len(), "Case_I must partition the samples");
        for stats in variation::analyze(&analysis) {
            prop_assert!(stats.high_count <= stats.case_count);
            prop_assert!(stats.variation_count <= stats.case_count.saturating_sub(1));
            prop_assert!((0.0..=1.0).contains(&stats.fov_est()));
        }
    }

    /// Digitization is monotone in the threshold: raising it can only
    /// turn 1s into 0s.
    #[test]
    fn digitize_monotone_in_threshold(
        series in proptest::collection::vec(0.0f64..100.0, 1..100),
        low in 1.0f64..50.0,
        delta in 0.0f64..50.0,
    ) {
        let at_low = digitize(&series, low);
        let at_high = digitize(&series, low + delta);
        for (l, h) in at_low.iter().zip(&at_high) {
            prop_assert!(*l || !*h, "raising the threshold created a 1");
        }
    }

    /// Hysteresis digitization never chatters more than the plain ADC:
    /// every Schmitt-trigger transition requires a full band crossing,
    /// which passes the plain threshold at least once.
    #[test]
    fn hysteresis_never_increases_transitions(
        series in proptest::collection::vec(0.0f64..40.0, 2..200)
    ) {
        use genetic_logic::core::signal::{digitize_hysteresis, transition_count};
        let plain = digitize(&series, 15.0);
        let banded = digitize_hysteresis(&series, 10.0, 20.0);
        prop_assert!(
            transition_count(&banded) <= transition_count(&plain),
            "banded {} vs plain {}",
            transition_count(&banded),
            transition_count(&plain)
        );
    }

    /// CSV round trip is lossless for arbitrary traces.
    #[test]
    fn csv_round_trip(rows in proptest::collection::vec((0.0f64..1e4, 0.0f64..1e4), 1..50),
                      dt in 0.25f64..4.0) {
        let mut trace = Trace::new(vec!["X".into(), "Y".into()], dt, 0.0);
        for (x, y) in &rows {
            trace.push_row(&[*x, *y]);
        }
        let back = csv::from_csv(&csv::to_csv(&trace)).unwrap();
        prop_assert_eq!(back.len(), trace.len());
        prop_assert_eq!(back.series("X").unwrap(), trace.series("X").unwrap());
        prop_assert_eq!(back.series("Y").unwrap(), trace.series("Y").unwrap());
    }

    /// SBML round trip is lossless for synthesized circuit models.
    #[test]
    fn sbml_round_trip_for_synthesized_models(hex in 0u64..256) {
        use genetic_logic::model::sbml;
        let table = TruthTable::from_hex(3, hex);
        let netlist = synthesize(&table, &["A", "B", "C"], "OUT");
        let model = compile(&netlist).unwrap();
        let back = sbml::read(&sbml::write(&model)).unwrap();
        prop_assert_eq!(back, model);
    }
}
