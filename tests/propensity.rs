//! Cross-crate acceptance tests for the incremental propensity engine:
//! the dependency-driven updates and sum-tree selection must be
//! indistinguishable — bitwise for trajectories, within an ulp for
//! aggregate sums — from a naive full recompute, on the real circuit
//! models the paper simulates.

use genetic_logic::gates::catalog;
use genetic_logic::model::expr::EvalMemo;
use genetic_logic::model::Model;
use genetic_logic::ssa::engine::Observer;
use genetic_logic::ssa::ipq::IndexedPriorityQueue;
use genetic_logic::ssa::propensity::PropensitySet;
use genetic_logic::ssa::{CompiledModel, Direct, Engine, FirstReaction, NextReaction, State};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A catalog circuit compiled with all inputs held at the paper's
/// 15-molecule level.
fn prepared(id: &str) -> CompiledModel {
    let entry = catalog::by_id(id).expect("catalog circuit");
    let mut model: Model = entry.model.clone();
    for input in &entry.inputs {
        model.set_initial_amount(input, 15.0);
    }
    CompiledModel::new(&model).expect("compiles")
}

/// Records every observer callback bit-exactly.
#[derive(Default)]
struct BitTrace(Vec<(u64, Vec<u64>)>);

impl Observer for BitTrace {
    fn on_advance(&mut self, t: f64, values: &[f64]) {
        self.0
            .push((t.to_bits(), values.iter().map(|v| v.to_bits()).collect()));
    }
}

fn bit_trace(engine: &mut dyn Engine, model: &CompiledModel, seed: u64) -> BitTrace {
    let mut state = model.initial_state();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = BitTrace::default();
    engine
        .run(model, &mut state, 200.0, &mut rng, &mut trace)
        .expect("simulation succeeds");
    trace
}

/// The headline acceptance criterion: `Direct` with incremental updates
/// produces bitwise-identical sampled traces to the retained
/// full-recompute baseline, on both a mass-action book circuit and the
/// largest Hill-kinetics Cello circuit, for seeds {1, 42, 1337}.
#[test]
fn direct_incremental_matches_full_recompute_bitwise() {
    for id in ["book_and", "cello_0x1C"] {
        let model = prepared(id);
        for seed in [1u64, 42, 1337] {
            let incremental = bit_trace(&mut Direct::new(), &model, seed);
            let full = bit_trace(&mut Direct::with_full_recompute(), &model, seed);
            assert_eq!(
                incremental.0.len(),
                full.0.len(),
                "{id} seed {seed}: step counts diverged"
            );
            assert_eq!(incremental.0, full.0, "{id} seed {seed}");
        }
    }
}

/// The first-reaction method consumes the same cached propensities, so
/// determinism per seed must survive the rewiring.
#[test]
fn first_reaction_is_deterministic_on_catalog_circuits() {
    let model = prepared("book_and");
    let a = bit_trace(&mut FirstReaction::new(), &model, 42);
    let b = bit_trace(&mut FirstReaction::new(), &model, 42);
    assert_eq!(a.0, b.0);
}

/// The pre-port next-reaction loop, kept verbatim as a reference: a
/// private propensity vector maintained with per-law evaluations,
/// exactly as the engine worked before it moved onto the shared
/// `PropensitySet`. The ported engine must walk through bitwise-identical
/// trajectories — same propensities, same rescales, same RNG draws.
fn reference_next_reaction(model: &CompiledModel, seed: u64, t_end: f64) -> BitTrace {
    fn draw_time(rng: &mut StdRng, t: f64, propensity: f64) -> f64 {
        if propensity > 0.0 {
            let u: f64 = rng.gen();
            t - (1.0 - u).ln() / propensity
        } else {
            f64::INFINITY
        }
    }

    let mut state: State = model.initial_state();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = BitTrace::default();
    let mut stack = Vec::new();

    let m = model.reaction_count();
    let mut propensities = vec![0.0f64; m];
    let mut times = vec![f64::INFINITY; m];
    for r in 0..m {
        propensities[r] = model.propensity_with(r, &state, &mut stack).unwrap();
        times[r] = draw_time(&mut rng, state.t, propensities[r]);
    }
    let mut queue = IndexedPriorityQueue::new(times);

    while let Some((fired, t_next)) = queue.min() {
        if t_next >= t_end {
            break;
        }
        trace.on_advance(t_next, &state.values);
        state.t = t_next;
        model.apply(fired, &mut state);

        for &dep in model.dependents(fired) {
            if dep == fired {
                continue;
            }
            let a_new = model.propensity_with(dep, &state, &mut stack).unwrap();
            let a_old = propensities[dep];
            let t_dep = queue.key(dep);
            let updated = if a_new <= 0.0 {
                f64::INFINITY
            } else if a_old > 0.0 && t_dep.is_finite() {
                state.t + (a_old / a_new) * (t_dep - state.t)
            } else {
                draw_time(&mut rng, state.t, a_new)
            };
            propensities[dep] = a_new;
            queue.update(dep, updated);
        }

        let a_fired = model.propensity_with(fired, &state, &mut stack).unwrap();
        propensities[fired] = a_fired;
        queue.update(fired, draw_time(&mut rng, state.t, a_fired));
    }
    trace.on_advance(t_end, &state.values);
    trace
}

/// Next-reaction on the shared `PropensitySet` reproduces the private
/// propensity-vector implementation bitwise, on both catalog circuits
/// for seeds {1, 42, 1337} — the engine-port acceptance criterion.
#[test]
fn next_reaction_on_shared_set_matches_private_vector_bitwise() {
    for id in ["book_and", "cello_0x1C"] {
        let model = prepared(id);
        for seed in [1u64, 42, 1337] {
            let ported = bit_trace(&mut NextReaction::new(), &model, seed);
            let reference = reference_next_reaction(&model, seed, 200.0);
            assert_eq!(
                ported.0.len(),
                reference.0.len(),
                "{id} seed {seed}: step counts diverged"
            );
            assert_eq!(ported.0, reference.0, "{id} seed {seed}");
        }
    }
}

/// The batched structure-of-arrays sweep is bitwise identical to the
/// scalar per-law sweep at every state along a simulated trajectory —
/// per reaction and for the sequential total.
#[test]
fn batched_sweep_matches_scalar_sweep_bitwise_on_catalog_circuits() {
    for id in ["book_and", "cello_0x1C"] {
        let model = prepared(id);
        let mut rng = StdRng::seed_from_u64(7);
        let mut state = model.initial_state();
        let mut set = PropensitySet::new();
        set.rebuild(&model, &state).unwrap();
        let mut batched = Vec::new();
        let mut scalar = Vec::new();
        let mut stack = Vec::new();
        let mut memo = EvalMemo::new();
        for step in 0..500 {
            let total = set.total();
            if total <= 0.0 {
                break;
            }
            let fired = set.select(rng.gen::<f64>() * total);
            model.apply(fired, &mut state);
            set.update_after(&model, &state, fired).unwrap();

            let batched_total = model
                .propensities_into(&state, &mut batched, &mut stack, &mut memo)
                .unwrap();
            let scalar_total = model
                .propensities_into_scalar(&state, &mut scalar, &mut stack)
                .unwrap();
            assert_eq!(
                batched_total.to_bits(),
                scalar_total.to_bits(),
                "{id} step {step}: totals diverged"
            );
            for r in 0..model.reaction_count() {
                assert_eq!(
                    batched[r].to_bits(),
                    scalar[r].to_bits(),
                    "{id} step {step}: reaction {r}"
                );
            }
        }
    }
}

/// Distance in representable doubles between two non-negative finite
/// values.
fn ulps_apart(a: f64, b: f64) -> u64 {
    assert!(a >= 0.0 && b >= 0.0 && a.is_finite() && b.is_finite());
    a.to_bits().abs_diff(b.to_bits())
}

/// Walks `steps` propensity-guided random firings and checks the
/// incremental cache against a full recompute after every firing.
fn check_incremental_invariant(model: &CompiledModel, seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = model.initial_state();
    let mut set = PropensitySet::new();
    set.rebuild(model, &state).expect("initial rebuild");

    let mut reference = Vec::new();
    let mut stack = Vec::new();
    let mut memo = EvalMemo::new();
    for step in 0..steps {
        let total = set.total();
        if total <= 0.0 {
            break;
        }
        let fired = set.select(rng.gen::<f64>() * total);
        model.apply(fired, &mut state);
        set.update_after(model, &state, fired).expect("update");

        let full_total = model
            .propensities_into(&state, &mut reference, &mut stack, &mut memo)
            .expect("full recompute");
        // Per-reaction cached values must be *bitwise* equal: the same
        // pure kinetic law evaluated against the same state.
        for (r, &expected) in reference.iter().enumerate() {
            assert_eq!(
                set.propensity(r).to_bits(),
                expected.to_bits(),
                "step {step}: reaction {r} drifted"
            );
        }
        // The root is a pairwise (tree) sum, the reference a sequential
        // sum; the term sets are bitwise identical, so the two may
        // differ only by fp reassociation — a handful of ulps for the
        // ~20 terms of the largest catalog circuit.
        assert!(
            ulps_apart(set.total(), full_total) <= 8,
            "step {step}: root {} vs sequential {}",
            set.total(),
            full_total
        );
    }
}

proptest! {
    /// Satellite property: after N random firings from random seeds the
    /// incrementally maintained propensities and sum-tree root equal a
    /// full `propensities_into` recompute, on a mass-action book
    /// circuit.
    #[test]
    fn incremental_invariant_holds_on_book_circuit(seed in 0u64..1_000_000, steps in 1usize..400) {
        let model = prepared("book_and");
        check_incremental_invariant(&model, seed, steps);
    }

    /// Same invariant on a Hill-kinetics Cello circuit, which exercises
    /// the `Hill`/`SumOfProducts` kinetic forms and denser dependency
    /// sets.
    #[test]
    fn incremental_invariant_holds_on_cello_circuit(seed in 0u64..1_000_000, steps in 1usize..400) {
        let model = prepared("cello_0x1C");
        check_incremental_invariant(&model, seed, steps);
    }

    /// Batched-path property: after N random firings the batched bank
    /// sweep and the scalar per-law sweep agree bitwise — per reaction
    /// and on the sequential total — for both law families.
    #[test]
    fn batched_sweep_equals_scalar_sweep_after_random_firings(
        seed in 0u64..1_000_000,
        steps in 1usize..300,
        cello in any::<bool>(),
    ) {
        let model = prepared(if cello { "cello_0x1C" } else { "book_and" });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = model.initial_state();
        let mut set = PropensitySet::new();
        set.rebuild(&model, &state).expect("rebuild");
        let (mut batched, mut scalar, mut stack) = (Vec::new(), Vec::new(), Vec::new());
        let mut memo = EvalMemo::new();
        for _ in 0..steps {
            let total = set.total();
            if total <= 0.0 {
                break;
            }
            let fired = set.select(rng.gen::<f64>() * total);
            model.apply(fired, &mut state);
            set.update_after(&model, &state, fired).expect("update");
        }
        let batched_total = model
            .propensities_into(&state, &mut batched, &mut stack, &mut memo)
            .expect("batched sweep");
        let scalar_total = model
            .propensities_into_scalar(&state, &mut scalar, &mut stack)
            .expect("scalar sweep");
        prop_assert_eq!(batched_total.to_bits(), scalar_total.to_bits());
        for r in 0..model.reaction_count() {
            prop_assert_eq!(batched[r].to_bits(), scalar[r].to_bits(), "reaction {}", r);
            // The incrementally maintained cache agrees with both.
            prop_assert_eq!(set.propensity(r).to_bits(), scalar[r].to_bits());
        }
    }
}
