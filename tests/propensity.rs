//! Cross-crate acceptance tests for the incremental propensity engine:
//! the dependency-driven updates and sum-tree selection must be
//! indistinguishable — bitwise for trajectories, within an ulp for
//! aggregate sums — from a naive full recompute, on the real circuit
//! models the paper simulates.

use genetic_logic::gates::catalog;
use genetic_logic::model::Model;
use genetic_logic::ssa::engine::Observer;
use genetic_logic::ssa::propensity::PropensitySet;
use genetic_logic::ssa::{CompiledModel, Direct, Engine, FirstReaction};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A catalog circuit compiled with all inputs held at the paper's
/// 15-molecule level.
fn prepared(id: &str) -> CompiledModel {
    let entry = catalog::by_id(id).expect("catalog circuit");
    let mut model: Model = entry.model.clone();
    for input in &entry.inputs {
        model.set_initial_amount(input, 15.0);
    }
    CompiledModel::new(&model).expect("compiles")
}

/// Records every observer callback bit-exactly.
#[derive(Default)]
struct BitTrace(Vec<(u64, Vec<u64>)>);

impl Observer for BitTrace {
    fn on_advance(&mut self, t: f64, values: &[f64]) {
        self.0
            .push((t.to_bits(), values.iter().map(|v| v.to_bits()).collect()));
    }
}

fn bit_trace(engine: &mut dyn Engine, model: &CompiledModel, seed: u64) -> BitTrace {
    let mut state = model.initial_state();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = BitTrace::default();
    engine
        .run(model, &mut state, 200.0, &mut rng, &mut trace)
        .expect("simulation succeeds");
    trace
}

/// The headline acceptance criterion: `Direct` with incremental updates
/// produces bitwise-identical sampled traces to the retained
/// full-recompute baseline, on both a mass-action book circuit and the
/// largest Hill-kinetics Cello circuit, for seeds {1, 42, 1337}.
#[test]
fn direct_incremental_matches_full_recompute_bitwise() {
    for id in ["book_and", "cello_0x1C"] {
        let model = prepared(id);
        for seed in [1u64, 42, 1337] {
            let incremental = bit_trace(&mut Direct::new(), &model, seed);
            let full = bit_trace(&mut Direct::with_full_recompute(), &model, seed);
            assert_eq!(
                incremental.0.len(),
                full.0.len(),
                "{id} seed {seed}: step counts diverged"
            );
            assert_eq!(incremental.0, full.0, "{id} seed {seed}");
        }
    }
}

/// The first-reaction method consumes the same cached propensities, so
/// determinism per seed must survive the rewiring.
#[test]
fn first_reaction_is_deterministic_on_catalog_circuits() {
    let model = prepared("book_and");
    let a = bit_trace(&mut FirstReaction::new(), &model, 42);
    let b = bit_trace(&mut FirstReaction::new(), &model, 42);
    assert_eq!(a.0, b.0);
}

/// Distance in representable doubles between two non-negative finite
/// values.
fn ulps_apart(a: f64, b: f64) -> u64 {
    assert!(a >= 0.0 && b >= 0.0 && a.is_finite() && b.is_finite());
    a.to_bits().abs_diff(b.to_bits())
}

/// Walks `steps` propensity-guided random firings and checks the
/// incremental cache against a full recompute after every firing.
fn check_incremental_invariant(model: &CompiledModel, seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = model.initial_state();
    let mut set = PropensitySet::new();
    set.rebuild(model, &state).expect("initial rebuild");

    let mut reference = Vec::new();
    let mut stack = Vec::new();
    for step in 0..steps {
        let total = set.total();
        if total <= 0.0 {
            break;
        }
        let fired = set.select(rng.gen::<f64>() * total);
        model.apply(fired, &mut state);
        set.update_after(model, &state, fired).expect("update");

        let full_total = model
            .propensities_into(&state, &mut reference, &mut stack)
            .expect("full recompute");
        // Per-reaction cached values must be *bitwise* equal: the same
        // pure kinetic law evaluated against the same state.
        for (r, &expected) in reference.iter().enumerate() {
            assert_eq!(
                set.propensity(r).to_bits(),
                expected.to_bits(),
                "step {step}: reaction {r} drifted"
            );
        }
        // The root is a pairwise (tree) sum, the reference a sequential
        // sum; the term sets are bitwise identical, so the two may
        // differ only by fp reassociation — a handful of ulps for the
        // ~20 terms of the largest catalog circuit.
        assert!(
            ulps_apart(set.total(), full_total) <= 8,
            "step {step}: root {} vs sequential {}",
            set.total(),
            full_total
        );
    }
}

proptest! {
    /// Satellite property: after N random firings from random seeds the
    /// incrementally maintained propensities and sum-tree root equal a
    /// full `propensities_into` recompute, on a mass-action book
    /// circuit.
    #[test]
    fn incremental_invariant_holds_on_book_circuit(seed in 0u64..1_000_000, steps in 1usize..400) {
        let model = prepared("book_and");
        check_incremental_invariant(&model, seed, steps);
    }

    /// Same invariant on a Hill-kinetics Cello circuit, which exercises
    /// the `Hill`/`SumOfProducts` kinetic forms and denser dependency
    /// sets.
    #[test]
    fn incremental_invariant_holds_on_cello_circuit(seed in 0u64..1_000_000, steps in 1usize..400) {
        let model = prepared("cello_0x1C");
        check_incremental_invariant(&model, seed, steps);
    }
}
