//! End-to-end integration: catalog circuit → virtual lab → Algorithm 1
//! → verification, across crates.
//!
//! These runs use shortened protocols (hold times matched to each
//! circuit's speed) so the whole suite stays fast; the full paper
//! protocol lives in the `glc-bench` harness binaries.

use genetic_logic::core::{verify, AnalyzerConfig, LogicAnalyzer};
use genetic_logic::gates::catalog;
use genetic_logic::vasim::{Experiment, ExperimentConfig};

fn verify_circuit(id: &str, hold: f64, seed: u64) {
    let entry = catalog::by_id(id).unwrap_or_else(|| panic!("unknown circuit {id}"));
    let config = ExperimentConfig::new(hold, 15.0).repeats(2);
    let result = Experiment::new(config)
        .run(&entry.model, &entry.inputs, &entry.output, seed)
        .expect("experiment");
    let report = LogicAnalyzer::new(AnalyzerConfig::new(15.0))
        .analyze(&result.data)
        .expect("analysis");
    let verdict = verify(&report, &entry.expected);
    assert!(
        verdict.equivalent,
        "{id}: extracted {} but expected hex 0x{:X}\n{report}",
        report.expression,
        entry.expected.to_hex()
    );
    assert!(
        report.fitness > 90.0,
        "{id}: fitness {:.2}% unexpectedly low",
        report.fitness
    );
}

#[test]
fn book_not_verifies() {
    verify_circuit("book_not", 400.0, 1);
}

#[test]
fn book_nor_verifies() {
    verify_circuit("book_nor", 400.0, 2);
}

#[test]
fn book_nand_verifies() {
    verify_circuit("book_nand", 400.0, 3);
}

#[test]
fn book_or_verifies() {
    verify_circuit("book_or", 700.0, 4);
}

#[test]
fn book_and_verifies() {
    verify_circuit("book_and", 700.0, 5);
}

#[test]
fn cello_0x0b_verifies() {
    verify_circuit("cello_0x0B", 600.0, 6);
}

#[test]
fn cello_0x04_verifies() {
    verify_circuit("cello_0x04", 600.0, 7);
}

#[test]
fn cello_0x1c_verifies() {
    verify_circuit("cello_0x1C", 600.0, 8);
}

#[test]
fn cello_two_input_circuits_verify() {
    verify_circuit("cello_0x06", 600.0, 9);
    verify_circuit("cello_0x08", 600.0, 10);
}

#[test]
fn whole_catalog_verifies_with_one_seed() {
    // One pass over all 15 circuits with a shared seed; slower circuits
    // get the hold time their cascades need.
    for entry in catalog::all() {
        let hold = if entry.id.starts_with("book") {
            700.0
        } else {
            600.0
        };
        verify_circuit(&entry.id, hold, 2017);
    }
}

#[test]
fn short_hold_time_breaks_verification_as_the_paper_warns() {
    // "the correct behavior of a genetic circuit can only be obtained
    // when each possible input combination is applied for sufficient
    // amount of time": a hold far below the propagation delay must
    // corrupt at least part of the analysis (lower fitness or wrong
    // logic) for the slow 3-stage AND gate.
    let entry = catalog::by_id("book_and").unwrap();
    let config = ExperimentConfig::new(40.0, 15.0).repeats(4);
    let result = Experiment::new(config)
        .run(&entry.model, &entry.inputs, &entry.output, 5)
        .expect("experiment");
    let report = LogicAnalyzer::new(AnalyzerConfig::new(15.0))
        .analyze(&result.data)
        .expect("analysis");
    let verdict = verify(&report, &entry.expected);
    let degraded = !verdict.equivalent || report.fitness < 99.0;
    assert!(
        degraded,
        "40 t.u. holds should visibly degrade a circuit with ~300 t.u. delay"
    );
}

#[test]
fn seeds_change_traces_but_not_verdicts() {
    let entry = catalog::by_id("cello_0x04").unwrap();
    for seed in [1u64, 99, 12345] {
        let config = ExperimentConfig::new(600.0, 15.0).repeats(2);
        let result = Experiment::new(config)
            .run(&entry.model, &entry.inputs, &entry.output, seed)
            .expect("experiment");
        let report = LogicAnalyzer::new(AnalyzerConfig::new(15.0))
            .analyze(&result.data)
            .expect("analysis");
        assert!(
            verify(&report, &entry.expected).equivalent,
            "seed {seed} failed"
        );
    }
}
