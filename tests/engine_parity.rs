//! Cross-engine validation on the catalog circuits: the three exact
//! engines implement the same stochastic process, so their ensemble
//! aggregates must agree — and each engine's aggregate must be exactly
//! reproducible for a fixed seed set, before and after any refactor of
//! the propensity plumbing.
//!
//! Two layers of assertion:
//!
//! * **Bitwise**: for the direct method, the incremental engine and the
//!   retained full-recompute baseline (the pre-batched-path schedule,
//!   now also routed through the kinetic-form bank) produce *identical*
//!   mean/variance aggregates — the "before vs after the batched path"
//!   equivalence, ensemble-level.
//! * **Statistical**: Direct, FirstReaction and NextReaction consume
//!   randomness differently, so their aggregates only agree in
//!   distribution; with the seed set fixed the comparison is
//!   deterministic, and the tolerances below are several times the
//!   observed gaps.

use genetic_logic::gates::catalog;
use genetic_logic::model::Model;
use genetic_logic::ssa::{
    run_ensemble, CompiledModel, Direct, Engine, Ensemble, FirstReaction, NextReaction,
};

fn prepared(id: &str) -> CompiledModel {
    let entry = catalog::by_id(id).expect("catalog circuit");
    let mut model: Model = entry.model.clone();
    for input in &entry.inputs {
        model.set_initial_amount(input, 15.0);
    }
    CompiledModel::new(&model).expect("compiles")
}

const REPLICATES: usize = 48;
const T_END: f64 = 80.0;
const SAMPLE_DT: f64 = 8.0;
const BASE_SEED: u64 = 7;

fn ensemble<F>(model: &CompiledModel, make_engine: F) -> Ensemble
where
    F: Fn() -> Box<dyn Engine> + Sync,
{
    run_ensemble(
        model,
        make_engine,
        REPLICATES,
        T_END,
        SAMPLE_DT,
        BASE_SEED,
        4,
    )
    .expect("ensemble runs")
}

/// Final-sample mean and variance per species.
fn tail_aggregates(ensemble: &Ensemble, model: &CompiledModel) -> Vec<(f64, f64)> {
    model
        .species_names()
        .iter()
        .map(|name| {
            let mean = *ensemble.mean.series(name).unwrap().last().unwrap();
            let std = *ensemble.std_dev.series(name).unwrap().last().unwrap();
            (mean, std * std)
        })
        .collect()
}

#[test]
fn direct_incremental_and_full_recompute_ensembles_are_identical() {
    for id in ["book_and", "cello_0x1C"] {
        let model = prepared(id);
        let incremental = ensemble(&model, || Box::new(Direct::new()));
        let full = ensemble(&model, || Box::new(Direct::with_full_recompute()));
        // Bitwise-equal traces (Trace implements PartialEq over f64
        // payloads): the batched incremental path and the recompute-all
        // schedule walk identical trajectories, so every aggregate
        // matches exactly.
        assert_eq!(incremental.mean, full.mean, "{id}: means diverged");
        assert_eq!(incremental.std_dev, full.std_dev, "{id}: spreads diverged");
    }
}

#[test]
fn exact_engines_are_reproducible_per_seed_set() {
    let model = prepared("book_and");
    let makes: [fn() -> Box<dyn Engine>; 3] = [
        || Box::new(Direct::new()),
        || Box::new(FirstReaction::new()),
        || Box::new(NextReaction::new()),
    ];
    for make in makes {
        let a = ensemble(&model, make);
        let b = ensemble(&model, make);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std_dev, b.std_dev);
    }
}

#[test]
fn exact_engines_agree_on_ensemble_aggregates() {
    for id in ["book_and", "cello_0x1C"] {
        let model = prepared(id);
        let direct = tail_aggregates(&ensemble(&model, || Box::new(Direct::new())), &model);
        let first = tail_aggregates(&ensemble(&model, || Box::new(FirstReaction::new())), &model);
        let next = tail_aggregates(&ensemble(&model, || Box::new(NextReaction::new())), &model);
        for (s, name) in model.species_names().iter().enumerate() {
            let (m_d, v_d) = direct[s];
            for (label, (m_o, v_o)) in [("first-reaction", first[s]), ("next-reaction", next[s])] {
                // Mean: within a few standard errors of the ensemble
                // spread (plus an absolute floor for near-zero species).
                let se = (v_d.max(v_o) / REPLICATES as f64).sqrt();
                let tol = 5.0 * se + 1.5;
                assert!(
                    (m_d - m_o).abs() <= tol,
                    "{id}/{name}: direct mean {m_d} vs {label} {m_o} (tol {tol})"
                );
                // Variance: same order of magnitude (sampling noise on
                // a variance estimate from 48 replicates is large).
                let v_tol = 0.8 * v_d.max(v_o) + 4.0;
                assert!(
                    (v_d - v_o).abs() <= v_tol,
                    "{id}/{name}: direct var {v_d} vs {label} {v_o} (tol {v_tol})"
                );
            }
        }
    }
}
