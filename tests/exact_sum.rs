//! Property tests for the sparse `ExactSum` representation against an
//! independent dense reference.
//!
//! PR 4 swapped `ExactSum`'s flat 67-digit array for a sparse `lo` +
//! digit-window form (the resident query service holds thousands of
//! cells warm, and ~550 B/cell did not scale). The contract of that
//! swap is **bitwise invisibility**: `value()`, merging, equality and
//! the serialized form must be unchanged. This file pins the contract
//! against `DenseSum` — a self-contained reimplementation of the
//! pre-swap dense accumulator (carry-save flat array, canonical
//! normalize, round-to-nearest-even) — on adversarial magnitudes:
//! denormals, `±MAX`, catastrophic cancellation, and mixtures spanning
//! the full finite exponent range.

use genetic_logic::ssa::ExactSum;
use proptest::collection::vec;
use proptest::prelude::*;

/// Number of base-2^32 digits in the dense reference (matches the
/// conceptual capacity of the sparse form).
const DIGITS: usize = 67;
const DIGIT_MASK: i64 = 0xFFFF_FFFF;

/// `2^e` as an exact `f64`, for `e` in `-1074..=1023`.
fn pow2(e: i32) -> f64 {
    if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (e + 1074))
    }
}

/// The pre-swap dense superaccumulator, reimplemented here as an
/// independent oracle (carry-save additions into a flat digit array;
/// value() = canonical normalize + round to nearest, ties to even).
#[derive(Clone)]
struct DenseSum {
    digits: [i64; DIGITS],
    non_finite: bool,
}

impl DenseSum {
    fn new() -> Self {
        DenseSum {
            digits: [0; DIGITS],
            non_finite: false,
        }
    }

    fn add(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite = true;
            return;
        }
        if v == 0.0 {
            return;
        }
        let bits = v.to_bits();
        let exponent_field = ((bits >> 52) & 0x7FF) as i32;
        let fraction = bits & ((1u64 << 52) - 1);
        let (mantissa, shift) = if exponent_field == 0 {
            (fraction, 0)
        } else {
            (fraction | (1 << 52), exponent_field - 1)
        };
        let digit = (shift / 32) as usize;
        let offset = (shift % 32) as u32;
        let spread = u128::from(mantissa) << offset;
        let sign = if bits >> 63 == 1 { -1i64 } else { 1i64 };
        self.digits[digit] += sign * ((spread as i64) & DIGIT_MASK);
        self.digits[digit + 1] += sign * (((spread >> 32) as i64) & DIGIT_MASK);
        self.digits[digit + 2] += sign * ((spread >> 64) as i64);
    }

    fn merge(&mut self, other: &DenseSum) {
        self.non_finite |= other.non_finite;
        for (mine, theirs) in self.digits.iter_mut().zip(&other.digits) {
            *mine += *theirs;
        }
    }

    /// Canonical digit vector: carries propagated, every digit below
    /// the top in `[0, 2^32)`, the top digit signed.
    fn canonical(&self) -> [i64; DIGITS] {
        let mut digits = self.digits;
        let mut carry = 0i64;
        for digit in &mut digits[..DIGITS - 1] {
            let total = *digit + carry;
            carry = total >> 32;
            *digit = total & DIGIT_MASK;
        }
        digits[DIGITS - 1] += carry;
        digits
    }

    fn value(&self) -> f64 {
        if self.non_finite {
            return f64::NAN;
        }
        let mut digits = self.canonical();
        let negative = digits[DIGITS - 1] < 0;
        if negative {
            let mut borrow = 0i64;
            for digit in &mut digits[..DIGITS - 1] {
                let total = -*digit + borrow;
                borrow = total >> 32;
                *digit = total & DIGIT_MASK;
            }
            digits[DIGITS - 1] = -digits[DIGITS - 1] + borrow;
        }
        let Some(top) = (0..DIGITS).rev().find(|&i| digits[i] != 0) else {
            return 0.0;
        };
        let msb = 63 - digits[top].leading_zeros() as i64;
        let high_bit = top as i64 * 32 + msb;
        let round_pos = (high_bit - 52).max(0);
        let mut mantissa = 0u64;
        for bit in (round_pos..=high_bit).rev() {
            mantissa = (mantissa << 1) | ((digits[(bit / 32) as usize] >> (bit % 32)) as u64 & 1);
        }
        let guard = round_pos > 0 && {
            let bit = round_pos - 1;
            (digits[(bit / 32) as usize] >> (bit % 32)) & 1 == 1
        };
        let sticky = round_pos > 1
            && (0..round_pos - 1).any(|bit| (digits[(bit / 32) as usize] >> (bit % 32)) & 1 == 1);
        if guard && (sticky || mantissa & 1 == 1) {
            mantissa += 1;
        }
        let scale_exp = round_pos as i32 - 1074;
        let magnitude = if scale_exp > 1023 {
            f64::INFINITY
        } else {
            mantissa as f64 * pow2(scale_exp)
        };
        if negative {
            -magnitude
        } else {
            magnitude
        }
    }
}

/// One adversarially-shaped input value: denormals, extremes, exact
/// powers, cancelling pairs' halves, and ordinary magnitudes across
/// the full exponent range.
fn adversarial_value() -> BoxedStrategy<f64> {
    prop_oneof![
        // Fixed hard cases.
        Just(5e-324), // smallest subnormal
        Just(-5e-324),
        Just(f64::MIN_POSITIVE), // smallest normal
        Just(-f64::MIN_POSITIVE),
        Just(f64::MIN_POSITIVE / 8.0), // deeper subnormal
        Just(f64::MAX),
        Just(-f64::MAX),
        Just(f64::MAX / 2.0),
        Just(1.0),
        Just(-1.0),
        Just(0.0),
        Just(-0.0),
        Just(f64::powi(2.0, -53)), // half-ulp of 1.0 (tie shapes)
        Just(1.0 + f64::powi(2.0, -52)),
        // Arbitrary bit patterns over the full exponent range
        // (mantissa × 2^e with e in ±1020 keeps values finite).
        (0u64..1 << 53, 0u64..2040, any::<bool>()).prop_map(|(m, e, neg)| {
            let v = (m as f64) * f64::powi(2.0, e as i32 - 1020 - 53);
            if neg {
                -v
            } else {
                v
            }
        }),
        // Near-cancelling magnitudes around 1e16 (classic residual
        // loss for sequential f64 summation).
        (0u64..1 << 40, any::<bool>()).prop_map(|(m, neg)| {
            let v = 1e16 + m as f64;
            if neg {
                -v
            } else {
                v
            }
        }),
    ]
    .boxed()
}

fn sparse_of(values: &[f64]) -> ExactSum {
    let mut acc = ExactSum::new();
    for &v in values {
        acc.add(v);
    }
    acc
}

fn dense_of(values: &[f64]) -> DenseSum {
    let mut acc = DenseSum::new();
    for &v in values {
        acc.add(v);
    }
    acc
}

proptest! {
    /// Sparse value() ≡ dense value() bitwise, on adversarial inputs.
    #[test]
    fn sparse_value_matches_dense_reference(values in vec(adversarial_value(), 0..40)) {
        let sparse = sparse_of(&values).value();
        let dense = dense_of(&values).value();
        prop_assert_eq!(
            sparse.to_bits(),
            dense.to_bits(),
            "sparse {} vs dense {} over {:?}",
            sparse,
            dense,
            values
        );
    }

    /// Splitting the input anywhere and merging reproduces the dense
    /// whole-sum bits — for both merge orders.
    #[test]
    fn sparse_merge_matches_dense_reference(
        values in vec(adversarial_value(), 1..30),
        cut in 0usize..30,
    ) {
        let cut = cut % values.len();
        let (left, right) = values.split_at(cut);
        // The dense side merges too, so the oracle's own merge path
        // (and its agreement with sequential accumulation) is covered.
        let mut dense = dense_of(left);
        dense.merge(&dense_of(right));
        let whole = dense.value();
        prop_assert_eq!(whole.to_bits(), dense_of(&values).value().to_bits());
        let mut forward = sparse_of(left);
        forward.merge(&sparse_of(right));
        prop_assert_eq!(forward.value().to_bits(), whole.to_bits());
        let mut backward = sparse_of(right);
        backward.merge(&sparse_of(left));
        prop_assert_eq!(backward.value().to_bits(), whole.to_bits());
        prop_assert_eq!(&forward, &backward);
    }

    /// Serde stays bitwise-canonical: a round trip preserves equality,
    /// value bits, and re-serializes to the identical document (the
    /// canonical digit-window form is a fixed point of the codec).
    #[test]
    fn serde_round_trip_is_bitwise_canonical(values in vec(adversarial_value(), 0..40)) {
        let acc = sparse_of(&values);
        let json = serde_json::to_string(&acc).unwrap();
        let back: ExactSum = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &acc);
        prop_assert_eq!(back.value().to_bits(), acc.value().to_bits());
        let again = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(&again, &json, "serialization is not canonical");
    }
}

#[test]
fn dense_reference_agrees_on_known_results() {
    // Sanity-check the oracle itself on cases with known exact sums.
    let mut dense = DenseSum::new();
    for v in [1e300, 1.0, -1e300] {
        dense.add(v);
    }
    assert_eq!(dense.value(), 1.0);
    let mut dense = DenseSum::new();
    dense.add(f64::MAX);
    dense.add(f64::MAX);
    assert_eq!(dense.value(), f64::INFINITY);
    let mut dense = DenseSum::new();
    dense.add(3.0 * 5e-324);
    dense.add(2.0 * 5e-324);
    assert_eq!(dense.value(), 5.0 * 5e-324);
}
