//! `glc-serve`: the resident ensemble query service.
//!
//! Protocol: **one request per line** on stdin (a
//! [`glc_service::Request`] as JSON, optionally wrapped in an
//! [`glc_service::Envelope`] carrying a correlation `id`), **one
//! response per line** on stdout (flushed immediately, with the
//! request's `id` — if any — echoed back; string ids round-trip
//! byte-exactly, numbers normalize through the JSON layer). Malformed
//! produce an `{"Error": …}` response; the service keeps serving until
//! stdin reaches EOF. Nothing but responses is ever written to stdout,
//! so the stream can be machine-consumed (diagnostics — including the
//! bound metrics address — go to stderr).
//!
//! The process keeps compiled models and partially-aggregated
//! ensembles warm in an LRU-bounded session store: `Submit` compiles
//! and caches, `Extend` simulates only the new seed range and merges
//! it into the resident partial, `Query` finalizes figures with zero
//! simulation work, `Stats` reports the operator snapshot (counters,
//! latency histograms, slot health, session footprints). Extends run
//! in-process by default, or over a worker pool mixing `glc-worker`
//! children (`--workers`, `--worker-slot`) and remote `glc-relay`
//! hosts (`--relay`) — the pool sizes shards by observed slot
//! throughput and quarantines consistently failing slots, none of
//! which can move a bit of the result. With `--spill-dir`, sessions
//! *and pool health* survive eviction and process death: every Extend
//! write-through-snapshots the session and persists
//! `pool_health.json`, and a restarted service transparently resumes
//! from the snapshots with quarantine state intact.
//!
//! Flags:
//!
//! * `--capacity N` — resident-session bound (default 16; LRU evicts
//!   beyond it);
//! * `--workers N`  — add N `glc-worker` child slots to the Extend
//!   pool (default 0);
//! * `--worker-bin PATH` — the worker binary for `--workers`
//!   (default: `glc-worker` next to this executable);
//! * `--worker-slot PATH` — add one child-process slot of exactly this
//!   binary (repeatable; combines with `--workers`/`--relay`, which is
//!   how a drill mixes a known-dead marker script with real workers);
//! * `--relay HOST:PORT` — add one TCP-relay slot dialing a
//!   `glc-relay` at that address (repeatable);
//! * `--quarantine-after N` — consecutive failures that quarantine a
//!   pool slot (default 3);
//! * `--spill-dir PATH` — durable session snapshots + pool health
//!   (see above);
//! * `--spill-max-bytes N` — spill-dir GC size bound: oldest session
//!   snapshots are evicted until the rest fit (the newest survives);
//! * `--spill-max-age SECONDS` — spill-dir GC age bound: snapshots not
//!   rewritten within the window are collected;
//! * `--metrics-addr HOST:PORT` — serve a Prometheus-style plain-text
//!   scrape (`GET /metrics`) on this address; the bound address is
//!   printed to **stderr** (`metrics listening on …`), so `:0` picks a
//!   free port without disturbing the protocol stream;
//! * `--listen HOST:PORT` — serve the same line protocol to many
//!   concurrent TCP clients over a single-threaded nonblocking
//!   readiness loop instead of stdin (see [`serve_listener`]); the
//!   bound address is printed to **stdout** (`glc-serve listening on
//!   …`), and the process still exits when stdin reaches EOF.

use glc_service::codec::{self, Hello};
use glc_service::{
    frame, metrics, transport, ExtendBackend, MetricsRegistry, SessionStore, Transport, WorkerPool,
};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Parsed command line.
struct Options {
    capacity: usize,
    workers: usize,
    worker_bin: Option<PathBuf>,
    worker_slots: Vec<PathBuf>,
    relays: Vec<String>,
    quarantine_after: Option<u64>,
    spill_dir: Option<PathBuf>,
    spill_max_bytes: Option<u64>,
    spill_max_age: Option<u64>,
    metrics_addr: Option<String>,
    listen: Option<String>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        capacity: 16,
        workers: 0,
        worker_bin: None,
        worker_slots: Vec::new(),
        relays: Vec::new(),
        quarantine_after: None,
        spill_dir: None,
        spill_max_bytes: None,
        spill_max_age: None,
        metrics_addr: None,
        listen: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--capacity" => {
                options.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--worker-bin" => {
                options.worker_bin = Some(PathBuf::from(value("--worker-bin")?));
            }
            "--worker-slot" => {
                options
                    .worker_slots
                    .push(PathBuf::from(value("--worker-slot")?));
            }
            "--relay" => {
                options.relays.push(value("--relay")?);
            }
            "--quarantine-after" => {
                options.quarantine_after = Some(
                    value("--quarantine-after")?
                        .parse()
                        .map_err(|e| format!("--quarantine-after: {e}"))?,
                );
            }
            "--spill-dir" => {
                options.spill_dir = Some(PathBuf::from(value("--spill-dir")?));
            }
            "--spill-max-bytes" => {
                options.spill_max_bytes = Some(
                    value("--spill-max-bytes")?
                        .parse()
                        .map_err(|e| format!("--spill-max-bytes: {e}"))?,
                );
            }
            "--spill-max-age" => {
                options.spill_max_age = Some(
                    value("--spill-max-age")?
                        .parse()
                        .map_err(|e| format!("--spill-max-age: {e}"))?,
                );
            }
            "--metrics-addr" => {
                options.metrics_addr = Some(value("--metrics-addr")?);
            }
            "--listen" => {
                options.listen = Some(value("--listen")?);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

/// The `glc-worker` binary expected beside this executable.
fn sibling_worker() -> Result<PathBuf, String> {
    let mut path = std::env::current_exe().map_err(|e| format!("locating glc-serve: {e}"))?;
    path.set_file_name("glc-worker");
    Ok(path)
}

fn run() -> Result<(), String> {
    let options = parse_options()?;
    let registry = Arc::new(MetricsRegistry::new());
    let pooled =
        options.workers > 0 || !options.worker_slots.is_empty() || !options.relays.is_empty();
    let backend = if !pooled {
        ExtendBackend::InProcess
    } else {
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        if options.workers > 0 {
            let worker = match options.worker_bin.clone() {
                Some(path) => path,
                None => sibling_worker()?,
            };
            for _ in 0..options.workers {
                transports.push(Box::new(transport::PipelinedWorker::new(&worker)));
            }
        }
        for slot in &options.worker_slots {
            transports.push(Box::new(transport::PipelinedWorker::new(slot)));
        }
        for relay in &options.relays {
            transports.push(Box::new(transport::PipelinedRelay::new(relay.clone())));
        }
        let mut pool = WorkerPool::new(transports).map_err(|e| e.to_string())?;
        if let Some(failures) = options.quarantine_after {
            pool = pool
                .with_quarantine_after(failures)
                .map_err(|e| e.to_string())?;
        }
        ExtendBackend::Pool(pool)
    };
    let mut store = SessionStore::new(options.capacity, backend)
        .map_err(|e| e.to_string())?
        .with_metrics(Arc::clone(&registry));
    if let Some(dir) = options.spill_dir {
        store = store.with_spill_dir(dir);
    }
    if let Some(max_bytes) = options.spill_max_bytes {
        store = store.with_spill_max_bytes(max_bytes);
    }
    if let Some(seconds) = options.spill_max_age {
        store = store.with_spill_max_age(Duration::from_secs(seconds));
    }
    if let Some(addr) = &options.metrics_addr {
        let (bound, _listener) = metrics::serve_scrape(addr, Arc::clone(&registry))
            .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
        // stdout is protocol-only; the bound address (which matters
        // when the caller asked for port 0) goes to stderr.
        eprintln!("metrics listening on {bound}");
    }

    if let Some(addr) = &options.listen {
        return serve_listener(addr, &mut store);
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut out = stdout.lock();
    // Request lines are capped at the frame payload limit — a caller
    // that never sends a newline gets an error instead of growing the
    // process without bound.
    loop {
        let line = match frame::read_line_capped(&mut input) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(err) => return Err(format!("reading request: {err}")),
        };
        if line.trim().is_empty() {
            continue;
        }
        let encoded = store.handle_json_line(&line);
        writeln!(out, "{encoded}").map_err(|e| format!("writing response: {e}"))?;
        out.flush().map_err(|e| format!("flushing response: {e}"))?;
    }
}

/// How one multiplexed client frames its requests, sniffed from the
/// first byte it sends: the GLCF magic starts with `G`, while a JSON
/// request line can only start with `{`, `"` or whitespace.
enum ClientMode {
    /// No bytes seen yet.
    Sniffing,
    /// Legacy newline-delimited JSON lines.
    Line,
    /// Length-prefixed GLCF frames; after the hello exchange each
    /// frame carries one session request — GLCB `Text` or a raw JSON
    /// line — answered by one frame in the same encoding.
    Framed {
        decoder: frame::FrameDecoder,
        hello_done: bool,
    },
}

/// One multiplexed client connection: raw bytes in, complete request
/// lines handled, response bytes queued back out.
struct ClientConn {
    stream: std::net::TcpStream,
    peer: String,
    mode: ClientMode,
    /// Bytes received but not yet forming a complete request.
    read_buf: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// The peer half-closed its sending side; the connection is
    /// dropped once `write_buf` drains.
    eof: bool,
}

impl ClientConn {
    /// Handles every complete request buffered so far, appending the
    /// responses to `write_buf`. `Err` means the connection is beyond
    /// saving (protocol violation); the message has been logged.
    fn pump(&mut self, store: &mut SessionStore, progressed: &mut bool) -> Result<(), ()> {
        if matches!(self.mode, ClientMode::Sniffing) {
            match self.read_buf.first() {
                None => return Ok(()),
                Some(&first) if first == glc_service::FRAME_MAGIC[0] => {
                    self.mode = ClientMode::Framed {
                        decoder: frame::FrameDecoder::new(),
                        hello_done: false,
                    };
                }
                Some(_) => self.mode = ClientMode::Line,
            }
        }
        match &mut self.mode {
            ClientMode::Sniffing => unreachable!("sniffed above"),
            ClientMode::Line => {
                // Complete lines → responses (requests keep their
                // order: lines are handled in arrival order on this
                // one thread).
                while let Some(newline) = self.read_buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = self.read_buf.drain(..=newline).collect();
                    let line = String::from_utf8_lossy(&line);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let encoded = store.handle_json_line(line);
                    self.write_buf.extend_from_slice(encoded.as_bytes());
                    self.write_buf.push(b'\n');
                    *progressed = true;
                }
                // Same fail-closed ceiling as framed mode: a peer that
                // never sends a newline cannot grow the buffer forever.
                if self.read_buf.len() > glc_service::MAX_FRAME_PAYLOAD {
                    eprintln!(
                        "glc-serve: {} exceeded the {}-byte line cap",
                        self.peer,
                        glc_service::MAX_FRAME_PAYLOAD
                    );
                    return Err(());
                }
                Ok(())
            }
            ClientMode::Framed {
                decoder,
                hello_done,
            } => {
                decoder.push(&self.read_buf);
                self.read_buf.clear();
                loop {
                    let payload = match decoder.next_frame() {
                        Ok(Some(payload)) => payload,
                        Ok(None) => return Ok(()),
                        Err(err) => {
                            eprintln!("glc-serve: bad frame from {}: {err}", self.peer);
                            return Err(());
                        }
                    };
                    *progressed = true;
                    if !*hello_done {
                        let client = match codec::parse_hello(&payload) {
                            Ok(client) => client,
                            Err(err) => {
                                eprintln!("glc-serve: bad hello from {}: {err}", self.peer);
                                return Err(());
                            }
                        };
                        // Sessions don't reduce — that's a relay
                        // capability — so grant at most the codec.
                        let granted = Hello::glcb().intersect(client);
                        let reply = codec::hello_payload(granted);
                        metrics::count_frame_tx(granted.glcb, reply.len());
                        match frame::encode_frame(&reply) {
                            Ok(framed) => self.write_buf.extend_from_slice(&framed),
                            Err(err) => {
                                eprintln!("glc-serve: encoding hello for {}: {err}", self.peer);
                                return Err(());
                            }
                        }
                        *hello_done = true;
                        continue;
                    }
                    // One request per frame, answered in the frame's
                    // own encoding; the line bytes either way are
                    // byte-identical to the stdin protocol.
                    let glcb = codec::is_glcb(&payload);
                    metrics::count_frame_rx(glcb, payload.len());
                    let line = if glcb {
                        match codec::decode_text(&payload) {
                            Ok(line) => line,
                            Err(err) => {
                                eprintln!("glc-serve: bad GLCB text from {}: {err}", self.peer);
                                return Err(());
                            }
                        }
                    } else {
                        match String::from_utf8(payload) {
                            Ok(line) => line,
                            Err(err) => {
                                eprintln!("glc-serve: non-UTF-8 frame from {}: {err}", self.peer);
                                return Err(());
                            }
                        }
                    };
                    let encoded = store.handle_json_line(line.trim());
                    let reply = if glcb {
                        codec::encode_text(&encoded)
                    } else {
                        encoded.into_bytes()
                    };
                    metrics::count_frame_tx(glcb, reply.len());
                    match frame::encode_frame(&reply) {
                        Ok(framed) => self.write_buf.extend_from_slice(&framed),
                        Err(err) => {
                            eprintln!("glc-serve: encoding reply for {}: {err}", self.peer);
                            return Err(());
                        }
                    }
                }
            }
        }
    }

    /// Whether the connection still owes or may produce work.
    fn open(&self) -> bool {
        let drained = match &self.mode {
            ClientMode::Framed { decoder, .. } => !decoder.has_partial(),
            _ => self.read_buf.iter().all(|&b| b.is_ascii_whitespace()),
        };
        !(self.eof && drained && self.write_buf.is_empty())
    }
}

/// The nonblocking multiplexed front-end behind `--listen`: one
/// thread, a hand-rolled readiness loop over `std::net` (the vendored
/// crate policy rules out mio/tokio), serving many concurrent clients
/// that each pipeline newline-delimited requests over one socket.
///
/// The protocol is byte-for-byte the stdin protocol — one
/// `Request`-as-JSON per line, one response line back, `Envelope` ids
/// echoed — so anything scripted against the stdin loop works
/// unchanged against a socket, and responses to one client's
/// pipelined requests come back **in request order** (the store is
/// driven from this single thread; determinism of the store does the
/// rest). Fairness is round-robin: each pass drains whatever complete
/// lines every connection has accumulated.
///
/// Each connection's framing is sniffed from its first byte: legacy
/// clients keep sending newline-delimited lines (now capped at the
/// frame payload limit), while a client that opens with a GLCF hello
/// frame negotiates codecs and sends one request per frame — GLCB
/// `Text` or a raw JSON line — answered by one frame in the same
/// encoding, carrying the byte-identical response line. One socket
/// thus serves binary, framed-JSON and line clients side by side.
///
/// Prints exactly one stdout banner — `glc-serve listening on
/// HOST:PORT` — so a parent that bound port 0 can scrape the chosen
/// port, and exits when stdin reaches EOF (a dying parent cannot leak
/// resident services).
fn serve_listener(addr: &str, store: &mut SessionStore) -> Result<(), String> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("reading bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot make listener nonblocking: {e}"))?;
    println!("glc-serve listening on {bound}");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("flushing address line: {e}"))?;
    std::thread::spawn(|| {
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink);
        std::process::exit(0);
    });

    let mut conns: Vec<ClientConn> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    loop {
        let mut progressed = false;

        // Accept every connection already waiting.
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    if let Err(err) = stream.set_nonblocking(true) {
                        eprintln!("glc-serve: cannot make {peer} nonblocking: {err}");
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(ClientConn {
                        stream,
                        peer: peer.to_string(),
                        mode: ClientMode::Sniffing,
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        eof: false,
                    });
                    progressed = true;
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(err) => {
                    eprintln!("glc-serve: accept failed: {err}");
                    break;
                }
            }
        }

        // Round-robin over connections: read what's there, handle the
        // complete lines, push out what the socket will take.
        conns.retain_mut(|conn| {
            use std::io::{Read as _, Write as _};
            // Readable bytes.
            if !conn.eof {
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            conn.eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.read_buf.extend_from_slice(&scratch[..n]);
                            progressed = true;
                        }
                        Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(err) => {
                            eprintln!("glc-serve: reading from {}: {err}", conn.peer);
                            return false;
                        }
                    }
                }
            }
            // Complete requests → responses, in whichever framing
            // this client sniffed to.
            if conn.pump(store, &mut progressed).is_err() {
                return false;
            }
            // Writable bytes.
            while !conn.write_buf.is_empty() {
                match conn.stream.write(&conn.write_buf) {
                    Ok(0) => {
                        eprintln!("glc-serve: {} stopped accepting bytes", conn.peer);
                        return false;
                    }
                    Ok(n) => {
                        conn.write_buf.drain(..n);
                        progressed = true;
                    }
                    Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(err) => {
                        eprintln!("glc-serve: writing to {}: {err}", conn.peer);
                        return false;
                    }
                }
            }
            // A half-closed peer is dropped once everything owed it
            // (including replies to requests that arrived with the
            // EOF) has been handled and flushed.
            conn.open()
        });

        if !progressed {
            // Nothing readable, writable or pending anywhere: idle.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("glc-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
