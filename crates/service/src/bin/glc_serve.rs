//! `glc-serve`: the resident ensemble query service.
//!
//! Protocol: **one request per line** on stdin (a
//! [`glc_service::Request`] as JSON), **one response per line** on
//! stdout (a [`glc_service::Response`] as JSON, flushed immediately).
//! Malformed lines produce an `{"Error": …}` response; the service
//! keeps serving until stdin reaches EOF. Nothing but responses is
//! ever written to stdout, so the stream can be machine-consumed.
//!
//! The process keeps compiled models and partially-aggregated
//! ensembles warm in an LRU-bounded session store: `Submit` compiles
//! and caches, `Extend` simulates only the new seed range (in-process
//! by default; over `glc-worker` children for any `--workers` ≥ 1) and
//! merges it into the resident partial, `Query` finalizes figures with
//! zero simulation work. Like `glc-worker`, the binary is
//! transport-agnostic: pipes today, a socket relay or container exec
//! tomorrow.
//!
//! Flags:
//!
//! * `--capacity N` — resident-session bound (default 16; LRU evicts
//!   beyond it);
//! * `--workers N`  — fan each Extend out over N `glc-worker` children
//!   (default 0 = simulate in-process on the service thread);
//! * `--worker-bin PATH` — the worker binary for `--workers`
//!   (default: `glc-worker` next to this executable).

use glc_service::{Coordinator, ExtendBackend, Request, Response, SessionStore};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line.
struct Options {
    capacity: usize,
    workers: usize,
    worker_bin: Option<PathBuf>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        capacity: 16,
        workers: 0,
        worker_bin: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--capacity" => {
                options.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--worker-bin" => {
                options.worker_bin = Some(PathBuf::from(value("--worker-bin")?));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

/// The `glc-worker` binary expected beside this executable.
fn sibling_worker() -> Result<PathBuf, String> {
    let mut path = std::env::current_exe().map_err(|e| format!("locating glc-serve: {e}"))?;
    path.set_file_name("glc-worker");
    Ok(path)
}

fn run() -> Result<(), String> {
    let options = parse_options()?;
    let backend = if options.workers == 0 {
        ExtendBackend::InProcess
    } else {
        let worker = match options.worker_bin.clone() {
            Some(path) => path,
            None => sibling_worker()?,
        };
        ExtendBackend::Coordinator(
            Coordinator::new(worker, options.workers).map_err(|e| e.to_string())?,
        )
    };
    let mut store = SessionStore::new(options.capacity, backend).map_err(|e| e.to_string())?;

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading request: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(line.trim()) {
            Ok(request) => store.handle(&request),
            Err(err) => Response::Error(format!("unparseable request: {err}")),
        };
        let encoded =
            serde_json::to_string(&response).map_err(|e| format!("encoding response: {e}"))?;
        writeln!(out, "{encoded}").map_err(|e| format!("writing response: {e}"))?;
        out.flush().map_err(|e| format!("flushing response: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("glc-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
