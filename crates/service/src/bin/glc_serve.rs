//! `glc-serve`: the resident ensemble query service.
//!
//! Protocol: **one request per line** on stdin (a
//! [`glc_service::Request`] as JSON, optionally wrapped in an
//! [`glc_service::Envelope`] carrying a correlation `id`), **one
//! response per line** on stdout (flushed immediately, with the
//! request's `id` — if any — echoed back; string ids round-trip
//! byte-exactly, numbers normalize through the JSON layer). Malformed
//! produce an `{"Error": …}` response; the service keeps serving until
//! stdin reaches EOF. Nothing but responses is ever written to stdout,
//! so the stream can be machine-consumed.
//!
//! The process keeps compiled models and partially-aggregated
//! ensembles warm in an LRU-bounded session store: `Submit` compiles
//! and caches, `Extend` simulates only the new seed range and merges
//! it into the resident partial, `Query` finalizes figures with zero
//! simulation work, `Stats` reports service counters. Extends run
//! in-process by default, or over a worker pool mixing `glc-worker`
//! children (`--workers`) and remote `glc-relay` hosts (`--relay`) —
//! the pool sizes shards by observed slot throughput and quarantines
//! consistently failing slots, none of which can move a bit of the
//! result. With `--spill-dir`, sessions survive eviction *and process
//! death*: every Extend write-through-snapshots the session, and a
//! restarted service transparently resumes from the snapshots.
//!
//! Flags:
//!
//! * `--capacity N` — resident-session bound (default 16; LRU evicts
//!   beyond it);
//! * `--workers N`  — add N `glc-worker` child slots to the Extend
//!   pool (default 0);
//! * `--worker-bin PATH` — the worker binary for `--workers`
//!   (default: `glc-worker` next to this executable);
//! * `--relay HOST:PORT` — add one TCP-relay slot dialing a
//!   `glc-relay` at that address (repeatable; combines with
//!   `--workers`);
//! * `--spill-dir PATH` — durable session snapshots (see above).

use glc_service::{transport, ExtendBackend, SessionStore, Transport, WorkerPool};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line.
struct Options {
    capacity: usize,
    workers: usize,
    worker_bin: Option<PathBuf>,
    relays: Vec<String>,
    spill_dir: Option<PathBuf>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        capacity: 16,
        workers: 0,
        worker_bin: None,
        relays: Vec::new(),
        spill_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--capacity" => {
                options.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--worker-bin" => {
                options.worker_bin = Some(PathBuf::from(value("--worker-bin")?));
            }
            "--relay" => {
                options.relays.push(value("--relay")?);
            }
            "--spill-dir" => {
                options.spill_dir = Some(PathBuf::from(value("--spill-dir")?));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

/// The `glc-worker` binary expected beside this executable.
fn sibling_worker() -> Result<PathBuf, String> {
    let mut path = std::env::current_exe().map_err(|e| format!("locating glc-serve: {e}"))?;
    path.set_file_name("glc-worker");
    Ok(path)
}

fn run() -> Result<(), String> {
    let options = parse_options()?;
    let backend = if options.workers == 0 && options.relays.is_empty() {
        ExtendBackend::InProcess
    } else {
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        if options.workers > 0 {
            let worker = match options.worker_bin.clone() {
                Some(path) => path,
                None => sibling_worker()?,
            };
            for _ in 0..options.workers {
                transports.push(Box::new(transport::ChildProcess::new(&worker)));
            }
        }
        for relay in &options.relays {
            transports.push(Box::new(transport::TcpRelay::new(relay.clone())));
        }
        ExtendBackend::Pool(WorkerPool::new(transports).map_err(|e| e.to_string())?)
    };
    let mut store = SessionStore::new(options.capacity, backend).map_err(|e| e.to_string())?;
    if let Some(dir) = options.spill_dir {
        store = store.with_spill_dir(dir);
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading request: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let encoded = store.handle_json_line(&line);
        writeln!(out, "{encoded}").map_err(|e| format!("writing response: {e}"))?;
        out.flush().map_err(|e| format!("flushing response: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("glc-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
