//! `glc-client`: a session-protocol test client for `glc-serve
//! --listen`.
//!
//! Connects to a listening service, forwards one JSON request line
//! per stdin line, and prints the response line to stdout — so a
//! drill can `cmp` a socket transcript bitwise against the same
//! requests piped through the stdin loop. The wire encoding is
//! selectable, which is the point: all three codecs must produce
//! byte-identical response lines.
//!
//! Flags:
//!
//! * `--connect HOST:PORT` — the `glc-serve --listen` address
//!   (required);
//! * `--codec line|json|glcb` — how requests travel (default `line`):
//!   * `line` — the legacy newline protocol, bytes as-is;
//!   * `json` — GLCF frames with raw JSON line payloads (a framed
//!     peer that never learned GLCB);
//!   * `glcb` — GLCF frames with GLCB `Text` payloads, negotiated in
//!     the hello exchange.
//!
//! Requests are sent synchronously — one line out, one response in —
//! so the transcript order matches the stdin protocol exactly.

use glc_service::codec::{self, Hello};
use glc_service::frame;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;

/// The wire encoding for one run.
#[derive(Clone, Copy, PartialEq)]
enum Codec {
    Line,
    Json,
    Glcb,
}

struct Options {
    connect: String,
    codec: Codec,
}

fn parse_options() -> Result<Options, String> {
    let mut connect = None;
    let mut codec = Codec::Line;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--codec" => {
                codec = match value("--codec")?.as_str() {
                    "line" => Codec::Line,
                    "json" => Codec::Json,
                    "glcb" => Codec::Glcb,
                    other => return Err(format!("--codec: unknown codec `{other}`")),
                };
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Options {
        connect: connect.ok_or("--connect HOST:PORT is required")?,
        codec,
    })
}

fn run() -> Result<(), String> {
    let options = parse_options()?;
    let stream = TcpStream::connect(&options.connect)
        .map_err(|e| format!("cannot connect to {}: {e}", options.connect))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);

    if options.codec != Codec::Line {
        // Framed modes open with the hello exchange; a `json` client
        // sends the legacy hello and must be granted exactly that.
        let hello = match options.codec {
            Codec::Glcb => Hello::glcb(),
            _ => Hello::legacy(),
        };
        frame::write_frame(&mut writer, &codec::hello_payload(hello))
            .map_err(|e| format!("sending hello: {e}"))?;
        let reply = frame::read_frame(&mut reader)
            .map_err(|e| format!("reading hello: {e}"))?
            .ok_or("server closed during hello")?;
        let granted = codec::parse_hello(&reply).map_err(|e| format!("parsing hello: {e}"))?;
        if options.codec == Codec::Glcb && !granted.glcb {
            return Err("server did not grant the glcb codec".into());
        }
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut input = stdin.lock();
    loop {
        let line = match frame::read_line_capped(&mut input) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(err) => return Err(format!("reading request: {err}")),
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match options.codec {
            Codec::Line => {
                writeln!(writer, "{line}").map_err(|e| format!("sending request: {e}"))?;
                writer
                    .flush()
                    .map_err(|e| format!("sending request: {e}"))?;
                let mut response = String::new();
                if reader
                    .read_line(&mut response)
                    .map_err(|e| format!("reading response: {e}"))?
                    == 0
                {
                    return Err("server closed mid-conversation".into());
                }
                response.trim_end_matches('\n').to_string()
            }
            Codec::Json => {
                frame::write_frame(&mut writer, line.as_bytes())
                    .map_err(|e| format!("sending request frame: {e}"))?;
                let payload = frame::read_frame(&mut reader)
                    .map_err(|e| format!("reading response frame: {e}"))?
                    .ok_or("server closed mid-conversation")?;
                String::from_utf8(payload).map_err(|e| format!("non-UTF-8 response: {e}"))?
            }
            Codec::Glcb => {
                frame::write_frame(&mut writer, &codec::encode_text(&line))
                    .map_err(|e| format!("sending request frame: {e}"))?;
                let payload = frame::read_frame(&mut reader)
                    .map_err(|e| format!("reading response frame: {e}"))?
                    .ok_or("server closed mid-conversation")?;
                codec::decode_text(&payload).map_err(|e| format!("decoding response: {e}"))?
            }
        };
        writeln!(out, "{response}").map_err(|e| format!("writing response: {e}"))?;
        out.flush().map_err(|e| format!("flushing response: {e}"))?;
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("glc-client: {message}");
            ExitCode::FAILURE
        }
    }
}
