//! `glc-relay`: a TCP shard relay — the remote-transport rung of the
//! worker fabric.
//!
//! Listens on a socket, accepts connections, and serves **one
//! newline-framed JSON [`glc_service::WorkOrder`] per line** on each
//! connection, replying with one framed [`glc_service::RelayReply`]
//! (the shard's `EnsemblePartial`, or the error that stopped it — a
//! failed order never kills the relay). Each connection is served on
//! its own thread, so a `glc-serve` holding several `TcpRelay` slots
//! pointed at one relay runs its shards in parallel *here*, on this
//! host's cores — which is the whole point: one front-end can fan
//! ensemble work out to workers on other machines, and determinism
//! (absolute replicate seeds + exact partial accumulation) guarantees
//! the bits are identical to running everything locally.
//!
//! On startup the relay prints exactly one line to stdout —
//! `glc-relay listening on HOST:PORT` — so a parent that bound port 0
//! can scrape the chosen port, then exits when its stdin reaches EOF
//! (so a dying parent cannot leak relays).
//!
//! Flags:
//!
//! * `--listen HOST:PORT` — bind address (default `127.0.0.1:0` = any
//!   free local port, reported on stdout);
//! * `--workers N` — run each order over N `glc-worker` children via a
//!   local [`glc_service::Coordinator`] (default 0 = execute in this
//!   process on the connection's thread);
//! * `--worker-bin PATH` — the worker binary for `--workers`
//!   (default: `glc-worker` next to this executable).
//!
//! Orders execute through the process-wide compiled-model cache
//! (`glc_ssa::ModelCache::shared`, via `WorkOrder::compile_model`): a
//! relay hammered with shards of the same circuit — the normal sweep
//! shape — compiles it once and serves every later order, on any
//! connection thread, from the shared `Arc`.
//!
//! ## GLCB and reduction mode
//!
//! Framed connections negotiate capabilities in the hello exchange
//! (`glc_service::codec`): the relay advertises the GLCB binary codec
//! *and* partial reduction, grants the intersection of what the client
//! asked for, and answers each frame in its own encoding. On a
//! reduce-granted connection, GLCB orders that finish while others are
//! still running locally get a `Deferred` receipt (freeing the
//! client's pipeline window) and their partials merge into one
//! per-connection accumulator; when the local in-flight count hits
//! zero the whole batch ships upstream as a single `Reduced` reply —
//! coordinator ingress drops from one decode+merge per chunk to one
//! per relay drain.

use glc_service::codec::{self, BinaryReply, Hello};
use glc_service::{frame, Coordinator, RelayReply, ServiceError, WorkOrder};
use glc_ssa::EnsemblePartial;
use std::io::{BufReader, Read as _, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

/// Parsed command line.
struct Options {
    listen: String,
    workers: usize,
    worker_bin: Option<PathBuf>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        listen: "127.0.0.1:0".to_string(),
        workers: 0,
        worker_bin: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--listen" => options.listen = value("--listen")?,
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--worker-bin" => {
                options.worker_bin = Some(PathBuf::from(value("--worker-bin")?));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

/// How this relay executes one order.
#[derive(Clone)]
enum Executor {
    /// On the connection's thread, in this process.
    InProcess,
    /// Over `glc-worker` children of this relay.
    Coordinator { worker: PathBuf, workers: usize },
}

impl Executor {
    fn run(&self, order: &WorkOrder) -> Result<EnsemblePartial, ServiceError> {
        match self {
            Executor::InProcess => order.execute(),
            Executor::Coordinator { worker, workers } => {
                Coordinator::new(worker, *workers).and_then(|coordinator| coordinator.run(order))
            }
        }
    }

    fn execute(&self, order: &WorkOrder) -> RelayReply {
        match self.run(order) {
            Ok(partial) => RelayReply::Partial(partial),
            Err(err) => RelayReply::Error(err.to_string()),
        }
    }
}

/// The per-connection reduction accumulator: partials of locally
/// completed GLCB orders merged into one running total, flushed
/// upstream as a single `Reduced` reply when the connection's local
/// in-flight count hits zero (or when an order of an incompatible
/// fingerprint arrives). Deferred/Reduced ordering matters to the
/// client — a `Deferred` receipt must reach it before any `Reduced`
/// covering that id — so completions mutate the state *and* write
/// their reply under one lock.
#[derive(Default)]
struct Reducer {
    /// Reduction-eligible orders currently executing on this
    /// connection's threads.
    inflight: usize,
    /// Correlation ids whose partials sit in `total`, in deferral
    /// order.
    pending: Vec<u64>,
    /// The running merge of the pending orders' partials.
    total: Option<EnsemblePartial>,
}

/// Writes one GLCB reply frame under the connection's writer lock.
fn write_reply(writer: &Mutex<TcpStream>, payload: &[u8], peer: &str) {
    let mut writer = writer.lock().expect("relay writer poisoned");
    if let Err(err) = frame::write_frame(&mut *writer, payload) {
        eprintln!("glc-relay: writing reply frame to {peer}: {err}");
    }
}

/// Completes one reduction-mode order: merge-or-flush bookkeeping plus
/// the reply the client sees (`Deferred`, `Reduced`, or `Error`).
fn reduce_complete(
    reducer: &Mutex<Reducer>,
    writer: &Mutex<TcpStream>,
    id: u64,
    replicates: u64,
    outcome: Result<EnsemblePartial, ServiceError>,
    peer: &str,
) {
    let mut state = reducer.lock().expect("relay reducer poisoned");
    state.inflight -= 1;
    match outcome {
        Ok(partial) => {
            match state.total.take() {
                None => state.total = Some(partial),
                Some(mut total) => {
                    if total.merge(&partial).is_ok() {
                        state.total = Some(total);
                    } else {
                        // Incompatible fingerprint (a new session's
                        // chunks started arriving): ship the finished
                        // batch, then open a new one. Merge failure is
                        // all-or-nothing, so `total` still holds
                        // exactly the pending ids' bits.
                        let mut pending = std::mem::take(&mut state.pending);
                        let flush_id = pending.remove(0);
                        let reply = BinaryReply::Reduced {
                            also_covers: pending,
                            partial: total,
                        };
                        write_reply(writer, &codec::encode_reply(flush_id, &reply), peer);
                        state.total = Some(partial);
                    }
                }
            }
            if state.inflight == 0 {
                // Last local order out: this id carries the whole
                // batch upstream.
                let also_covers = std::mem::take(&mut state.pending);
                let partial = state.total.take().expect("batch just merged");
                let reply = BinaryReply::Reduced {
                    also_covers,
                    partial,
                };
                write_reply(writer, &codec::encode_reply(id, &reply), peer);
            } else {
                // Others still running here: absorb this chunk and
                // free the client's window slot with a receipt.
                state.pending.push(id);
                let reply = BinaryReply::Deferred { replicates };
                write_reply(writer, &codec::encode_reply(id, &reply), peer);
            }
        }
        Err(err) => {
            let reply = BinaryReply::Error(err.to_string());
            write_reply(writer, &codec::encode_reply(id, &reply), peer);
            if state.inflight == 0 {
                // The error emptied the local window; anything already
                // absorbed must still go upstream.
                if let Some(partial) = state.total.take() {
                    let mut pending = std::mem::take(&mut state.pending);
                    let flush_id = pending.remove(0);
                    let reply = BinaryReply::Reduced {
                        also_covers: pending,
                        partial,
                    };
                    write_reply(writer, &codec::encode_reply(flush_id, &reply), peer);
                }
            }
        }
    }
}

/// Serves one connection until the peer closes, sniffing the framing
/// from the first byte: the frame protocol's magic starts with `G`
/// (a client that wants frames sends its hello first), while a JSON
/// work-order line can only start with `{`, `"` or whitespace — so
/// one port serves both the legacy line protocol and the pipelined
/// framed protocol.
fn serve_connection(stream: TcpStream, executor: Executor) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    let mut first = [0u8; 1];
    match stream.peek(&mut first) {
        Ok(1) if first[0] == glc_service::FRAME_MAGIC[0] => {
            serve_framed(stream, executor, &peer);
            return;
        }
        Ok(_) => {}
        Err(err) => {
            eprintln!("glc-relay: sniffing protocol from {peer}: {err}");
            return;
        }
    }
    serve_lines(stream, executor, &peer);
}

/// The pipelined framed protocol: exchange hello frames, then answer
/// each `Envelope<WorkOrder>` frame with an `Envelope<RelayReply>`
/// frame echoing its correlation id. Orders run on their own threads
/// behind a mutexed writer, so replies go back **as they complete** —
/// possibly out of order; the id is what lets the client reorder.
fn serve_framed(stream: TcpStream, executor: Executor, peer: &str) {
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(writer) => Arc::new(Mutex::new(writer)),
        Err(err) => {
            eprintln!("glc-relay: cannot clone stream for {peer}: {err}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let client = match frame::read_frame(&mut reader) {
        Ok(Some(payload)) => match codec::parse_hello(&payload) {
            Ok(client) => client,
            Err(err) => {
                eprintln!("glc-relay: bad hello from {peer}: {err}");
                return;
            }
        },
        Ok(None) => return, // Connected, said nothing, hung up.
        Err(err) => {
            eprintln!("glc-relay: reading hello from {peer}: {err}");
            return;
        }
    };
    // Grant the intersection of what we speak and what the client
    // asked for; a legacy client gets the byte-exact legacy hello back.
    let granted = Hello::glcb_reducing().intersect(client);
    let reducing = granted.glcb && granted.reduce;
    {
        let mut writer = writer.lock().expect("relay writer poisoned");
        if let Err(err) = frame::write_frame(&mut *writer, &codec::hello_payload(granted)) {
            eprintln!("glc-relay: answering hello to {peer}: {err}");
            return;
        }
    }
    let reducer = Arc::new(Mutex::new(Reducer::default()));
    let mut order_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let payload = match frame::read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // Clean EOF between frames.
            Err(err) => {
                eprintln!("glc-relay: reading order frame from {peer}: {err}");
                break;
            }
        };
        let glcb = codec::is_glcb(&payload);
        let decoded: Result<(u64, WorkOrder), ServiceError> = if glcb {
            codec::decode_order(&payload)
        } else {
            frame::decode_message(&payload)
        };
        let (id, order) = match decoded {
            Ok(decoded) => decoded,
            Err(err) => {
                // An undecodable frame cannot even be answered in-band
                // (no id to address the reply to): drop the connection.
                eprintln!("glc-relay: decoding order frame from {peer}: {err}");
                break;
            }
        };
        order_threads.retain(|thread| !thread.is_finished());
        let executor = executor.clone();
        let writer = Arc::clone(&writer);
        let peer = peer.to_string();
        // Only GLCB orders on a reduce-granted connection join the
        // accumulator: a JSON envelope mixed onto the same socket gets
        // its own plain JSON reply and stays invisible to reduction.
        if reducing && glcb {
            let reducer = Arc::clone(&reducer);
            // Count the order in-flight *before* its thread exists, so
            // a burst of orders can never observe inflight == 0 between
            // the read and the spawn and flush a premature batch.
            reducer.lock().expect("relay reducer poisoned").inflight += 1;
            let replicates = order.replicates;
            order_threads.push(std::thread::spawn(move || {
                let outcome = executor.run(&order);
                reduce_complete(&reducer, &writer, id, replicates, outcome, &peer);
            }));
        } else {
            order_threads.push(std::thread::spawn(move || {
                if glcb {
                    let reply = match executor.run(&order) {
                        Ok(partial) => BinaryReply::Partial(partial),
                        Err(err) => BinaryReply::Error(err.to_string()),
                    };
                    write_reply(&writer, &codec::encode_reply(id, &reply), &peer);
                } else {
                    let reply = executor.execute(&order);
                    match frame::encode_message(id, &reply) {
                        Ok(encoded) => write_reply(&writer, &encoded, &peer),
                        Err(err) => eprintln!("glc-relay: encoding reply for {peer}: {err}"),
                    }
                }
            }));
        }
    }
    for thread in order_threads {
        let _ = thread.join();
    }
}

/// The legacy line protocol: one newline-framed JSON order per line,
/// one reply line each, strictly in order.
fn serve_lines(stream: TcpStream, executor: Executor, peer: &str) {
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(err) => {
            eprintln!("glc-relay: cannot clone stream for {peer}: {err}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Capped at the frame payload limit so a malformed (or
        // malicious) peer cannot balloon the relay by never sending a
        // newline — the same fail-closed ceiling framed mode has.
        let line = match frame::read_line_capped(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return, // Clean EOF.
            Err(err) => {
                eprintln!("glc-relay: reading from {peer}: {err}");
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<WorkOrder>(line.trim()) {
            Ok(order) => executor.execute(&order),
            Err(err) => RelayReply::Error(format!("unparseable work order: {err}")),
        };
        let encoded = match serde_json::to_string(&reply) {
            Ok(encoded) => encoded,
            Err(err) => {
                eprintln!("glc-relay: encoding reply for {peer}: {err}");
                return;
            }
        };
        if let Err(err) = writeln!(writer, "{encoded}").and_then(|()| writer.flush()) {
            eprintln!("glc-relay: writing to {peer}: {err}");
            return;
        }
    }
}

/// The `glc-worker` binary expected beside this executable.
fn sibling_worker() -> Result<PathBuf, String> {
    let mut path = std::env::current_exe().map_err(|e| format!("locating glc-relay: {e}"))?;
    path.set_file_name("glc-worker");
    Ok(path)
}

fn run() -> Result<(), String> {
    let options = parse_options()?;
    let executor = if options.workers == 0 {
        Executor::InProcess
    } else {
        let worker = match options.worker_bin.clone() {
            Some(path) => path,
            None => sibling_worker()?,
        };
        Executor::Coordinator {
            worker,
            workers: options.workers,
        }
    };
    let listener = TcpListener::bind(&options.listen)
        .map_err(|e| format!("cannot bind {}: {e}", options.listen))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("reading bound address: {e}"))?;
    // The one stdout line a parent scrapes for the chosen port.
    println!("glc-relay listening on {bound}");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("flushing address line: {e}"))?;

    // Exit when stdin closes: a relay spawned by a test, bench or
    // supervisor dies with its parent instead of leaking.
    std::thread::spawn(|| {
        let mut sink = Vec::new();
        let _ = std::io::stdin().read_to_end(&mut sink);
        std::process::exit(0);
    });

    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let executor = executor.clone();
                std::thread::spawn(move || serve_connection(stream, executor));
            }
            Err(err) => eprintln!("glc-relay: accept failed: {err}"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("glc-relay: {message}");
            ExitCode::FAILURE
        }
    }
}
