//! `glc-worker`: one ensemble shard per process.
//!
//! Protocol: read a single [`glc_service::WorkOrder`] as JSON from
//! **stdin** (to EOF), simulate its replicate range, write the
//! resulting `glc_ssa::EnsemblePartial` as JSON to **stdout**. Any
//! failure goes to stderr with a non-zero exit status.
//!
//! The binary is deliberately transport-agnostic: a local
//! `Coordinator` drives it over pipes today, and the same bytes work
//! over ssh, a container exec, or a job queue tomorrow. It stays the
//! stateless shard primitive; the resident Submit/Extend/Query
//! session protocol lives one level up, in `glc-serve`, which fans
//! its Extend ranges out over these workers.
//!
//! A one-shot process compiles its model exactly once either way, but
//! `WorkOrder::execute` still routes the compile through the
//! process-wide `glc_ssa::ModelCache`, so any host embedding this
//! run loop in a longer-lived process (as `glc-relay` does) gets
//! compile reuse without changing the protocol.

use glc_service::WorkOrder;
use std::io::Read as _;
use std::process::ExitCode;

fn run() -> Result<String, String> {
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .map_err(|e| format!("reading work order from stdin: {e}"))?;
    let order: WorkOrder =
        serde_json::from_str(input.trim()).map_err(|e| format!("parsing work order: {e}"))?;
    let partial = order.execute().map_err(|e| e.to_string())?;
    serde_json::to_string(&partial).map_err(|e| format!("encoding partial: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("glc-worker: {message}");
            ExitCode::FAILURE
        }
    }
}
