//! `glc-worker`: one ensemble shard per process.
//!
//! Protocol: read a single [`glc_service::WorkOrder`] as JSON from
//! **stdin** (to EOF), simulate its replicate range, write the
//! resulting `glc_ssa::EnsemblePartial` as JSON to **stdout**. Any
//! failure goes to stderr with a non-zero exit status.
//!
//! The binary is deliberately transport-agnostic: a local
//! `Coordinator` drives it over pipes today, and the same bytes work
//! over ssh, a container exec, or a job queue tomorrow. It stays the
//! stateless shard primitive; the resident Submit/Extend/Query
//! session protocol lives one level up, in `glc-serve`, which fans
//! its Extend ranges out over these workers.
//!
//! A one-shot process compiles its model exactly once either way, but
//! `WorkOrder::execute` still routes the compile through the
//! process-wide `glc_ssa::ModelCache`, so any host embedding this
//! run loop in a longer-lived process (as `glc-relay` does) gets
//! compile reuse without changing the protocol.
//!
//! ## Resident mode: `glc-worker --serve`
//!
//! With `--serve` the process stays resident and speaks the
//! length-prefixed frame protocol (`glc_service::frame`) on
//! stdin/stdout instead: it sends the hello frame, then answers each
//! framed `Envelope<WorkOrder>` with a framed `Envelope<RelayReply>`
//! echoing the order's correlation `id`. One process thereby serves
//! many chunk orders — the model compiles once in the process-wide
//! `ModelCache` and every later chunk of the same circuit reuses it —
//! and the pool keeps several orders in flight on the same pipe.
//! Execution failures travel in-band as `RelayReply::Error` frames;
//! only transport-level problems (unreadable stdin, a frame that
//! fails to decode) exit the process. Clean EOF at a frame boundary
//! is a normal shutdown.
//!
//! The hello advertises the GLCB binary codec (`glc_service::codec`),
//! and each incoming frame is answered in its own payload encoding —
//! a GLCB order gets a GLCB reply, a JSON envelope gets a JSON reply —
//! so legacy framed clients keep working bit-for-bit.

use glc_service::codec::{self, BinaryReply, Hello};
use glc_service::{frame, RelayReply, WorkOrder};
use std::io::Read as _;
use std::process::ExitCode;

fn run() -> Result<String, String> {
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .map_err(|e| format!("reading work order from stdin: {e}"))?;
    let order: WorkOrder =
        serde_json::from_str(input.trim()).map_err(|e| format!("parsing work order: {e}"))?;
    let partial = order.execute().map_err(|e| e.to_string())?;
    serde_json::to_string(&partial).map_err(|e| format!("encoding partial: {e}"))
}

fn serve() -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    frame::write_frame(&mut writer, &codec::hello_payload(Hello::glcb()))
        .map_err(|e| format!("sending hello frame: {e}"))?;
    loop {
        let Some(payload) =
            frame::read_frame(&mut reader).map_err(|e| format!("reading order frame: {e}"))?
        else {
            return Ok(()); // Clean EOF between frames: the pool hung up.
        };
        let glcb = codec::is_glcb(&payload);
        let (id, order): (u64, WorkOrder) = if glcb {
            codec::decode_order(&payload).map_err(|e| format!("decoding order frame: {e}"))?
        } else {
            frame::decode_message(&payload).map_err(|e| format!("decoding order frame: {e}"))?
        };
        // The order executes on this thread: chunk orders are sized to
        // fractions of a second and the pool pipelines across
        // *processes*, so in-process concurrency would only add
        // nondeterministic completion order for nothing.
        let outcome = order.execute();
        // Answer in the frame's own codec, so one connection can mix
        // encodings and a legacy client never sees a binary byte.
        let encoded = if glcb {
            let reply = match outcome {
                Ok(partial) => BinaryReply::Partial(partial),
                Err(err) => BinaryReply::Error(err.to_string()),
            };
            codec::encode_reply(id, &reply)
        } else {
            let reply = match outcome {
                Ok(partial) => RelayReply::Partial(partial),
                Err(err) => RelayReply::Error(err.to_string()),
            };
            frame::encode_message(id, &reply).map_err(|e| format!("encoding reply frame: {e}"))?
        };
        frame::write_frame(&mut writer, &encoded)
            .map_err(|e| format!("writing reply frame: {e}"))?;
    }
}

fn main() -> ExitCode {
    let resident = std::env::args().skip(1).any(|arg| arg == "--serve");
    let outcome = if resident {
        serve().map(|()| None)
    } else {
        run().map(Some)
    };
    match outcome {
        Ok(Some(json)) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Ok(None) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("glc-worker: {message}");
            ExitCode::FAILURE
        }
    }
}
