//! Process-level ensemble sharding: the `glc-worker` protocol.
//!
//! The virtual-lab workload is ensemble-shaped — every noise figure,
//! threshold estimate and propagation-delay measurement averages many
//! stochastic replicates — and replicates are embarrassingly parallel.
//! This crate is the first distribution rung from `ROADMAP.md`: a
//! process-level worker protocol built on the mergeable
//! [`EnsemblePartial`] aggregates from `glc_ssa`.
//!
//! * [`WorkOrder`] — a self-contained JSON description of one shard:
//!   the model (inline SBML via `glc_model::sbml`, or a catalog
//!   circuit id), initial-amount overrides, the engine, a contiguous
//!   replicate range, and the sampling grid;
//! * `glc-worker` (binary) — reads one work order on **stdin**, runs
//!   [`WorkOrder::execute`], writes the resulting [`EnsemblePartial`]
//!   as JSON on **stdout**. No flags, no files, no network: anything
//!   that can move bytes between processes can host a worker;
//! * [`Coordinator`] — shards a replicate range into work orders, fans
//!   them out over `std::process` children, merges the returned
//!   partials in shard order and finalizes the [`Ensemble`]. A failed
//!   shard is retried once on a different worker slot (determinism
//!   makes the re-issued seed range idempotent) and per-worker failure
//!   counts are surfaced through [`RunReport`];
//! * [`session`] — the **resident query service**: Submit / Extend /
//!   Query over an LRU-bounded [`session::SessionStore`] that keeps
//!   compiled models and partially-aggregated ensembles warm, served
//!   by the `glc-serve` binary as line-delimited JSON. Extends fan out
//!   over the same worker protocol; queries do zero simulation work.
//! * [`metrics`] — the operator-grade observability layer: request and
//!   shard latency histograms over lock-free atomics, slot health and
//!   session footprints, exported through the extended Stats wire reply
//!   and a Prometheus-style text scrape (`glc-serve --metrics-addr`).
//!   Recording is observation-only and cannot move a bit of any result.
//!
//! # Determinism
//!
//! Replicate `i` is seeded `base_seed + i` no matter which process runs
//! it, and partial merging is exact (see `glc_ssa::exact`), so a
//! coordinator over any number of workers reproduces the in-process
//! `run_ensemble` aggregate **bitwise** — and a resident session
//! extended `0..R` then `R..R+N` holds exactly the partial a fresh
//! `0..R+N` run produces (seed-range accounting validates the merges
//! are disjoint rather than trusting them). The integration tests
//! assert exactly that, and CI exercises it on every push.
//!
//! See `crates/service/README.md` for the wire schemas with worked
//! examples.

#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod metrics;
pub mod session;
pub mod transport;

pub use codec::{BinaryReply, Hello, GLCB_MAGIC, GLCB_VERSION};
pub use frame::{FrameDecoder, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_PAYLOAD};
pub use metrics::{HistogramSnapshot, MetricsRegistry, RequestKind};
pub use session::{
    Envelope, ExtendBackend, ExtendRequest, Extended, Queried, QueryRequest, Request,
    RequestLatency, Response, ServiceStats, SessionFootprint, SessionSpec, SessionStore,
    SpeciesNoise, Submitted,
};
pub use transport::{
    ChildProcess, ChunkChannel, ChunkReply, InProcess, PipelinedRelay, PipelinedWorker,
    PoolHealthSnapshot, RelayReply, ShardHandle, SlotHealth, SlotHealthRecord, TcpRelay, Transport,
    WorkerPool,
};

use glc_model::Model;
use glc_ssa::{
    run_partial_from, CompiledModel, Direct, Engine, Ensemble, EnsemblePartial, FirstReaction,
    Langevin, ModelCache, NextReaction, SimError, TauLeap,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Error raised by the worker protocol or the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The work order could not be interpreted (unknown circuit,
    /// malformed SBML, unknown species, bad engine parameters).
    Order(String),
    /// Simulation failed.
    Sim(SimError),
    /// JSON (de)serialization failed.
    Protocol(String),
    /// A worker process could not be spawned or exited unsuccessfully.
    Worker(String),
    /// The durable session store could not be read or written.
    Spill(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Order(msg) => write!(f, "invalid work order: {msg}"),
            ServiceError::Sim(err) => write!(f, "simulation failed: {err}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Worker(msg) => write!(f, "worker failed: {msg}"),
            ServiceError::Spill(msg) => write!(f, "session spill failed: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SimError> for ServiceError {
    fn from(err: SimError) -> Self {
        ServiceError::Sim(err)
    }
}

/// Where the circuit model comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSource {
    /// An inline SBML document (the `glc_model::sbml` interchange
    /// subset). Fully self-contained: the worker needs no local data.
    Sbml(String),
    /// A circuit id from the built-in `glc_gates::catalog`
    /// (e.g. `"book_and"`, `"cello_0x1C"`).
    Catalog(String),
}

impl ModelSource {
    /// Materializes the model.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for unknown catalog ids or SBML that
    /// fails to parse.
    pub fn load(&self) -> Result<Model, ServiceError> {
        match self {
            ModelSource::Sbml(document) => glc_model::sbml::read(document)
                .map_err(|e| ServiceError::Order(format!("SBML: {e}"))),
            ModelSource::Catalog(id) => glc_gates::catalog::by_id(id)
                .map(|entry| entry.model.clone())
                .ok_or_else(|| ServiceError::Order(format!("unknown catalog circuit `{id}`"))),
        }
    }
}

/// Which SSA engine a worker runs, with step parameters where the
/// algorithm needs one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineSpec {
    /// Gillespie's direct method (incremental propensities).
    Direct,
    /// Gillespie's first-reaction method.
    FirstReaction,
    /// Gibson–Bruck next-reaction method.
    NextReaction,
    /// Tau-leaping with the given leap length.
    TauLeap(f64),
    /// Chemical Langevin with the given time step.
    Langevin(f64),
}

impl EngineSpec {
    /// Builds a fresh engine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for invalid step parameters.
    pub fn build(&self) -> Result<Box<dyn Engine>, ServiceError> {
        let bad = |e: SimError| ServiceError::Order(e.to_string());
        Ok(match self {
            EngineSpec::Direct => Box::new(Direct::new()),
            EngineSpec::FirstReaction => Box::new(FirstReaction::new()),
            EngineSpec::NextReaction => Box::new(NextReaction::new()),
            EngineSpec::TauLeap(tau) => Box::new(TauLeap::new(*tau).map_err(bad)?),
            EngineSpec::Langevin(dt) => Box::new(Langevin::new(*dt).map_err(bad)?),
        })
    }
}

/// One shard of ensemble work: everything a worker process needs to
/// produce an [`EnsemblePartial`], as a single JSON value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkOrder {
    /// The circuit to simulate.
    pub model: ModelSource,
    /// Initial-amount overrides applied before compilation (typically
    /// clamping input species high, as the virtual lab does).
    pub set_amounts: Vec<(String, f64)>,
    /// The engine to run.
    pub engine: EngineSpec,
    /// Seed of replicate 0 of the *whole* ensemble. Replicate `i` is
    /// seeded `base_seed + i` in every process, which is what makes
    /// shards interchangeable with the in-process path.
    pub base_seed: u64,
    /// First replicate index of this shard.
    pub first_replicate: u64,
    /// Number of replicates in this shard.
    pub replicates: u64,
    /// Simulation horizon per replicate.
    pub t_end: f64,
    /// Trace sampling interval.
    pub sample_dt: f64,
}

impl WorkOrder {
    /// A one-shard order covering replicates `0..replicates`.
    pub fn new(
        model: ModelSource,
        engine: EngineSpec,
        base_seed: u64,
        replicates: u64,
        t_end: f64,
        sample_dt: f64,
    ) -> Self {
        WorkOrder {
            model,
            set_amounts: Vec::new(),
            engine,
            base_seed,
            first_replicate: 0,
            replicates,
            t_end,
            sample_dt,
        }
    }

    /// Adds an initial-amount override (builder style).
    pub fn with_amount(mut self, species: &str, amount: f64) -> Self {
        self.set_amounts.push((species.to_string(), amount));
        self
    }

    /// The compiled-model identity of this order: an FNV-1a hash of
    /// the canonical JSON of the model source plus the amount
    /// overrides — everything [`WorkOrder::compile_model`] reads.
    /// Orders differing only in engine, seeds or grid share a
    /// fingerprint, which is exactly what lets a model cache serve an
    /// engine sweep over one circuit from a single compile.
    pub fn model_fingerprint(&self) -> u64 {
        let model = serde_json::to_string(&self.model).unwrap_or_default();
        let amounts = serde_json::to_string(&self.set_amounts).unwrap_or_default();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in model.bytes().chain([0u8]).chain(amounts.bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Materializes and compiles the model with overrides applied,
    /// through the process-wide shared [`ModelCache`]: repeat orders
    /// for the same model and overrides (every shard of a sweep, every
    /// order a relay serves for a hot circuit) reuse one compile.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for unresolvable models or unknown
    /// override species.
    pub fn compile_model(&self) -> Result<Arc<CompiledModel>, ServiceError> {
        self.compile_model_in(ModelCache::shared())
            .map(|(model, _)| model)
    }

    /// [`WorkOrder::compile_model`] against a caller-owned cache,
    /// also reporting whether the lookup was warm. Errors are never
    /// cached: a failing order stays a miss.
    ///
    /// # Errors
    ///
    /// See [`WorkOrder::compile_model`].
    pub fn compile_model_in(
        &self,
        cache: &ModelCache,
    ) -> Result<(Arc<CompiledModel>, bool), ServiceError> {
        cache.get_or_insert(self.model_fingerprint(), || self.build_model())
    }

    /// The uncached compile: materialize, apply overrides, compile.
    fn build_model(&self) -> Result<CompiledModel, ServiceError> {
        let mut model = self.model.load()?;
        for (species, amount) in &self.set_amounts {
            if model.species_id(species).is_none() {
                return Err(ServiceError::Order(format!(
                    "set_amounts names unknown species `{species}`"
                )));
            }
            model.set_initial_amount(species, *amount);
        }
        CompiledModel::new(&model).map_err(|e| ServiceError::Order(e.to_string()))
    }

    /// Runs the shard in-process: the exact work a `glc-worker` child
    /// performs between stdin and stdout.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for bad orders, [`ServiceError::Sim`]
    /// for replicate failures.
    pub fn execute(&self) -> Result<EnsemblePartial, ServiceError> {
        if self.replicates == 0 {
            return Err(ServiceError::Order("replicates must be >= 1".into()));
        }
        let model = self.compile_model()?;
        self.engine.build()?; // Surface bad engine parameters as Order errors.
        let engine = &self.engine;
        // `run_partial_from` advances seeds with wrapping arithmetic,
        // so shards near the top of the u64 seed space still simulate
        // every replicate.
        let partial = run_partial_from(
            &model,
            || engine.build().expect("validated just above"),
            self.base_seed.wrapping_add(self.first_replicate),
            self.replicates,
            self.t_end,
            self.sample_dt,
        )?;
        Ok(partial)
    }

    /// Splits this order's replicate range into `shards` contiguous
    /// sub-orders (at most one per replicate). Shard boundaries do not
    /// affect the merged aggregate — exact accumulation makes partials
    /// associative — so this is purely a load-balancing choice.
    pub fn shard(&self, shards: u64) -> Vec<WorkOrder> {
        let shards = shards.clamp(1, self.replicates.max(1));
        let base = self.replicates / shards;
        let extra = self.replicates % shards;
        let mut orders = Vec::with_capacity(shards as usize);
        let mut first = self.first_replicate;
        for s in 0..shards {
            let count = base + u64::from(s < extra);
            if count == 0 {
                continue;
            }
            let mut order = self.clone();
            order.first_replicate = first;
            order.replicates = count;
            orders.push(order);
            first += count;
        }
        orders
    }
}

/// Fans work orders out over `glc-worker` child processes and merges
/// their partials.
///
/// This is the stateless convenience wrapper around the transport
/// fabric: every call builds a fresh [`WorkerPool`] of
/// [`ChildProcess`] slots (one per worker), so no health carries over
/// between calls and a cold pool's throughput weights degenerate to
/// the original even split. Long-lived callers that want persistent
/// health — quarantine of consistently failing slots, shards sized by
/// observed throughput — hold a [`WorkerPool`] directly (as
/// `glc-serve` does for its Extend backend).
#[derive(Debug, Clone)]
pub struct Coordinator {
    worker: PathBuf,
    workers: usize,
}

/// Health accounting of one [`WorkerPool::run`] (or
/// [`Coordinator::run_with_report`]) call.
///
/// A **slot** is one transport position in the pool — a fresh child of
/// the same binary per attempt for [`ChildProcess`] pools, a remote
/// relay for [`TcpRelay`] slots, where it is a real per-host health
/// signal. Re-running a seed range is idempotent — replicate seeds are
/// absolute and partials are exact — so a retried shard's partial is
/// bit-identical to what the failed attempt would have produced, and
/// nothing in this report can correlate with the merged bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Failures observed per worker slot (first attempts and retries
    /// both count against the slot they ran on).
    pub worker_failures: Vec<u64>,
    /// Shards that failed at least once and succeeded on a retry.
    pub retried_shards: u64,
    /// Slots quarantined by the pool's health policy as of the end of
    /// this run (sorted ascending; always empty for the stateless
    /// [`Coordinator`], whose pool never lives long enough).
    pub quarantined_slots: Vec<usize>,
    /// Replicates each slot contributed to the merged aggregate.
    pub slot_replicates: Vec<u64>,
    /// Chunks a slot stole from another slot's queue (pipelined
    /// layout only — the legacy one-chunk-per-slot layout never
    /// steals). A load-balancing observation, not a health signal.
    pub steals: u64,
    /// Chunks the order was cut into (1 per active slot in the legacy
    /// layout; finer when any slot pipelines).
    pub chunks: u64,
}

impl RunReport {
    pub(crate) fn new(workers: usize) -> Self {
        RunReport {
            worker_failures: vec![0; workers],
            retried_shards: 0,
            quarantined_slots: Vec::new(),
            slot_replicates: vec![0; workers],
            steals: 0,
            chunks: 0,
        }
    }

    /// Total shard failures observed across all worker slots.
    pub fn total_failures(&self) -> u64 {
        self.worker_failures.iter().sum()
    }
}

impl Coordinator {
    /// A coordinator spawning `workers` children of the `glc-worker`
    /// binary at `worker`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for zero `workers`.
    pub fn new(worker: impl Into<PathBuf>, workers: usize) -> Result<Self, ServiceError> {
        if workers == 0 {
            return Err(ServiceError::Order("workers must be >= 1".into()));
        }
        Ok(Coordinator {
            worker: worker.into(),
            workers,
        })
    }

    /// Executes `order` sharded across the worker processes and merges
    /// the partials in shard order, discarding the health report.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::run_with_report`].
    pub fn run(&self, order: &WorkOrder) -> Result<EnsemblePartial, ServiceError> {
        self.run_with_report(order).map(|(partial, _)| partial)
    }

    /// Executes `order` sharded across the worker processes, merges
    /// the partials in shard order, and reports per-worker failure
    /// counts. Scheduling is delegated to a fresh [`WorkerPool`] of
    /// [`ChildProcess`] slots: a shard whose child fails is re-issued
    /// on the other slots — determinism makes every retry idempotent,
    /// so a transiently lost worker costs latency, not correctness.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Worker`] when a child (and its retries) fails
    /// (stderr included), [`ServiceError::Protocol`] for undecodable
    /// or structurally invalid output, and the first failing shard's
    /// error otherwise.
    pub fn run_with_report(
        &self,
        order: &WorkOrder,
    ) -> Result<(EnsemblePartial, RunReport), ServiceError> {
        let transports: Vec<Box<dyn Transport>> = (0..self.workers)
            .map(|_| Box::new(ChildProcess::new(&self.worker)) as Box<dyn Transport>)
            .collect();
        WorkerPool::new(transports)?.run(order)
    }

    /// Like [`Coordinator::run`] but finalizes the merged partial into
    /// an [`Ensemble`].
    ///
    /// # Errors
    ///
    /// See [`Coordinator::run`] and `EnsemblePartial::finalize`.
    pub fn run_ensemble(&self, order: &WorkOrder) -> Result<Ensemble, ServiceError> {
        Ok(self.run(order)?.finalize()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order() -> WorkOrder {
        WorkOrder::new(
            ModelSource::Catalog("book_and".into()),
            EngineSpec::Direct,
            7,
            10,
            40.0,
            4.0,
        )
        .with_amount("LacI", 15.0)
        .with_amount("TetR", 15.0)
    }

    #[test]
    fn work_orders_round_trip_through_json() {
        for engine in [
            EngineSpec::Direct,
            EngineSpec::FirstReaction,
            EngineSpec::NextReaction,
            EngineSpec::TauLeap(0.5),
            EngineSpec::Langevin(0.1),
        ] {
            let mut order = order();
            order.engine = engine;
            let json = serde_json::to_string(&order).unwrap();
            let back: WorkOrder = serde_json::from_str(&json).unwrap();
            assert_eq!(back, order);
        }
    }

    #[test]
    fn sharding_covers_the_range_contiguously() {
        let order = order();
        for shards in [1u64, 2, 3, 7, 10, 25] {
            let pieces = order.shard(shards);
            assert!(pieces.len() as u64 <= shards.min(order.replicates));
            let mut next = order.first_replicate;
            let mut total = 0;
            for piece in &pieces {
                assert_eq!(piece.first_replicate, next, "gap at shard boundary");
                assert!(piece.replicates > 0);
                next += piece.replicates;
                total += piece.replicates;
            }
            assert_eq!(total, order.replicates);
        }
    }

    #[test]
    fn execute_matches_run_partial_bitwise() {
        let order = order();
        let partial = order.execute().unwrap();
        assert_eq!(partial.replicates(), 10);
        let model = order.compile_model().unwrap();
        let reference = glc_ssa::run_partial(
            &model,
            || Box::new(Direct::new()) as Box<dyn Engine>,
            7..17,
            40.0,
            4.0,
        )
        .unwrap();
        assert_eq!(partial, reference);
    }

    #[test]
    fn bad_orders_are_rejected() {
        let mut bad = order();
        bad.replicates = 0;
        assert!(matches!(bad.execute(), Err(ServiceError::Order(_))));
        let mut bad = order();
        bad.model = ModelSource::Catalog("nope".into());
        assert!(matches!(bad.execute(), Err(ServiceError::Order(_))));
        let mut bad = order();
        bad.set_amounts.push(("Ghost".into(), 1.0));
        assert!(matches!(bad.execute(), Err(ServiceError::Order(_))));
        let mut bad = order();
        bad.engine = EngineSpec::TauLeap(-1.0);
        assert!(matches!(bad.execute(), Err(ServiceError::Order(_))));
        let mut bad = order();
        bad.model = ModelSource::Sbml("<not-sbml/>".into());
        assert!(matches!(bad.execute(), Err(ServiceError::Order(_))));
        assert!(Coordinator::new("glc-worker", 0).is_err());
    }

    #[test]
    fn sbml_source_matches_catalog_source_bitwise() {
        let entry = glc_gates::catalog::by_id("book_not").unwrap();
        let document = glc_model::sbml::write(&entry.model);
        let base = WorkOrder::new(
            ModelSource::Catalog("book_not".into()),
            EngineSpec::Direct,
            3,
            6,
            30.0,
            5.0,
        )
        .with_amount("LacI", 15.0);
        let mut inline = base.clone();
        inline.model = ModelSource::Sbml(document);
        assert_eq!(base.execute().unwrap(), inline.execute().unwrap());
    }
}
