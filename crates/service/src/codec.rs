//! GLCB: the compact binary payload codec for the frame wire and the
//! spill path.
//!
//! The frame layer (`glc_service::frame`) delimits payloads but does
//! not care what they are; historically every payload was JSON. GLCB
//! is a second payload encoding, negotiated per connection through the
//! existing hello exchange, that replaces the hot-path JSON documents
//! — chunk orders, `RelayReply` partials, spill snapshots — with a
//! dense binary layout built on `glc_ssa::wire` primitives (LEB128
//! varints, little-endian `f64` bit patterns, length-prefixed UTF-8).
//!
//! # Payload layout
//!
//! ```text
//! +---------+---------+-------+------------------------+
//! | magic   | version | tag   | body                   |
//! | "GLCB"  | 1 byte  | 1 byte| tag-specific           |
//! +---------+---------+-------+------------------------+
//! ```
//!
//! | tag | body |
//! |-----|------|
//! | 1 `ORDER` | varint id, then the [`WorkOrder`] fields |
//! | 2 `REPLY` | varint id, a variant byte, then the variant body |
//! | 3 `TEXT`  | length-prefixed UTF-8 (one session-protocol JSON line) |
//! | 4 `SNAPSHOT` | length-prefixed spec JSON + binary partial (spill files) |
//!
//! Reply variants: 0 `Partial(partial)`, 1 `Error(string)`,
//! 2 `Deferred(varint replicates)` — a reducing relay's receipt for a
//! chunk it absorbed locally — and 3 `Reduced(varint n, n varint
//! covered ids, partial)` — the merged partial it ships upstream,
//! covering the envelope id plus the listed deferred ids.
//!
//! A GLCB payload always starts with `GLCB`, which no JSON document
//! can (JSON starts with `{`, `"`, a digit, or whitespace), so both
//! payload encodings coexist on one connection and every reader can
//! [`is_glcb`]-sniff per frame. Decoding is fail-closed end to end:
//! truncation, unknown tags/variants, trailing bytes, and structurally
//! invalid partials (via `EnsemblePartial::validate`) are all errors.
//!
//! # Hello negotiation
//!
//! The hello frame stays a JSON object (`{"glc_frame_hello":1}`), so
//! legacy peers keep working bit-for-bit. A GLCB-capable peer extends
//! it with a `codecs` list (and a relay client may ask for reduction
//! with `"reduce":true`); [`parse_hello`] accepts any object carrying
//! `glc_frame_hello: 1` and reads the capabilities off it, and
//! [`hello_payload`] emits the **legacy bytes exactly** when no
//! capability is advertised — so a reply to a legacy hello is
//! byte-identical to yesterday's.

use crate::{EngineSpec, ModelSource, ServiceError, WorkOrder};
use glc_ssa::wire::{put_f64_bits, put_string, put_varint, Reader, WireError};
use glc_ssa::EnsemblePartial;
use serde::Value;

/// First four bytes of every GLCB payload. Distinct from the frame
/// magic (`GLCF`): this sits *inside* a frame payload.
pub const GLCB_MAGIC: [u8; 4] = *b"GLCB";

/// Current GLCB layout version.
pub const GLCB_VERSION: u8 = 1;

const TAG_ORDER: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_SNAPSHOT: u8 = 4;

const REPLY_PARTIAL: u8 = 0;
const REPLY_ERROR: u8 = 1;
const REPLY_DEFERRED: u8 = 2;
const REPLY_REDUCED: u8 = 3;

/// Whether a frame payload is GLCB-encoded (vs JSON). Sniffable per
/// frame: JSON can never start with the GLCB magic.
pub fn is_glcb(payload: &[u8]) -> bool {
    payload.len() >= 4 && payload[..4] == GLCB_MAGIC
}

/// One decoded reply payload on the chunk wire — the binary analogue
/// of `Envelope<RelayReply>`, extended with the two reduction-mode
/// messages a reducing relay may send instead of a plain partial.
#[derive(Debug, Clone, PartialEq)]
pub enum BinaryReply {
    /// The chunk's partial, computed and shipped verbatim.
    Partial(EnsemblePartial),
    /// The chunk failed in-band (order invalid, simulation error).
    Error(String),
    /// A reducing relay absorbed this chunk's partial into its local
    /// accumulator; the merged result arrives later in a `Reduced`
    /// reply covering this id. Carries the chunk's replicate count so
    /// the client can keep throughput accounting without the payload.
    Deferred {
        /// Replicates the absorbed chunk simulated.
        replicates: u64,
    },
    /// The relay's merged partial, covering the envelope id **plus**
    /// every id listed in `also_covers` (all previously deferred).
    Reduced {
        /// Previously deferred chunk ids this partial also covers.
        also_covers: Vec<u64>,
        /// The merge of all covered chunks' partials.
        partial: EnsemblePartial,
    },
}

fn header(tag: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&GLCB_MAGIC);
    buf.push(GLCB_VERSION);
    buf.push(tag);
    buf
}

/// Opens a reader past the magic/version/tag header, returning the
/// tag byte.
fn open<'a>(payload: &'a [u8], what: &str) -> Result<(Reader<'a>, u8), ServiceError> {
    if !is_glcb(payload) {
        return Err(ServiceError::Protocol(format!(
            "{what}: payload is not GLCB (no magic)"
        )));
    }
    let mut reader = Reader::new(&payload[4..]);
    let version = reader
        .byte("GLCB version")
        .map_err(|err| protocol(what, err))?;
    if version != GLCB_VERSION {
        return Err(ServiceError::Protocol(format!(
            "{what}: unsupported GLCB version {version} (expected {GLCB_VERSION})"
        )));
    }
    let tag = reader.byte("GLCB tag").map_err(|err| protocol(what, err))?;
    Ok((reader, tag))
}

fn protocol(what: &str, err: WireError) -> ServiceError {
    ServiceError::Protocol(format!("{what}: {err}"))
}

fn expect_tag(what: &str, tag: u8, expected: u8) -> Result<(), ServiceError> {
    if tag != expected {
        return Err(ServiceError::Protocol(format!(
            "{what}: unexpected GLCB tag {tag} (expected {expected})"
        )));
    }
    Ok(())
}

/// Encodes a chunk order under its correlation id — the GLCB analogue
/// of `frame::encode_message(id, order)`.
pub fn encode_order(id: u64, order: &WorkOrder) -> Vec<u8> {
    let mut buf = header(TAG_ORDER);
    put_varint(&mut buf, id);
    match &order.model {
        ModelSource::Sbml(doc) => {
            buf.push(0);
            put_string(&mut buf, doc);
        }
        ModelSource::Catalog(name) => {
            buf.push(1);
            put_string(&mut buf, name);
        }
    }
    put_varint(&mut buf, order.set_amounts.len() as u64);
    for (species, amount) in &order.set_amounts {
        put_string(&mut buf, species);
        put_f64_bits(&mut buf, *amount);
    }
    match &order.engine {
        EngineSpec::Direct => buf.push(0),
        EngineSpec::FirstReaction => buf.push(1),
        EngineSpec::NextReaction => buf.push(2),
        EngineSpec::TauLeap(tau) => {
            buf.push(3);
            put_f64_bits(&mut buf, *tau);
        }
        EngineSpec::Langevin(dt) => {
            buf.push(4);
            put_f64_bits(&mut buf, *dt);
        }
    }
    put_varint(&mut buf, order.base_seed);
    put_varint(&mut buf, order.first_replicate);
    put_varint(&mut buf, order.replicates);
    put_f64_bits(&mut buf, order.t_end);
    put_f64_bits(&mut buf, order.sample_dt);
    buf
}

/// Decodes a GLCB chunk order, returning `(id, order)`.
///
/// # Errors
///
/// [`ServiceError::Protocol`] for anything that is not a complete,
/// well-formed order payload.
pub fn decode_order(payload: &[u8]) -> Result<(u64, WorkOrder), ServiceError> {
    let what = "GLCB order";
    let (mut reader, tag) = open(payload, what)?;
    expect_tag(what, tag, TAG_ORDER)?;
    let mut read = || -> Result<(u64, WorkOrder), WireError> {
        let id = reader.varint("order id")?;
        let model = match reader.byte("model variant")? {
            0 => ModelSource::Sbml(reader.string("sbml document")?),
            1 => ModelSource::Catalog(reader.string("catalog name")?),
            other => return Err(WireError(format!("unknown model variant {other}"))),
        };
        let amount_count = reader.length("set_amounts", 1 << 20)?;
        let mut set_amounts = Vec::with_capacity(amount_count);
        for _ in 0..amount_count {
            let species = reader.string("override species")?;
            let amount = reader.f64_bits("override amount")?;
            set_amounts.push((species, amount));
        }
        let engine = match reader.byte("engine variant")? {
            0 => EngineSpec::Direct,
            1 => EngineSpec::FirstReaction,
            2 => EngineSpec::NextReaction,
            3 => EngineSpec::TauLeap(reader.f64_bits("tau")?),
            4 => EngineSpec::Langevin(reader.f64_bits("langevin dt")?),
            other => return Err(WireError(format!("unknown engine variant {other}"))),
        };
        let base_seed = reader.varint("base_seed")?;
        let first_replicate = reader.varint("first_replicate")?;
        let replicates = reader.varint("replicates")?;
        let t_end = reader.f64_bits("t_end")?;
        let sample_dt = reader.f64_bits("sample_dt")?;
        reader.expect_end("order")?;
        Ok((
            id,
            WorkOrder {
                model,
                set_amounts,
                engine,
                base_seed,
                first_replicate,
                replicates,
                t_end,
                sample_dt,
            },
        ))
    };
    read().map_err(|err| protocol(what, err))
}

/// Encodes a chunk reply under its correlation id — the GLCB analogue
/// of `frame::encode_message(id, reply)`, extended with the
/// reduction-mode variants.
pub fn encode_reply(id: u64, reply: &BinaryReply) -> Vec<u8> {
    let mut buf = header(TAG_REPLY);
    put_varint(&mut buf, id);
    match reply {
        BinaryReply::Partial(partial) => {
            buf.push(REPLY_PARTIAL);
            partial.encode_binary(&mut buf);
        }
        BinaryReply::Error(message) => {
            buf.push(REPLY_ERROR);
            put_string(&mut buf, message);
        }
        BinaryReply::Deferred { replicates } => {
            buf.push(REPLY_DEFERRED);
            put_varint(&mut buf, *replicates);
        }
        BinaryReply::Reduced {
            also_covers,
            partial,
        } => {
            buf.push(REPLY_REDUCED);
            put_varint(&mut buf, also_covers.len() as u64);
            for &covered in also_covers {
                put_varint(&mut buf, covered);
            }
            partial.encode_binary(&mut buf);
        }
    }
    buf
}

/// Decodes a GLCB chunk reply, returning `(id, reply)`. Embedded
/// partials are structurally validated (`EnsemblePartial::validate`)
/// exactly like the JSON path validates them.
///
/// # Errors
///
/// [`ServiceError::Protocol`] for anything that is not a complete,
/// well-formed reply payload.
pub fn decode_reply(payload: &[u8]) -> Result<(u64, BinaryReply), ServiceError> {
    let what = "GLCB reply";
    let (mut reader, tag) = open(payload, what)?;
    expect_tag(what, tag, TAG_REPLY)?;
    let mut read = || -> Result<(u64, BinaryReply), WireError> {
        let id = reader.varint("reply id")?;
        let reply = match reader.byte("reply variant")? {
            REPLY_PARTIAL => BinaryReply::Partial(EnsemblePartial::decode_binary(&mut reader)?),
            REPLY_ERROR => BinaryReply::Error(reader.string("error message")?),
            REPLY_DEFERRED => BinaryReply::Deferred {
                replicates: reader.varint("deferred replicates")?,
            },
            REPLY_REDUCED => {
                let count = reader.length("covered ids", 1 << 20)?;
                let mut also_covers = Vec::with_capacity(count);
                for _ in 0..count {
                    also_covers.push(reader.varint("covered id")?);
                }
                let partial = EnsemblePartial::decode_binary(&mut reader)?;
                BinaryReply::Reduced {
                    also_covers,
                    partial,
                }
            }
            other => return Err(WireError(format!("unknown reply variant {other}"))),
        };
        reader.expect_end("reply")?;
        Ok((id, reply))
    };
    read().map_err(|err| protocol(what, err))
}

/// Wraps one session-protocol JSON line in a GLCB text payload. The
/// multiplexed `glc-serve --listen` front-end serves Submit / Extend /
/// Query this way for GLCB clients: the *line bytes* are exactly what
/// the stdin protocol produces, so a GLCB client's responses compare
/// byte-identical to a serial stdin run.
pub fn encode_text(line: &str) -> Vec<u8> {
    let mut buf = header(TAG_TEXT);
    put_string(&mut buf, line);
    buf
}

/// Unwraps a GLCB text payload back to its JSON line.
///
/// # Errors
///
/// [`ServiceError::Protocol`] for truncation, bad UTF-8, or a
/// non-text tag.
pub fn decode_text(payload: &[u8]) -> Result<String, ServiceError> {
    let what = "GLCB text";
    let (mut reader, tag) = open(payload, what)?;
    expect_tag(what, tag, TAG_TEXT)?;
    let line = reader
        .string("text line")
        .map_err(|err| protocol(what, err))?;
    reader
        .expect_end("text")
        .map_err(|err| protocol(what, err))?;
    Ok(line)
}

/// Encodes a spill snapshot: the session spec as its canonical JSON
/// (specs are tiny and their fingerprint hashes those bytes) plus the
/// partial in the dense binary layout — the part that dominated the
/// ~8 KB JSON snapshots.
pub fn encode_snapshot(spec_json: &str, partial: &EnsemblePartial) -> Vec<u8> {
    let mut buf = header(TAG_SNAPSHOT);
    put_string(&mut buf, spec_json);
    partial.encode_binary(&mut buf);
    buf
}

/// Decodes a GLCB spill snapshot into `(spec_json, partial)`; the
/// partial is structurally validated, the spec is returned as text for
/// the caller's JSON layer (which also re-derives the fingerprint).
///
/// # Errors
///
/// [`ServiceError::Protocol`] for truncated or corrupt snapshots.
pub fn decode_snapshot(payload: &[u8]) -> Result<(String, EnsemblePartial), ServiceError> {
    let what = "GLCB snapshot";
    let (mut reader, tag) = open(payload, what)?;
    expect_tag(what, tag, TAG_SNAPSHOT)?;
    let mut read = || -> Result<(String, EnsemblePartial), WireError> {
        let spec = reader.string("snapshot spec")?;
        let partial = EnsemblePartial::decode_binary(&mut reader)?;
        reader.expect_end("snapshot")?;
        Ok((spec, partial))
    };
    read().map_err(|err| protocol(what, err))
}

/// Capabilities carried by a hello frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hello {
    /// The peer can encode/decode GLCB payloads.
    pub glcb: bool,
    /// The peer asks for (client) or grants (relay) partial reduction:
    /// the relay merges chunk partials locally and ships one merged
    /// partial upstream.
    pub reduce: bool,
}

impl Hello {
    /// The legacy capability set: JSON payloads only.
    pub fn legacy() -> Self {
        Hello::default()
    }

    /// GLCB payloads, no reduction (worker connections).
    pub fn glcb() -> Self {
        Hello {
            glcb: true,
            reduce: false,
        }
    }

    /// GLCB payloads plus relay-side reduction (relay connections).
    pub fn glcb_reducing() -> Self {
        Hello {
            glcb: true,
            reduce: true,
        }
    }

    /// The capabilities both sides share — what the connection
    /// actually runs with.
    pub fn intersect(self, other: Hello) -> Hello {
        Hello {
            glcb: self.glcb && other.glcb,
            reduce: self.reduce && other.reduce,
        }
    }
}

/// Builds the hello payload advertising `hello`'s capabilities. With
/// no capabilities this is **exactly** the legacy
/// [`crate::frame::FRAME_HELLO`] bytes, so a reply to a legacy peer is
/// bit-for-bit what it always received.
pub fn hello_payload(hello: Hello) -> Vec<u8> {
    if !hello.glcb && !hello.reduce {
        return crate::frame::FRAME_HELLO.to_vec();
    }
    let mut entries = vec![("glc_frame_hello".to_string(), Value::Num(1.0))];
    if hello.glcb {
        entries.push((
            "codecs".to_string(),
            Value::Array(vec![Value::Str("glcb".to_string())]),
        ));
    }
    if hello.reduce {
        entries.push(("reduce".to_string(), Value::Bool(true)));
    }
    serde_json::to_string(&Value::Object(entries))
        .unwrap_or_else(|_| String::from_utf8_lossy(crate::frame::FRAME_HELLO).into_owned())
        .into_bytes()
}

/// Parses a hello payload into its capabilities. Accepts the legacy
/// exact bytes and any JSON object carrying `glc_frame_hello: 1` —
/// unknown fields are ignored, so hellos stay forward-extensible.
///
/// # Errors
///
/// [`ServiceError::Protocol`] when the payload is not a hello at all
/// (the fail-closed behaviour connection setup relies on).
pub fn parse_hello(payload: &[u8]) -> Result<Hello, ServiceError> {
    if payload == crate::frame::FRAME_HELLO {
        return Ok(Hello::legacy());
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| ServiceError::Protocol("hello frame is not UTF-8".into()))?;
    let value: Value = serde_json::from_str(text)
        .map_err(|err| ServiceError::Protocol(format!("unparseable hello frame: {err}")))?;
    match value.get("glc_frame_hello") {
        Some(Value::Num(n)) if *n == 1.0 => {}
        _ => {
            return Err(ServiceError::Protocol(
                "hello frame lacks glc_frame_hello: 1".into(),
            ))
        }
    }
    let glcb = matches!(
        value.get("codecs"),
        Some(Value::Array(codecs)) if codecs.iter().any(|c| matches!(c, Value::Str(s) if s == "glcb"))
    );
    let reduce = matches!(value.get("reduce"), Some(Value::Bool(true)));
    Ok(Hello { glcb, reduce })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_HELLO;

    fn order() -> WorkOrder {
        WorkOrder {
            model: ModelSource::Catalog("cello_0x1C".into()),
            set_amounts: vec![("LacI".into(), 15.0), ("TetR".into(), 0.5)],
            engine: EngineSpec::Langevin(0.05),
            base_seed: u64::MAX - 3,
            first_replicate: 1 << 60,
            replicates: 7,
            t_end: 40.0,
            sample_dt: 4.0,
        }
    }

    #[test]
    fn orders_round_trip_for_every_model_and_engine_variant() {
        let mut cases = vec![order()];
        let mut sbml = order();
        sbml.model = ModelSource::Sbml("<sbml>…</sbml>".into());
        sbml.set_amounts.clear();
        cases.push(sbml);
        for engine in [
            EngineSpec::Direct,
            EngineSpec::FirstReaction,
            EngineSpec::NextReaction,
            EngineSpec::TauLeap(0.01),
        ] {
            let mut case = order();
            case.engine = engine;
            cases.push(case);
        }
        for (i, case) in cases.iter().enumerate() {
            let payload = encode_order(i as u64 + 3, case);
            assert!(is_glcb(&payload));
            let (id, back) = decode_order(&payload).unwrap();
            assert_eq!(id, i as u64 + 3);
            assert_eq!(&back, case);
            // Truncations fail closed.
            for cut in 0..payload.len() {
                assert!(decode_order(&payload[..cut]).is_err(), "cut {cut}");
            }
            let mut trailing = payload.clone();
            trailing.push(0);
            assert!(decode_order(&trailing).is_err());
        }
    }

    #[test]
    fn replies_round_trip_including_reduction_variants() {
        let replies = [
            BinaryReply::Error("sim exploded".into()),
            BinaryReply::Deferred { replicates: 640 },
        ];
        for (i, reply) in replies.iter().enumerate() {
            let payload = encode_reply(i as u64, reply);
            let (id, back) = decode_reply(&payload).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&back, reply);
            for cut in 0..payload.len() {
                assert!(decode_reply(&payload[..cut]).is_err(), "cut {cut}");
            }
        }
        // Tag confusion fails closed: an order payload is not a reply.
        assert!(decode_reply(&encode_order(1, &order())).is_err());
        assert!(decode_order(&encode_reply(1, &replies[0])).is_err());
        // Wrong version fails closed.
        let mut payload = encode_reply(0, &replies[0]);
        payload[4] = 99;
        assert!(decode_reply(&payload).is_err());
        // JSON payloads are cleanly distinguishable.
        assert!(!is_glcb(b"{\"id\":1}"));
        assert!(decode_reply(b"{\"id\":1}").is_err());
    }

    #[test]
    fn text_payloads_round_trip_the_exact_line_bytes() {
        let line = "{\"id\":\"alpha\",\"Stats\":null}";
        let payload = encode_text(line);
        assert_eq!(decode_text(&payload).unwrap(), line);
        assert!(decode_text(&payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn hello_negotiation_matrix() {
        // Legacy bytes parse as the legacy capability set, and the
        // legacy capability set emits exactly the legacy bytes.
        assert_eq!(parse_hello(FRAME_HELLO).unwrap(), Hello::legacy());
        assert_eq!(hello_payload(Hello::legacy()), FRAME_HELLO.to_vec());
        // Capability hellos round-trip.
        for hello in [Hello::glcb(), Hello::glcb_reducing()] {
            let payload = hello_payload(hello);
            assert_eq!(parse_hello(&payload).unwrap(), hello);
            // Still a valid hello to a peer that only checks the marker.
            assert!(String::from_utf8_lossy(&payload).contains("\"glc_frame_hello\":1"));
        }
        // Unknown fields are ignored; missing marker fails closed.
        let extended = b"{\"glc_frame_hello\":1,\"auth\":\"tbd\",\"codecs\":[\"glcb\",\"zstd\"]}";
        assert_eq!(parse_hello(extended).unwrap(), Hello::glcb());
        assert!(parse_hello(b"{\"hi\":1}").is_err());
        assert!(parse_hello(b"GLCB").is_err());
        // Intersection is per-capability.
        assert_eq!(
            Hello::glcb_reducing().intersect(Hello::glcb()),
            Hello::glcb()
        );
        assert_eq!(
            Hello::glcb_reducing().intersect(Hello::legacy()),
            Hello::legacy()
        );
    }
}
