//! The resident session protocol: Submit / Extend / Query over warm
//! compiled models and partially-aggregated ensembles.
//!
//! The one-shot [`crate::WorkOrder`] protocol pays a cold start on
//! every request: recompile the model, rerun all replicates, throw the
//! partial away. The session protocol is the ROADMAP's next rung — a
//! **resident query service** that keeps both expensive artifacts
//! warm:
//!
//! * [`Request::Submit`] — compile the model once and cache it (with
//!   an empty [`EnsemblePartial`]) under a fingerprint key derived
//!   from the full session spec. Submitting the same spec again is
//!   idempotent: it finds the warm session instead of recompiling.
//! * [`Request::Extend`] — simulate **only the new seed range**
//!   `base_seed + R .. base_seed + R + N` and merge it into the
//!   resident partial. The partial's seed-range accounting validates
//!   the merge is disjoint, and exact accumulation makes the extended
//!   partial bitwise-identical to a fresh `0 .. R + N` run — the
//!   property the session store is property-tested on.
//! * [`Request::Query`] — finalize means/σ and per-species noise
//!   figures off the resident partial. **Zero simulation work**: every
//!   response carries `simulated` (replicates run while serving it),
//!   and it is 0 for every query.
//!
//! Sessions live in an [`SessionStore`] bounded by an LRU policy:
//! submitting past the capacity evicts the least-recently-touched
//! session. Without a spill directory the evicted partial is gone and
//! resubmitting starts cold; with one
//! ([`SessionStore::with_spill_dir`]) evictions spill to disk,
//! spilled sessions reload transparently on their next touch, and
//! every Extend write-through-snapshots the session, so a restarted
//! service resumes extends instead of recomputing from seed 0.
//! Extends run in-process, over `glc-worker` children
//! ([`ExtendBackend::Coordinator`]), or over a health-aware
//! [`ExtendBackend::Pool`] mixing any [`crate::Transport`]s; all
//! produce the same bits, by the same argument as the one-shot path.
//!
//! The `glc-serve` binary serves this protocol as line-delimited JSON
//! on stdin/stdout, each request optionally [`Envelope`]-wrapped with
//! a correlation `id` echoed back (string ids byte-exactly; numbers
//! normalize through the JSON number layer); see
//! `crates/service/README.md` for worked examples.

use crate::codec;
use crate::metrics::{HistogramSnapshot, MetricsRegistry, RequestKind};
use crate::transport::PoolHealthSnapshot;
use crate::{
    Coordinator, EngineSpec, ModelSource, ServiceError, SlotHealth, WorkOrder, WorkerPool,
};
use glc_ssa::{run_partial_from, CompiledModel, EnsemblePartial, ModelCache, Trace};
use glc_vasim::stats::{ensemble_noise, NoisePoint};
use serde::{DeError, Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// Everything that identifies a resident ensemble session: the model,
/// the engine, the replicate-0 seed, and the sampling grid. Two
/// submissions with the same spec are the same session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The circuit to simulate.
    pub model: ModelSource,
    /// Initial-amount overrides applied before compilation.
    pub set_amounts: Vec<(String, f64)>,
    /// The engine every replicate runs.
    pub engine: EngineSpec,
    /// Seed of replicate 0; replicate `i` is seeded `base_seed + i`.
    pub base_seed: u64,
    /// Simulation horizon per replicate.
    pub t_end: f64,
    /// Trace sampling interval.
    pub sample_dt: f64,
}

impl SessionSpec {
    /// A spec with no amount overrides (builder style via
    /// [`SessionSpec::with_amount`]).
    pub fn new(
        model: ModelSource,
        engine: EngineSpec,
        base_seed: u64,
        t_end: f64,
        sample_dt: f64,
    ) -> Self {
        SessionSpec {
            model,
            set_amounts: Vec::new(),
            engine,
            base_seed,
            t_end,
            sample_dt,
        }
    }

    /// Adds an initial-amount override (builder style).
    pub fn with_amount(mut self, species: &str, amount: f64) -> Self {
        self.set_amounts.push((species.to_string(), amount));
        self
    }

    /// The session key: an FNV-1a fingerprint of the canonical JSON of
    /// the spec. Deterministic across processes (the hash walks the
    /// serialized bytes, not addresses), so a client can re-derive the
    /// key of a session it submitted earlier.
    pub fn fingerprint(&self) -> String {
        let canonical = serde_json::to_string(self).unwrap_or_default();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in canonical.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("sess-{hash:016x}")
    }

    /// The one-shot work order covering this spec's replicates
    /// `first .. first + count` — how an Extend reuses the worker
    /// sharding protocol unchanged.
    fn work_order(&self, first: u64, count: u64) -> WorkOrder {
        WorkOrder {
            model: self.model.clone(),
            set_amounts: self.set_amounts.clone(),
            engine: self.engine.clone(),
            base_seed: self.base_seed,
            first_replicate: first,
            replicates: count,
            t_end: self.t_end,
            sample_dt: self.sample_dt,
        }
    }
}

/// One request to the resident query service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Compile and cache a session (idempotent per spec).
    Submit(SessionSpec),
    /// Extend a session's resident partial by N replicates.
    Extend(ExtendRequest),
    /// Read figures off a session's resident partial (no simulation).
    Query(QueryRequest),
    /// Service-level counters (sessions resident, evictions, total
    /// replicates simulated).
    Stats,
}

/// Parameters of [`Request::Extend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtendRequest {
    /// Session key from the Submit response.
    pub session: String,
    /// Number of *additional* replicates to simulate and merge.
    pub replicates: u64,
}

/// Parameters of [`Request::Query`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Session key from the Submit response.
    pub session: String,
    /// Species to report noise figures for; empty = every species the
    /// session aggregates.
    pub species: Vec<String>,
}

/// One reply from the resident query service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Submit`].
    Submitted(Submitted),
    /// Reply to [`Request::Extend`].
    Extended(Extended),
    /// Reply to [`Request::Query`].
    Queried(Queried),
    /// Reply to [`Request::Stats`].
    Stats(ServiceStats),
    /// Any request that could not be served (the session protocol
    /// keeps serving after an error).
    Error(String),
}

/// Reply to [`Request::Submit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submitted {
    /// Session key for Extend/Query.
    pub session: String,
    /// Replicates already resident (non-zero on an idempotent
    /// re-submit of a warm session).
    pub replicates: u64,
    /// Whether the session was already resident.
    pub warm: bool,
    /// Replicates simulated while serving this request (always 0).
    pub simulated: u64,
}

/// Reply to [`Request::Extend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extended {
    /// Session key.
    pub session: String,
    /// Total replicates now resident.
    pub replicates: u64,
    /// Replicates simulated while serving this request (= the
    /// requested extension).
    pub simulated: u64,
}

/// Reply to [`Request::Query`]: figures finalized off the resident
/// partial, zero replicates simulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Queried {
    /// Session key.
    pub session: String,
    /// Replicates aggregated in the reported figures.
    pub replicates: u64,
    /// Ensemble mean of every species on the session grid.
    pub mean: Trace,
    /// Ensemble standard deviation (population).
    pub std_dev: Trace,
    /// Per-species noise figures (mean/σ/variance/Fano/CV per sample),
    /// read off the borrowed partial.
    pub noise: Vec<SpeciesNoise>,
    /// Replicates simulated while serving this request (always 0 —
    /// the acceptance criterion of the resident refactor).
    pub simulated: u64,
}

/// Noise series of one species in a [`Queried`] reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeciesNoise {
    /// Species name.
    pub species: String,
    /// Per-sample figures.
    pub points: Vec<NoisePoint>,
}

/// Service-level counters and (since the observability layer) the
/// full operator snapshot: spill accounting, worker-slot health,
/// request-latency histograms and per-session footprints.
///
/// The wire shape is extended **backward-compatibly**: every new field
/// defaults when absent, so a new client decodes an old server's Stats
/// reply (the hand-written [`Deserialize`] below), and an old client
/// decoding a new reply simply ignores the unknown fields (the
/// vendored derive's behavior).
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct ServiceStats {
    /// Sessions currently resident.
    pub sessions: u64,
    /// Sessions evicted by the LRU bound since startup.
    pub evictions: u64,
    /// Total replicates simulated since startup (only Extends add).
    pub simulated: u64,
    /// Evicted sessions serialized to the spill directory (a subset of
    /// `evictions`; zero when spill is disabled).
    pub spilled: u64,
    /// Sessions transparently reloaded from the spill directory on a
    /// later touch.
    pub reloads: u64,
    /// Write-through snapshots taken on Extend (what a restarted
    /// service resumes from).
    pub snapshots: u64,
    /// Model compiles served from the store's compiled-model cache (a
    /// cold Submit of a circuit another session already compiled, or a
    /// spill reload of a model still warm in the cache).
    pub model_cache_hits: u64,
    /// Model compiles that actually ran because the store's
    /// compiled-model cache had no entry for the model fingerprint.
    pub model_cache_misses: u64,
    /// Bytes currently held by session snapshots (`*.session.glcb`
    /// plus legacy `*.session.json`) in the spill directory
    /// (`pool_health.json` is deliberately excluded, so this matches a
    /// `du` over the session files).
    pub spill_bytes: u64,
    /// Session snapshots deleted by the spill garbage collector
    /// (size/age bounds) since startup.
    pub spill_gc_evictions: u64,
    /// Lifetime count of pool shards that failed and succeeded on a
    /// retry (zero for the in-process and stateless-coordinator
    /// backends).
    pub pool_retries: u64,
    /// Lifetime count of chunks a pool slot stole from another slot's
    /// queue (zero for non-pool backends and all-one-shot pools, whose
    /// legacy layout never steals).
    pub pool_steals: u64,
    /// Request-latency histograms per request kind, when a metrics
    /// registry is attached (empty otherwise).
    pub latency: Vec<RequestLatency>,
    /// Worker-pool slot health, in slot order (empty for non-pool
    /// backends).
    pub slots: Vec<SlotHealth>,
    /// Resident sessions' aggregate footprints, in residency order.
    pub footprints: Vec<SessionFootprint>,
}

impl Deserialize for ServiceStats {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if !matches!(value, Value::Object(_)) {
            return Err(DeError::expected("ServiceStats object", value));
        }
        // Every field defaults when absent: a new client decodes an old
        // server's counters-only reply, and a pre-spill reply, alike.
        fn field<T: Deserialize + Default>(value: &Value, key: &str) -> Result<T, DeError> {
            match value.get(key) {
                Some(inner) => T::from_value(inner)
                    .map_err(|DeError(msg)| DeError(format!("ServiceStats.{key}: {msg}"))),
                None => Ok(T::default()),
            }
        }
        Ok(ServiceStats {
            sessions: field(value, "sessions")?,
            evictions: field(value, "evictions")?,
            simulated: field(value, "simulated")?,
            spilled: field(value, "spilled")?,
            reloads: field(value, "reloads")?,
            snapshots: field(value, "snapshots")?,
            model_cache_hits: field(value, "model_cache_hits")?,
            model_cache_misses: field(value, "model_cache_misses")?,
            spill_bytes: field(value, "spill_bytes")?,
            spill_gc_evictions: field(value, "spill_gc_evictions")?,
            pool_retries: field(value, "pool_retries")?,
            pool_steals: field(value, "pool_steals")?,
            latency: field(value, "latency")?,
            slots: field(value, "slots")?,
            footprints: field(value, "footprints")?,
        })
    }
}

/// One request kind's latency histogram in a [`ServiceStats`] reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RequestLatency {
    /// The request kind (`submit`, `extend`, `query`, `stats`).
    pub kind: String,
    /// Cumulative log-spaced latency buckets (see
    /// [`crate::metrics::LATENCY_BUCKET_BOUNDS`]).
    pub histogram: HistogramSnapshot,
}

/// One resident session's aggregate footprint in a [`ServiceStats`]
/// reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SessionFootprint {
    /// Session key.
    pub session: String,
    /// Replicates resident in the partial.
    pub replicates: u64,
    /// Exact-accumulator cells (`species × samples`, sums and squares).
    pub cells: u64,
    /// Resident bytes of the partial (`EnsemblePartial::footprint_bytes`).
    pub bytes: u64,
}

/// How an Extend's new seed range is simulated.
pub enum ExtendBackend {
    /// On the calling thread, against the session's warm compiled
    /// model (no process or compile cost).
    InProcess,
    /// Fanned out over `glc-worker` child processes via the sharding
    /// [`Coordinator`] (which re-ships the model; workers compile
    /// their own copy, as the one-shot protocol always did). Stateless:
    /// each Extend builds a fresh pool, so no health persists.
    Coordinator(Coordinator),
    /// Fanned out over a resident [`WorkerPool`] — any mix of
    /// in-process, child-process and TCP-relay slots — whose health
    /// accounting (throughput-sized shards, quarantine of consistently
    /// failing slots) persists across Extends for the life of the
    /// store.
    Pool(WorkerPool),
}

/// One resident session: the warm compiled model and the growing
/// partial.
struct Session {
    /// The fingerprint key, computed once at submit (recomputing it
    /// per lookup would re-serialize the whole spec — including any
    /// inline SBML document — on every request).
    key: String,
    spec: SessionSpec,
    /// Shared with the store's [`ModelCache`]: two sessions over the
    /// same circuit (same model fingerprint) hold one compiled model.
    model: Arc<CompiledModel>,
    partial: EnsemblePartial,
    /// LRU clock stamp of the last touch.
    last_used: u64,
}

/// An LRU-bounded store of resident sessions; the state behind a
/// `glc-serve` process (and directly drivable in-process, which is how
/// the extend-vs-fresh property tests run).
///
/// # Durable sessions (spill)
///
/// With a spill directory attached ([`SessionStore::with_spill_dir`])
/// the store becomes restart-tolerant:
///
/// * an LRU **eviction** serializes the session (spec + partial) to
///   `<dir>/<key>.session.glcb` instead of discarding it;
/// * a touch of a non-resident key — Submit, Extend or Query —
///   transparently **reloads** the spilled session (recompiling the
///   model from its spec and re-validating the partial) before
///   serving;
/// * every successful Extend takes a **write-through snapshot**, so a
///   killed-and-restarted `glc-serve` resumes extends from the
///   snapshot's replicate count instead of recomputing from seed 0.
///
/// Snapshot files are written to a temporary sibling and renamed into
/// place, so a crash mid-write leaves the previous snapshot intact.
/// The partial's wire format is bitwise-canonical, so a
/// reloaded-and-extended session finalizes identically to one that
/// never left memory — the spill property tests pin exactly that.
pub struct SessionStore {
    capacity: usize,
    backend: ExtendBackend,
    sessions: Vec<Session>,
    clock: u64,
    evictions: u64,
    simulated: u64,
    spill_dir: Option<PathBuf>,
    spilled: u64,
    reloads: u64,
    snapshots: u64,
    /// Store-owned compiled-model cache (deliberately not the
    /// process-wide [`ModelCache::shared`], so the hit/miss counters
    /// below are deterministic for this store's own traffic).
    model_cache: ModelCache,
    model_cache_hits: u64,
    model_cache_misses: u64,
    /// Spill-dir size bound: the GC evicts oldest session snapshots
    /// until the directory fits.
    spill_max_bytes: Option<u64>,
    /// Spill-dir age bound: session snapshots older than this are
    /// collected.
    spill_max_age: Option<Duration>,
    /// Bytes currently held by session snapshot files (refreshed
    /// after every snapshot write and GC pass).
    spill_bytes: u64,
    spill_gc_evictions: u64,
    /// Attached observability sink: request latencies recorded in
    /// [`SessionStore::handle`], gauge snapshot published after every
    /// request. Recording never touches a seed or a partial.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl SessionStore {
    /// A store holding at most `capacity` resident sessions.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for zero capacity.
    pub fn new(capacity: usize, backend: ExtendBackend) -> Result<Self, ServiceError> {
        if capacity == 0 {
            return Err(ServiceError::Order("session capacity must be >= 1".into()));
        }
        Ok(SessionStore {
            capacity,
            backend,
            sessions: Vec::new(),
            clock: 0,
            evictions: 0,
            simulated: 0,
            spill_dir: None,
            spilled: 0,
            reloads: 0,
            snapshots: 0,
            model_cache: ModelCache::default(),
            model_cache_hits: 0,
            model_cache_misses: 0,
            spill_max_bytes: None,
            spill_max_age: None,
            spill_bytes: 0,
            spill_gc_evictions: 0,
            metrics: None,
        })
    }

    /// Compiles an order's model through the store's cache, counting
    /// the hit or miss.
    fn compile_through_cache(
        &mut self,
        order: &WorkOrder,
    ) -> Result<Arc<CompiledModel>, ServiceError> {
        let (model, warm) = order.compile_model_in(&self.model_cache)?;
        if warm {
            self.model_cache_hits += 1;
        } else {
            self.model_cache_misses += 1;
        }
        Ok(model)
    }

    /// Attaches a durable backing store: evicted sessions spill to
    /// `dir`, spilled sessions reload transparently on their next
    /// touch, and every Extend write-through-snapshots the session (see
    /// the type docs). The directory is created on first use.
    ///
    /// For a [`ExtendBackend::Pool`] backend this also restores the
    /// pool's durable health from `<dir>/pool_health.json` when one
    /// exists, so a restarted service does not forget a quarantined
    /// host (a missing or damaged health file starts the pool fresh and
    /// is overwritten at the next persisted run).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        if let (Some(dir), ExtendBackend::Pool(pool)) = (&self.spill_dir, &mut self.backend) {
            if let Ok(Some(snapshot)) = read_pool_health(dir) {
                pool.restore_health(&snapshot);
            }
        }
        self.collect_spill_garbage(None);
        self
    }

    /// Bounds the spill directory's size: after every snapshot write
    /// the GC evicts the **oldest** session snapshots (by modification
    /// time, name-tiebroken) until the session snapshot files fit in
    /// `max_bytes`. The newest snapshot is never evicted, so the
    /// session just extended always keeps its durability.
    pub fn with_spill_max_bytes(mut self, max_bytes: u64) -> Self {
        self.spill_max_bytes = Some(max_bytes);
        self.collect_spill_garbage(None);
        self
    }

    /// Bounds spill snapshots' age: snapshots not rewritten within
    /// `max_age` are collected at the next GC pass.
    pub fn with_spill_max_age(mut self, max_age: Duration) -> Self {
        self.spill_max_age = Some(max_age);
        self.collect_spill_garbage(None);
        self
    }

    /// Attaches a metrics registry: request latencies are recorded per
    /// kind in [`SessionStore::handle`], the gauge snapshot is
    /// published after every request, and a pool backend additionally
    /// records per-slot shard latencies. Observation-only — no request
    /// result changes by a bit (property-tested).
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        if let ExtendBackend::Pool(pool) = &mut self.backend {
            pool.attach_metrics(Arc::clone(&registry));
        }
        self.metrics = Some(registry);
        self
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Serves one line of the wire protocol: parses an
    /// [`Envelope`]-wrapped [`Request`], handles it, and returns the
    /// encoded [`Response`] with the request's `id` (if any) echoed
    /// back (see [`Envelope`] for the value-level echo contract).
    /// Undecodable lines become an id-less [`Response::Error`]; this
    /// never fails the serving loop.
    pub fn handle_json_line(&mut self, line: &str) -> String {
        let reply = match serde_json::from_str::<Envelope<Request>>(line.trim()) {
            Ok(Envelope { id, body }) => Envelope {
                id,
                body: self.handle(&body),
            },
            Err(err) => Envelope::bare(Response::Error(format!("unparseable request: {err}"))),
        };
        serde_json::to_string(&reply)
            .unwrap_or_else(|err| format!("{{\"Error\":\"encoding response: {err}\"}}"))
    }

    /// Serves one request, never failing the loop: errors become
    /// [`Response::Error`]. With a metrics registry attached the
    /// request's latency is recorded against its kind and a fresh
    /// gauge snapshot is published for the scrape endpoint —
    /// observation only, after the response is already decided.
    pub fn handle(&mut self, request: &Request) -> Response {
        let started = Instant::now();
        let response = self.dispatch(request);
        if let Some(metrics) = &self.metrics {
            let kind = match request {
                Request::Submit(_) => RequestKind::Submit,
                Request::Extend(_) => RequestKind::Extend,
                Request::Query(_) => RequestKind::Query,
                Request::Stats => RequestKind::Stats,
            };
            metrics.observe_request(kind, started.elapsed());
            metrics.publish(self.stats());
        }
        response
    }

    fn dispatch(&mut self, request: &Request) -> Response {
        match request {
            Request::Submit(spec) => match self.submit(spec) {
                Ok(reply) => Response::Submitted(reply),
                Err(err) => Response::Error(err.to_string()),
            },
            Request::Extend(extend) => match self.extend(&extend.session, extend.replicates) {
                Ok(reply) => Response::Extended(reply),
                Err(err) => Response::Error(err.to_string()),
            },
            Request::Query(query) => match self.query(&query.session, &query.species) {
                Ok(reply) => Response::Queried(reply),
                Err(err) => Response::Error(err.to_string()),
            },
            Request::Stats => Response::Stats(self.stats()),
        }
    }

    /// Compiles and caches `spec` (idempotent: a warm session with the
    /// same spec is touched, not rebuilt; a spilled session with the
    /// same spec is reloaded, replicates intact).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for unresolvable models, unknown
    /// override species, invalid engine parameters, or an invalid
    /// grid.
    pub fn submit(&mut self, spec: &SessionSpec) -> Result<Submitted, ServiceError> {
        let key = spec.fingerprint();
        self.clock += 1;
        if let Some(session) = self.sessions.iter_mut().find(|s| s.spec == *spec) {
            session.last_used = self.clock;
            return Ok(Submitted {
                session: key,
                replicates: session.partial.replicates(),
                warm: true,
                simulated: 0,
            });
        }
        // A spilled session with this spec resumes warm with its
        // snapshot's replicates. A snapshot that fails to reload
        // (corrupt, unreadable, mismatched) is superseded by the cold
        // rebuild below — and overwritten at the next snapshot — so
        // Submit never hard-fails on a damaged spill file.
        if let Ok(Some(slot)) = self.reload_from_spill(&key, Some(spec)) {
            let replicates = self.sessions[slot].partial.replicates();
            return Ok(Submitted {
                session: key,
                replicates,
                warm: true,
                simulated: 0,
            });
        }
        // Cold: compile the model and validate the whole spec up
        // front (engine parameters included), so Extend can trust it.
        // "Cold" means the *session* is cold — the compile itself is
        // served from the store's model cache whenever any session
        // (including an evicted incarnation of this one) already
        // compiled the same model and overrides.
        let order = spec.work_order(0, 1);
        let model = self.compile_through_cache(&order)?;
        spec.engine.build()?;
        let partial = EnsemblePartial::new(&model, spec.t_end, spec.sample_dt)?;
        self.evict_if_full()?;
        self.sessions.push(Session {
            key: key.clone(),
            spec: spec.clone(),
            model,
            partial,
            last_used: self.clock,
        });
        Ok(Submitted {
            session: key,
            replicates: 0,
            warm: false,
            simulated: 0,
        })
    }

    /// Makes room for one more session: spills (when a spill directory
    /// is attached) and evicts the least-recently-touched session once
    /// the store is at capacity.
    fn evict_if_full(&mut self) -> Result<(), ServiceError> {
        if self.sessions.len() < self.capacity {
            return Ok(());
        }
        let oldest = self
            .sessions
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.last_used)
            .map(|(i, _)| i)
            .expect("capacity >= 1, store non-empty");
        if let Some(dir) = self.spill_dir.clone() {
            let victim = &self.sessions[oldest];
            let written = write_spill(&dir, &victim.spec, &victim.partial)?;
            self.spilled += 1;
            self.sessions.swap_remove(oldest);
            self.evictions += 1;
            self.collect_spill_garbage(Some(&written));
            return Ok(());
        }
        self.sessions.swap_remove(oldest);
        self.evictions += 1;
        Ok(())
    }

    /// Attempts to reload session `key` from the spill directory and
    /// insert it resident (spilling/evicting another session if the
    /// store is full). `Ok(None)` when spill is disabled or no
    /// snapshot exists.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Spill`] for unreadable, undecodable or
    /// structurally invalid snapshots (including a spec that does not
    /// re-derive `key`, or — with `expect_spec` — a snapshot whose
    /// spec differs from the submitted one), and compile errors for a
    /// spec whose model no longer resolves.
    fn reload_from_spill(
        &mut self,
        key: &str,
        expect_spec: Option<&SessionSpec>,
    ) -> Result<Option<usize>, ServiceError> {
        let Some(dir) = self.spill_dir.clone() else {
            return Ok(None);
        };
        let Some((spec, partial)) = read_spill(&dir, key)? else {
            return Ok(None);
        };
        if spec.fingerprint() != key {
            return Err(ServiceError::Spill(format!(
                "snapshot `{key}` holds a spec fingerprinting to `{}`",
                spec.fingerprint()
            )));
        }
        if expect_spec.is_some_and(|expected| *expected != spec) {
            return Err(ServiceError::Spill(format!(
                "snapshot `{key}` spec differs from the submitted spec \
                 (fingerprint collision or corruption)"
            )));
        }
        // Recompile and re-derive the expected aggregate shape: the
        // snapshot partial must belong to exactly this model and grid,
        // and its coverage must be the contiguous extend shape a
        // resident session maintains. (The compile usually hits the
        // model cache — eviction spills the partial, not the model.)
        let model = self.compile_through_cache(&spec.work_order(0, 1))?;
        spec.engine.build()?;
        let expected = EnsemblePartial::new(&model, spec.t_end, spec.sample_dt)?;
        if expected.fingerprint() != partial.fingerprint() {
            return Err(ServiceError::Spill(format!(
                "snapshot `{key}` partial does not match its spec's model/grid"
            )));
        }
        if partial.replicates() > 0 && !partial.covers_contiguous_from(spec.base_seed) {
            return Err(ServiceError::Spill(format!(
                "snapshot `{key}` coverage is not contiguous from the base seed"
            )));
        }
        self.evict_if_full()?;
        self.sessions.push(Session {
            key: key.to_string(),
            spec,
            model,
            partial,
            last_used: self.clock,
        });
        self.reloads += 1;
        Ok(Some(self.sessions.len() - 1))
    }

    /// Simulates the session's next `count` replicates (seed range
    /// `base_seed + R .. base_seed + R + count`) and merges them into
    /// the resident partial, write-through-snapshotting the session
    /// when a spill directory is attached.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for an unknown session or zero
    /// `count`, simulation/worker errors from the backend, any
    /// seed-coverage violation the partial's accounting detects, and
    /// [`ServiceError::Spill`] when the write-through snapshot cannot
    /// be written. In that last case the merge already stands — only
    /// durability failed — so the error names the resident replicate
    /// count and the recovery is an idempotent re-Submit (which
    /// reports it), **not** a retried Extend (which would simulate the
    /// *next* seed range on top).
    pub fn extend(&mut self, session: &str, count: u64) -> Result<Extended, ServiceError> {
        if count == 0 {
            return Err(ServiceError::Order("extend replicates must be >= 1".into()));
        }
        self.clock += 1;
        let clock = self.clock;
        let slot = self.touch_or_reload(session)?;
        self.sessions[slot].last_used = clock;
        let first = self.sessions[slot].partial.replicates();
        let fresh = match &mut self.backend {
            ExtendBackend::InProcess => {
                let resident = &self.sessions[slot];
                let spec = &resident.spec;
                let engine = &spec.engine;
                run_partial_from(
                    &resident.model,
                    || engine.build().expect("validated at submit"),
                    spec.base_seed.wrapping_add(first),
                    count,
                    spec.t_end,
                    spec.sample_dt,
                )
                .map_err(ServiceError::from)
            }
            ExtendBackend::Coordinator(coordinator) => {
                coordinator.run(&self.sessions[slot].spec.work_order(first, count))
            }
            ExtendBackend::Pool(pool) => pool
                .run(&self.sessions[slot].spec.work_order(first, count))
                .map(|(partial, _)| partial),
        };
        // A pool's health moved whether or not the run succeeded (a
        // failing run is when it moves most — failures and quarantine);
        // persist it before propagating any error.
        self.persist_pool_health();
        let fresh = fresh?;
        let resident = &mut self.sessions[slot];
        resident.partial.merge(&fresh)?;
        let resident_now = resident.partial.replicates();
        if let Some(dir) = self.spill_dir.clone() {
            // The merge already stands when a snapshot write fails, so
            // the error must leave the client a resync path: it names
            // the resident count, and an idempotent re-Submit reports
            // the same number — blindly retrying the Extend would
            // simulate *further* replicates, not recover these.
            let written = write_spill(&dir, &resident.spec, &resident.partial).map_err(|err| {
                let detail = match err {
                    ServiceError::Spill(msg) => msg,
                    other => other.to_string(),
                };
                ServiceError::Spill(format!(
                    "extend merged {count} replicates ({resident_now} now resident; \
                     re-Submit to observe them) but the write-through snapshot failed: {detail}"
                ))
            })?;
            self.snapshots += 1;
            self.collect_spill_garbage(Some(&written));
        }
        self.simulated += count;
        Ok(Extended {
            session: session.to_string(),
            replicates: resident_now,
            simulated: count,
        })
    }

    /// Finalizes figures off the resident partial: means, σ, and the
    /// requested species' noise series. No replicate is simulated.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for an unknown session or a species the
    /// session does not aggregate, [`ServiceError::Sim`] for a partial
    /// that cannot finalize (zero replicates, poisoned cells).
    pub fn query(&mut self, session: &str, species: &[String]) -> Result<Queried, ServiceError> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self.touch_or_reload(session)?;
        let resident = &mut self.sessions[slot];
        resident.last_used = clock;
        let partial = &resident.partial;
        let ensemble = partial.finalize()?;
        let names: Vec<String> = if species.is_empty() {
            partial.fingerprint().species.clone()
        } else {
            species.to_vec()
        };
        let mut noise = Vec::with_capacity(names.len());
        for name in names {
            // Read the figures off the traces finalize already
            // materialized rather than re-expanding every exact cell
            // through the borrowed-partial path — the two are pinned
            // bitwise-identical (`glc_vasim::stats` parity test), and
            // this halves the per-query superaccumulator work.
            let points = ensemble_noise(&ensemble, &name).ok_or_else(|| {
                ServiceError::Order(format!("session does not aggregate species `{name}`"))
            })?;
            noise.push(SpeciesNoise {
                species: name,
                points,
            });
        }
        Ok(Queried {
            session: session.to_string(),
            replicates: partial.replicates(),
            mean: ensemble.mean,
            std_dev: ensemble.std_dev,
            noise,
            simulated: 0,
        })
    }

    /// A borrowed view of a resident session's partial (primarily for
    /// tests and embedding callers; protocol clients use Query).
    pub fn partial(&self, session: &str) -> Option<&EnsemblePartial> {
        self.sessions
            .iter()
            .find(|s| s.key == session)
            .map(|s| &s.partial)
    }

    /// Current service counters and operator snapshot: spill
    /// accounting, slot health (pool backends), latency histograms
    /// (when a registry is attached), and resident-session footprints.
    pub fn stats(&self) -> ServiceStats {
        let (pool_retries, pool_steals, slots) = match &self.backend {
            ExtendBackend::Pool(pool) => (
                pool.lifetime_retried_shards(),
                pool.lifetime_steals(),
                pool.health(),
            ),
            _ => (0, 0, Vec::new()),
        };
        let footprints = self
            .sessions
            .iter()
            .map(|session| SessionFootprint {
                session: session.key.clone(),
                replicates: session.partial.replicates(),
                cells: session.partial.cells() as u64,
                bytes: session.partial.footprint_bytes() as u64,
            })
            .collect();
        let latency = match &self.metrics {
            Some(metrics) => RequestKind::ALL
                .iter()
                .map(|&kind| RequestLatency {
                    kind: kind.label().to_string(),
                    histogram: metrics.request_snapshot(kind),
                })
                .collect(),
            None => Vec::new(),
        };
        ServiceStats {
            sessions: self.sessions.len() as u64,
            evictions: self.evictions,
            simulated: self.simulated,
            spilled: self.spilled,
            reloads: self.reloads,
            snapshots: self.snapshots,
            model_cache_hits: self.model_cache_hits,
            model_cache_misses: self.model_cache_misses,
            spill_bytes: self.spill_bytes,
            spill_gc_evictions: self.spill_gc_evictions,
            pool_retries,
            pool_steals,
            latency,
            slots,
            footprints,
        }
    }

    /// Best-effort durable pool health: writes
    /// `<spill-dir>/pool_health.json` (atomic temp+rename) when the
    /// backend is a pool and a spill directory is attached. Health is
    /// advisory — a failed write only forgets accounting, never data —
    /// so errors are swallowed rather than failing the request that
    /// triggered the persist.
    fn persist_pool_health(&mut self) {
        if let (Some(dir), ExtendBackend::Pool(pool)) = (&self.spill_dir, &self.backend) {
            let _ = write_pool_health(dir, &pool.health_snapshot());
        }
    }

    /// One garbage-collection pass over the spill directory's
    /// session snapshots (both generations): drop snapshots older than
    /// `spill_max_age`, then evict oldest-first (modification time,
    /// name-tiebroken) until the rest fit in `spill_max_bytes`; refresh
    /// the `spill_bytes` gauge either way. `just_written` — the
    /// snapshot that triggered the pass — and the newest snapshot are
    /// never evicted, so the active session keeps its durability even
    /// when it alone exceeds the bound.
    fn collect_spill_garbage(&mut self, just_written: Option<&Path>) {
        let Some(dir) = self.spill_dir.clone() else {
            return;
        };
        let mut entries = scan_spill_sessions(&dir);
        if let Some(max_age) = self.spill_max_age {
            let now = SystemTime::now();
            let mut kept = Vec::with_capacity(entries.len());
            for entry in entries {
                let expired = now
                    .duration_since(entry.modified)
                    .is_ok_and(|age| age > max_age)
                    && just_written != Some(entry.path.as_path());
                if expired && std::fs::remove_file(&entry.path).is_ok() {
                    self.spill_gc_evictions += 1;
                } else {
                    kept.push(entry);
                }
            }
            entries = kept;
        }
        if let Some(max_bytes) = self.spill_max_bytes {
            let mut total: u64 = entries.iter().map(|entry| entry.bytes).sum();
            // Entries are sorted oldest-first; the last one is newest.
            let newest = entries.last().map(|entry| entry.path.clone());
            let mut kept = Vec::with_capacity(entries.len());
            for entry in entries {
                let protected = just_written == Some(entry.path.as_path())
                    || newest.as_deref() == Some(entry.path.as_path());
                if total > max_bytes && !protected && std::fs::remove_file(&entry.path).is_ok() {
                    total -= entry.bytes;
                    self.spill_gc_evictions += 1;
                } else {
                    kept.push(entry);
                }
            }
            entries = kept;
        }
        self.spill_bytes = entries.iter().map(|entry| entry.bytes).sum();
    }

    /// Index of the resident session with the given key, transparently
    /// reloading it from the spill directory when it is not resident.
    fn touch_or_reload(&mut self, session: &str) -> Result<usize, ServiceError> {
        if let Some(slot) = self.sessions.iter().position(|s| s.key == session) {
            return Ok(slot);
        }
        self.reload_from_spill(session, None)?.ok_or_else(|| {
            ServiceError::Order(format!(
                "unknown session `{session}` (expired from the LRU bound, or never submitted)"
            ))
        })
    }
}

/// One serialized session: the on-disk snapshot format of the durable
/// store. New snapshots are written in the compact GLCB binary layout
/// to `<spill-dir>/<key>.session.glcb`; the legacy JSON document at
/// `<key>.session.json` (this struct's serde shape) is still read on
/// reload, so a spill directory written by an older build resumes
/// unchanged. Either way the `partial` is the same bitwise-canonical
/// `EnsemblePartial` the worker protocol ships, so a snapshot can
/// also be rehydrated by anything that reads partials (e.g.
/// `glc_vasim`'s cached-sweep loader).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpilledSession {
    /// The full session spec (the file name's key re-derives from it).
    pub spec: SessionSpec,
    /// The resident aggregate at snapshot time.
    pub partial: EnsemblePartial,
}

/// The legacy JSON snapshot path of session `key` under `dir`.
pub fn spill_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.session.json"))
}

/// The GLCB snapshot path of session `key` under `dir` — where new
/// snapshots land.
pub fn spill_path_glcb(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.session.glcb"))
}

/// Atomically publishes `bytes` at `path` via a temporary sibling and
/// rename, so a crash mid-write leaves any previous snapshot intact.
fn publish_spill(
    dir: &Path,
    path: &Path,
    tmp_name: &str,
    bytes: &[u8],
) -> Result<(), ServiceError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| ServiceError::Spill(format!("creating {}: {e}", dir.display())))?;
    let tmp = dir.join(tmp_name);
    std::fs::write(&tmp, bytes)
        .map_err(|e| ServiceError::Spill(format!("writing {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| ServiceError::Spill(format!("publishing {}: {e}", path.display())))?;
    Ok(())
}

/// Atomically writes a session snapshot in the GLCB binary layout
/// (temporary sibling + rename). Creates `dir` if needed and returns
/// the snapshot path. A stale legacy `.session.json` for the same key
/// is removed after the rename so the directory holds one snapshot
/// per session, whichever build wrote last.
///
/// # Errors
///
/// [`ServiceError::Spill`] for I/O or encoding failures.
pub fn write_spill(
    dir: &Path,
    spec: &SessionSpec,
    partial: &EnsemblePartial,
) -> Result<PathBuf, ServiceError> {
    let key = spec.fingerprint();
    let path = spill_path_glcb(dir, &key);
    let spec_json = serde_json::to_string(spec)
        .map_err(|e| ServiceError::Spill(format!("encoding snapshot `{key}`: {e}")))?;
    let bytes = codec::encode_snapshot(&spec_json, partial);
    publish_spill(dir, &path, &format!("{key}.session.glcb.tmp"), &bytes)?;
    let legacy = spill_path(dir, &key);
    match std::fs::remove_file(&legacy) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(ServiceError::Spill(format!(
                "removing stale {}: {e}",
                legacy.display()
            )))
        }
    }
    Ok(path)
}

/// Atomically writes a session snapshot in the legacy JSON document
/// format — kept for older readers and for benchmarking against the
/// GLCB path; the service itself writes [`write_spill`]. Creates `dir`
/// if needed and returns the snapshot path.
///
/// # Errors
///
/// [`ServiceError::Spill`] for I/O or encoding failures.
pub fn write_spill_json(
    dir: &Path,
    spec: &SessionSpec,
    partial: &EnsemblePartial,
) -> Result<PathBuf, ServiceError> {
    let key = spec.fingerprint();
    let path = spill_path(dir, &key);
    // Serialize through a borrowed value tree — no need to clone the
    // whole partial into an owned SpilledSession just to encode it.
    let doc = Value::Object(vec![
        ("spec".to_string(), spec.to_value()),
        ("partial".to_string(), partial.to_value()),
    ]);
    let text = serde_json::to_string(&doc)
        .map_err(|e| ServiceError::Spill(format!("encoding snapshot `{key}`: {e}")))?;
    publish_spill(
        dir,
        &path,
        &format!("{key}.session.json.tmp"),
        text.as_bytes(),
    )?;
    Ok(path)
}

/// Reads and structurally validates the snapshot of session `key`
/// under `dir`; `Ok(None)` when no snapshot exists. The GLCB snapshot
/// is preferred; a legacy `.session.json` left by an older build is
/// read when no binary snapshot exists.
///
/// # Errors
///
/// [`ServiceError::Spill`] for I/O failures, undecodable documents,
/// and partials failing `EnsemblePartial::validate` — a snapshot file
/// arrives from disk, not from this process, so nothing in it is
/// trusted unchecked.
pub fn read_spill(
    dir: &Path,
    key: &str,
) -> Result<Option<(SessionSpec, EnsemblePartial)>, ServiceError> {
    let binary = spill_path_glcb(dir, key);
    match std::fs::read(&binary) {
        Ok(bytes) => {
            // decode_snapshot validates the partial internally.
            let (spec_json, partial) = codec::decode_snapshot(&bytes).map_err(|e| {
                ServiceError::Spill(format!("undecodable snapshot {}: {e}", binary.display()))
            })?;
            let spec: SessionSpec = serde_json::from_str(&spec_json).map_err(|e| {
                ServiceError::Spill(format!("undecodable snapshot {}: {e}", binary.display()))
            })?;
            return Ok(Some((spec, partial)));
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(ServiceError::Spill(format!(
                "reading {}: {e}",
                binary.display()
            )))
        }
    }
    let path = spill_path(dir, key);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(ServiceError::Spill(format!(
                "reading {}: {e}",
                path.display()
            )))
        }
    };
    let doc: SpilledSession = serde_json::from_str(&text).map_err(|e| {
        ServiceError::Spill(format!("undecodable snapshot {}: {e}", path.display()))
    })?;
    doc.partial
        .validate()
        .map_err(|e| ServiceError::Spill(format!("invalid snapshot {}: {e}", path.display())))?;
    Ok(Some((doc.spec, doc.partial)))
}

/// One session snapshot file in the spill directory, as the garbage
/// collector sees it.
struct SpillEntry {
    path: PathBuf,
    bytes: u64,
    modified: SystemTime,
}

/// Lists the session snapshots under `dir`, sorted oldest-first by
/// (modification time, file name) — the GC's eviction order. A missing
/// or unreadable directory is an empty list (nothing to collect), and
/// entries whose metadata cannot be read are skipped. Both snapshot
/// generations count — `*.session.glcb` and legacy `*.session.json` —
/// while `pool_health.json` and in-flight `.tmp` siblings are neither
/// accounted nor collected.
fn scan_spill_sessions(dir: &Path) -> Vec<SpillEntry> {
    let Ok(reader) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut entries: Vec<SpillEntry> = reader
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| {
                    name.ends_with(".session.json") || name.ends_with(".session.glcb")
                })
                .then_some(path)
        })
        .filter_map(|path| {
            let meta = std::fs::metadata(&path).ok()?;
            let modified = meta.modified().ok()?;
            Some(SpillEntry {
                path,
                bytes: meta.len(),
                modified,
            })
        })
        .collect();
    entries.sort_by(|a, b| {
        a.modified
            .cmp(&b.modified)
            .then_with(|| a.path.cmp(&b.path))
    });
    entries
}

/// The pool-health snapshot path under `dir`.
pub fn pool_health_path(dir: &Path) -> PathBuf {
    dir.join("pool_health.json")
}

/// Atomically writes the worker pool's durable health to
/// `<dir>/pool_health.json` (temp sibling + rename, like session
/// snapshots), creating `dir` if needed. Returns the snapshot path.
///
/// # Errors
///
/// [`ServiceError::Spill`] for I/O or encoding failures.
pub fn write_pool_health(
    dir: &Path,
    snapshot: &PoolHealthSnapshot,
) -> Result<PathBuf, ServiceError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| ServiceError::Spill(format!("creating {}: {e}", dir.display())))?;
    let path = pool_health_path(dir);
    let text = serde_json::to_string(snapshot)
        .map_err(|e| ServiceError::Spill(format!("encoding pool health: {e}")))?;
    let tmp = dir.join("pool_health.json.tmp");
    std::fs::write(&tmp, text)
        .map_err(|e| ServiceError::Spill(format!("writing {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, &path)
        .map_err(|e| ServiceError::Spill(format!("publishing {}: {e}", path.display())))?;
    Ok(path)
}

/// Reads the pool-health snapshot under `dir`; `Ok(None)` when none
/// exists.
///
/// # Errors
///
/// [`ServiceError::Spill`] for I/O failures and undecodable documents.
pub fn read_pool_health(dir: &Path) -> Result<Option<PoolHealthSnapshot>, ServiceError> {
    let path = pool_health_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(ServiceError::Spill(format!(
                "reading {}: {e}",
                path.display()
            )))
        }
    };
    let snapshot: PoolHealthSnapshot = serde_json::from_str(&text).map_err(|e| {
        ServiceError::Spill(format!("undecodable pool health {}: {e}", path.display()))
    })?;
    Ok(Some(snapshot))
}

/// A [`Request`] or [`Response`] with an optional client-supplied
/// correlation `id`, echoed back — what pipelined clients use to
/// match replies to in-flight requests.
///
/// The wire shape is **byte-identical to the bare body when `id` is
/// absent** (old clients and old servers interoperate unchanged). With
/// an id, the serialized body object gains a leading `"id"` entry —
/// `{"id":7,"Extend":{…}}` — and a unit variant like `Stats` is
/// spelled `{"id":7,"Stats":null}`. The id is any JSON value and is
/// never interpreted; it is echoed as the same JSON **value**, not the
/// same bytes: numbers travel through the JSON number layer (exact
/// for integer magnitudes up to 2^53, canonical float spelling on the
/// way out, so `41` returns as `41.0`). Clients that correlate by
/// comparing raw token text — or use ids beyond 2^53 — should send
/// **string** ids, which do round-trip byte-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<T> {
    /// Opaque correlation id (`None` = today's bare wire format).
    pub id: Option<Value>,
    /// The request or response itself.
    pub body: T,
}

impl<T> Envelope<T> {
    /// An id-less envelope: serializes byte-identically to the bare
    /// body.
    pub fn bare(body: T) -> Self {
        Envelope { id: None, body }
    }

    /// An envelope carrying a correlation id.
    pub fn with_id(id: Value, body: T) -> Self {
        Envelope { id: Some(id), body }
    }
}

impl<T: Serialize> Serialize for Envelope<T> {
    fn to_value(&self) -> Value {
        let body = self.body.to_value();
        let Some(id) = &self.id else {
            return body;
        };
        let mut entries = vec![("id".to_string(), id.clone())];
        match body {
            Value::Object(fields) => entries.extend(fields),
            // Unit enum variants serialize as strings; with an id they
            // become `{"id":…,"Variant":null}`.
            Value::Str(variant) => entries.push((variant, Value::Null)),
            other => entries.push(("body".to_string(), other)),
        }
        Value::Object(entries)
    }
}

impl<T: Deserialize> Deserialize for Envelope<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(entries) = value else {
            return Ok(Envelope::bare(T::from_value(value)?));
        };
        if !entries.iter().any(|(k, _)| k == "id") {
            return Ok(Envelope::bare(T::from_value(value)?));
        }
        let mut id = None;
        let mut rest = Vec::with_capacity(entries.len() - 1);
        for (k, v) in entries {
            if k == "id" && id.is_none() {
                id = Some(v.clone());
            } else {
                rest.push((k.clone(), v.clone()));
            }
        }
        // `{"id":…,"Variant":null}` is the enveloped spelling of the
        // unit variant `"Variant"`; try that reading first, falling
        // back to the object shape for data-carrying variants.
        let body = if let [(variant, Value::Null)] = rest.as_slice() {
            T::from_value(&Value::Str(variant.clone()))
                .or_else(|_| T::from_value(&Value::Object(rest.clone())))?
        } else {
            T::from_value(&Value::Object(rest))?
        };
        Ok(Envelope { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glc_ssa::run_partial_from as fresh_partial;

    fn spec() -> SessionSpec {
        SessionSpec::new(
            ModelSource::Catalog("book_and".into()),
            EngineSpec::Direct,
            7,
            20.0,
            4.0,
        )
        .with_amount("LacI", 15.0)
        .with_amount("TetR", 15.0)
    }

    fn store() -> SessionStore {
        SessionStore::new(4, ExtendBackend::InProcess).unwrap()
    }

    #[test]
    fn submit_extend_query_round_trip() {
        let mut store = store();
        let submitted = store.submit(&spec()).unwrap();
        assert!(!submitted.warm);
        assert_eq!(submitted.replicates, 0);
        assert_eq!(submitted.simulated, 0);

        // Idempotent resubmit finds the warm session.
        let again = store.submit(&spec()).unwrap();
        assert!(again.warm);
        assert_eq!(again.session, submitted.session);

        let extended = store.extend(&submitted.session, 5).unwrap();
        assert_eq!(extended.replicates, 5);
        assert_eq!(extended.simulated, 5);
        let extended = store.extend(&submitted.session, 3).unwrap();
        assert_eq!(extended.replicates, 8);

        let queried = store.query(&submitted.session, &[]).unwrap();
        assert_eq!(queried.replicates, 8);
        assert_eq!(queried.simulated, 0, "queries must not simulate");
        assert_eq!(queried.mean.len(), queried.std_dev.len());
        assert_eq!(
            queried.noise.len(),
            queried.mean.species().len(),
            "empty filter reports every species"
        );

        // The resident partial is bitwise what a fresh 0..8 run makes.
        let order = spec().work_order(0, 8);
        let model = order.compile_model().unwrap();
        let reference = fresh_partial(
            &model,
            || EngineSpec::Direct.build().unwrap(),
            7,
            8,
            20.0,
            4.0,
        )
        .unwrap();
        assert_eq!(store.partial(&submitted.session).unwrap(), &reference);

        let stats = store.stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.simulated, 8);
        assert_eq!(stats.evictions, 0);
        // One cold compile; the warm resubmit never reached the cache.
        assert_eq!(stats.model_cache_misses, 1);
        assert_eq!(stats.model_cache_hits, 0);
    }

    #[test]
    fn model_cache_serves_repeat_compiles_across_sessions() {
        let mut store = SessionStore::new(2, ExtendBackend::InProcess).unwrap();
        let make = |seed: u64| {
            SessionSpec::new(
                ModelSource::Catalog("book_not".into()),
                EngineSpec::Direct,
                seed,
                10.0,
                5.0,
            )
            .with_amount("LacI", 15.0)
        };
        // Distinct sessions (different seeds), same model + overrides:
        // the second compile is a cache hit.
        let a = store.submit(&make(1)).unwrap().session;
        store.submit(&make(2)).unwrap();
        let stats = store.stats();
        assert_eq!((stats.model_cache_misses, stats.model_cache_hits), (1, 1));
        // A different circuit is a genuine miss…
        let other = SessionSpec::new(
            ModelSource::Catalog("book_and".into()),
            EngineSpec::Direct,
            1,
            10.0,
            5.0,
        )
        .with_amount("LacI", 15.0)
        .with_amount("TetR", 15.0);
        store.submit(&other).unwrap();
        let stats = store.stats();
        assert_eq!((stats.model_cache_misses, stats.model_cache_hits), (2, 1));
        assert_eq!(stats.evictions, 1, "capacity 2 evicted the LRU session");
        // …and resubmitting the evicted session recompiles nothing:
        // eviction drops the session, not the cached model.
        let again = store.submit(&make(1)).unwrap();
        assert!(!again.warm);
        assert_eq!(again.session, a);
        let stats = store.stats();
        assert_eq!((stats.model_cache_misses, stats.model_cache_hits), (2, 2));
    }

    #[test]
    fn stats_response_reports_model_cache_counters_on_the_wire() {
        let mut store = store();
        store.submit(&spec()).unwrap();
        let mut other = spec();
        other.base_seed = 99;
        store.submit(&other).unwrap();
        let reply = store.handle(&Request::Stats);
        let Response::Stats(stats) = reply else {
            panic!("Stats request must produce a Stats response, got {reply:?}");
        };
        assert_eq!((stats.model_cache_misses, stats.model_cache_hits), (1, 1));
        let json = serde_json::to_string(&Response::Stats(stats.clone())).unwrap();
        assert!(json.contains("\"model_cache_hits\":1"), "{json}");
        assert!(json.contains("\"model_cache_misses\":1"), "{json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Response::Stats(stats));
    }

    #[test]
    fn lru_bound_evicts_the_least_recently_touched() {
        let mut store = SessionStore::new(2, ExtendBackend::InProcess).unwrap();
        let make = |seed: u64| {
            SessionSpec::new(
                ModelSource::Catalog("book_not".into()),
                EngineSpec::Direct,
                seed,
                10.0,
                5.0,
            )
            .with_amount("LacI", 15.0)
        };
        let a = store.submit(&make(1)).unwrap().session;
        let b = store.submit(&make(2)).unwrap().session;
        // Touch A so B is the LRU victim.
        store.extend(&a, 1).unwrap();
        let c = store.submit(&make(3)).unwrap().session;
        assert_eq!(store.stats().sessions, 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.partial(&a).is_some(), "recently-touched A survives");
        assert!(store.partial(&b).is_none(), "LRU session B evicted");
        assert!(store.partial(&c).is_some());
        // Extending the evicted session is a clean error…
        assert!(matches!(store.extend(&b, 1), Err(ServiceError::Order(_))));
        // …and resubmitting starts it cold.
        let again = store.submit(&make(2)).unwrap();
        assert!(!again.warm);
        assert_eq!(again.replicates, 0);
    }

    #[test]
    fn bad_requests_are_clean_errors() {
        let mut store = store();
        assert!(SessionStore::new(0, ExtendBackend::InProcess).is_err());
        let bad = SessionSpec::new(
            ModelSource::Catalog("no_such".into()),
            EngineSpec::Direct,
            0,
            10.0,
            1.0,
        );
        assert!(matches!(store.submit(&bad), Err(ServiceError::Order(_))));
        let bad_engine = SessionSpec::new(
            ModelSource::Catalog("book_not".into()),
            EngineSpec::TauLeap(-1.0),
            0,
            10.0,
            1.0,
        );
        assert!(matches!(
            store.submit(&bad_engine),
            Err(ServiceError::Order(_))
        ));
        assert!(matches!(
            store.extend("sess-missing", 1),
            Err(ServiceError::Order(_))
        ));
        assert!(matches!(
            store.query("sess-missing", &[]),
            Err(ServiceError::Order(_))
        ));
        let session = store.submit(&spec()).unwrap().session;
        assert!(matches!(
            store.extend(&session, 0),
            Err(ServiceError::Order(_))
        ));
        // Querying before any extend: zero replicates cannot finalize.
        assert!(store.query(&session, &[]).is_err());
        // Unknown species in the filter.
        store.extend(&session, 1).unwrap();
        assert!(matches!(
            store.query(&session, &["Ghost".into()]),
            Err(ServiceError::Order(_))
        ));
    }

    #[test]
    fn requests_and_responses_round_trip_through_json() {
        let requests = [
            Request::Submit(spec()),
            Request::Extend(ExtendRequest {
                session: "sess-00ff".into(),
                replicates: 64,
            }),
            Request::Query(QueryRequest {
                session: "sess-00ff".into(),
                species: vec!["GFP".into()],
            }),
            Request::Stats,
        ];
        for request in &requests {
            let json = serde_json::to_string(request).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, request);
        }
        let mut store = store();
        let session = store.submit(&spec()).unwrap().session;
        store.extend(&session, 2).unwrap();
        let reply = store.handle(&Request::Query(QueryRequest {
            session,
            species: vec![],
        }));
        assert!(matches!(reply, Response::Queried(_)));
        // NaN figures (Fano/CV at zero mean) make PartialEq useless
        // here; canonical-JSON equality is the round-trip contract the
        // wire actually needs.
        let json = serde_json::to_string(&reply).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn idless_envelopes_are_byte_identical_to_the_bare_wire_format() {
        // The id is strictly additive: old clients and new servers (and
        // vice versa) interoperate on exactly yesterday's bytes.
        let requests = [
            Request::Submit(spec()),
            Request::Extend(ExtendRequest {
                session: "sess-00ff".into(),
                replicates: 3,
            }),
            Request::Stats,
        ];
        for request in requests {
            let bare = serde_json::to_string(&request).unwrap();
            let envelope = serde_json::to_string(&Envelope::bare(request.clone())).unwrap();
            assert_eq!(envelope, bare, "id-less envelope must not change a byte");
            let back: Envelope<Request> = serde_json::from_str(&bare).unwrap();
            assert_eq!(back.id, None);
            assert_eq!(back.body, request);
        }
    }

    #[test]
    fn envelope_ids_round_trip_every_request_shape() {
        let ids = [
            Value::Num(7.0),
            Value::Str("req-42".into()),
            Value::Array(vec![Value::Num(1.0), Value::Bool(true)]),
            Value::Null,
        ];
        let requests = [
            Request::Submit(spec()),
            Request::Query(QueryRequest {
                session: "sess-00ff".into(),
                species: vec![],
            }),
            Request::Stats, // Unit variant: the `{"id":…,"Stats":null}` spelling.
        ];
        for id in &ids {
            for request in &requests {
                let envelope = Envelope::with_id(id.clone(), request.clone());
                let json = serde_json::to_string(&envelope).unwrap();
                assert!(json.starts_with("{\"id\":"), "{json}");
                let back: Envelope<Request> = serde_json::from_str(&json).unwrap();
                assert_eq!(back.id.as_ref(), Some(id), "{json}");
                assert_eq!(&back.body, request, "{json}");
            }
        }
    }

    #[test]
    fn handle_json_line_echoes_the_id() {
        let mut store = store();
        // A Stats request with an id: the reply carries the same id.
        let reply = store.handle_json_line("{\"id\":41,\"Stats\":null}");
        let decoded: Envelope<Response> = serde_json::from_str(&reply).unwrap();
        assert_eq!(decoded.id, Some(Value::Num(41.0)));
        assert!(matches!(decoded.body, Response::Stats(_)));
        // Without an id the reply is the bare historical format.
        let reply = store.handle_json_line("\"Stats\"");
        assert!(reply.starts_with("{\"Stats\":"), "{reply}");
        // Submit with a string id; the echoed id survives alongside a
        // data-carrying response variant.
        let line = serde_json::to_string(&Envelope::with_id(
            Value::Str("alpha".into()),
            Request::Submit(spec()),
        ))
        .unwrap();
        let raw = store.handle_json_line(&line);
        // String ids are the byte-exact correlation tokens the docs
        // steer clients toward (numbers normalize to float spelling).
        assert!(raw.starts_with("{\"id\":\"alpha\","), "{raw}");
        let decoded: Envelope<Response> = serde_json::from_str(&raw).unwrap();
        assert_eq!(decoded.id, Some(Value::Str("alpha".into())));
        assert!(matches!(decoded.body, Response::Submitted(_)));
        // Garbage stays a served (id-less) error, never a crash.
        let decoded: Envelope<Response> =
            serde_json::from_str(&store.handle_json_line("not json")).unwrap();
        assert_eq!(decoded.id, None);
        assert!(matches!(decoded.body, Response::Error(_)));
    }

    #[test]
    fn fingerprints_separate_distinct_specs() {
        let base = spec();
        let mut other = spec();
        other.base_seed = 8;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut engine = spec();
        engine.engine = EngineSpec::Langevin(0.1);
        assert_ne!(base.fingerprint(), engine.fingerprint());
        assert_eq!(base.fingerprint(), spec().fingerprint());
    }
}
