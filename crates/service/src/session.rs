//! The resident session protocol: Submit / Extend / Query over warm
//! compiled models and partially-aggregated ensembles.
//!
//! The one-shot [`crate::WorkOrder`] protocol pays a cold start on
//! every request: recompile the model, rerun all replicates, throw the
//! partial away. The session protocol is the ROADMAP's next rung — a
//! **resident query service** that keeps both expensive artifacts
//! warm:
//!
//! * [`Request::Submit`] — compile the model once and cache it (with
//!   an empty [`EnsemblePartial`]) under a fingerprint key derived
//!   from the full session spec. Submitting the same spec again is
//!   idempotent: it finds the warm session instead of recompiling.
//! * [`Request::Extend`] — simulate **only the new seed range**
//!   `base_seed + R .. base_seed + R + N` and merge it into the
//!   resident partial. The partial's seed-range accounting validates
//!   the merge is disjoint, and exact accumulation makes the extended
//!   partial bitwise-identical to a fresh `0 .. R + N` run — the
//!   property the session store is property-tested on.
//! * [`Request::Query`] — finalize means/σ and per-species noise
//!   figures off the resident partial. **Zero simulation work**: every
//!   response carries `simulated` (replicates run while serving it),
//!   and it is 0 for every query.
//!
//! Sessions live in an [`SessionStore`] bounded by an LRU policy:
//! submitting past the capacity evicts the least-recently-touched
//! session (its partial is gone; resubmitting starts cold). Extends
//! run either in-process or — [`ExtendBackend::Coordinator`] — fanned
//! out over `glc-worker` child processes, reusing the shard protocol
//! unchanged; both produce the same bits, by the same argument as the
//! one-shot path.
//!
//! The `glc-serve` binary serves this protocol as line-delimited JSON
//! on stdin/stdout; see `crates/service/README.md` for a worked
//! example.

use crate::{Coordinator, EngineSpec, ModelSource, ServiceError, WorkOrder};
use glc_ssa::{run_partial_from, CompiledModel, EnsemblePartial, Trace};
use glc_vasim::stats::{ensemble_noise, NoisePoint};
use serde::{Deserialize, Serialize};

/// Everything that identifies a resident ensemble session: the model,
/// the engine, the replicate-0 seed, and the sampling grid. Two
/// submissions with the same spec are the same session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The circuit to simulate.
    pub model: ModelSource,
    /// Initial-amount overrides applied before compilation.
    pub set_amounts: Vec<(String, f64)>,
    /// The engine every replicate runs.
    pub engine: EngineSpec,
    /// Seed of replicate 0; replicate `i` is seeded `base_seed + i`.
    pub base_seed: u64,
    /// Simulation horizon per replicate.
    pub t_end: f64,
    /// Trace sampling interval.
    pub sample_dt: f64,
}

impl SessionSpec {
    /// A spec with no amount overrides (builder style via
    /// [`SessionSpec::with_amount`]).
    pub fn new(
        model: ModelSource,
        engine: EngineSpec,
        base_seed: u64,
        t_end: f64,
        sample_dt: f64,
    ) -> Self {
        SessionSpec {
            model,
            set_amounts: Vec::new(),
            engine,
            base_seed,
            t_end,
            sample_dt,
        }
    }

    /// Adds an initial-amount override (builder style).
    pub fn with_amount(mut self, species: &str, amount: f64) -> Self {
        self.set_amounts.push((species.to_string(), amount));
        self
    }

    /// The session key: an FNV-1a fingerprint of the canonical JSON of
    /// the spec. Deterministic across processes (the hash walks the
    /// serialized bytes, not addresses), so a client can re-derive the
    /// key of a session it submitted earlier.
    pub fn fingerprint(&self) -> String {
        let canonical = serde_json::to_string(self).unwrap_or_default();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in canonical.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("sess-{hash:016x}")
    }

    /// The one-shot work order covering this spec's replicates
    /// `first .. first + count` — how an Extend reuses the worker
    /// sharding protocol unchanged.
    fn work_order(&self, first: u64, count: u64) -> WorkOrder {
        WorkOrder {
            model: self.model.clone(),
            set_amounts: self.set_amounts.clone(),
            engine: self.engine.clone(),
            base_seed: self.base_seed,
            first_replicate: first,
            replicates: count,
            t_end: self.t_end,
            sample_dt: self.sample_dt,
        }
    }
}

/// One request to the resident query service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Compile and cache a session (idempotent per spec).
    Submit(SessionSpec),
    /// Extend a session's resident partial by N replicates.
    Extend(ExtendRequest),
    /// Read figures off a session's resident partial (no simulation).
    Query(QueryRequest),
    /// Service-level counters (sessions resident, evictions, total
    /// replicates simulated).
    Stats,
}

/// Parameters of [`Request::Extend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtendRequest {
    /// Session key from the Submit response.
    pub session: String,
    /// Number of *additional* replicates to simulate and merge.
    pub replicates: u64,
}

/// Parameters of [`Request::Query`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Session key from the Submit response.
    pub session: String,
    /// Species to report noise figures for; empty = every species the
    /// session aggregates.
    pub species: Vec<String>,
}

/// One reply from the resident query service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Submit`].
    Submitted(Submitted),
    /// Reply to [`Request::Extend`].
    Extended(Extended),
    /// Reply to [`Request::Query`].
    Queried(Queried),
    /// Reply to [`Request::Stats`].
    Stats(ServiceStats),
    /// Any request that could not be served (the session protocol
    /// keeps serving after an error).
    Error(String),
}

/// Reply to [`Request::Submit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submitted {
    /// Session key for Extend/Query.
    pub session: String,
    /// Replicates already resident (non-zero on an idempotent
    /// re-submit of a warm session).
    pub replicates: u64,
    /// Whether the session was already resident.
    pub warm: bool,
    /// Replicates simulated while serving this request (always 0).
    pub simulated: u64,
}

/// Reply to [`Request::Extend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extended {
    /// Session key.
    pub session: String,
    /// Total replicates now resident.
    pub replicates: u64,
    /// Replicates simulated while serving this request (= the
    /// requested extension).
    pub simulated: u64,
}

/// Reply to [`Request::Query`]: figures finalized off the resident
/// partial, zero replicates simulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Queried {
    /// Session key.
    pub session: String,
    /// Replicates aggregated in the reported figures.
    pub replicates: u64,
    /// Ensemble mean of every species on the session grid.
    pub mean: Trace,
    /// Ensemble standard deviation (population).
    pub std_dev: Trace,
    /// Per-species noise figures (mean/σ/variance/Fano/CV per sample),
    /// read off the borrowed partial.
    pub noise: Vec<SpeciesNoise>,
    /// Replicates simulated while serving this request (always 0 —
    /// the acceptance criterion of the resident refactor).
    pub simulated: u64,
}

/// Noise series of one species in a [`Queried`] reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeciesNoise {
    /// Species name.
    pub species: String,
    /// Per-sample figures.
    pub points: Vec<NoisePoint>,
}

/// Service-level counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ServiceStats {
    /// Sessions currently resident.
    pub sessions: u64,
    /// Sessions evicted by the LRU bound since startup.
    pub evictions: u64,
    /// Total replicates simulated since startup (only Extends add).
    pub simulated: u64,
}

/// How an Extend's new seed range is simulated.
pub enum ExtendBackend {
    /// On the calling thread, against the session's warm compiled
    /// model (no process or compile cost).
    InProcess,
    /// Fanned out over `glc-worker` child processes via the sharding
    /// [`Coordinator`] (which re-ships the model; workers compile
    /// their own copy, as the one-shot protocol always did).
    Coordinator(Coordinator),
}

/// One resident session: the warm compiled model and the growing
/// partial.
struct Session {
    /// The fingerprint key, computed once at submit (recomputing it
    /// per lookup would re-serialize the whole spec — including any
    /// inline SBML document — on every request).
    key: String,
    spec: SessionSpec,
    model: CompiledModel,
    partial: EnsemblePartial,
    /// LRU clock stamp of the last touch.
    last_used: u64,
}

/// An LRU-bounded store of resident sessions; the state behind a
/// `glc-serve` process (and directly drivable in-process, which is how
/// the extend-vs-fresh property tests run).
pub struct SessionStore {
    capacity: usize,
    backend: ExtendBackend,
    sessions: Vec<Session>,
    clock: u64,
    evictions: u64,
    simulated: u64,
}

impl SessionStore {
    /// A store holding at most `capacity` resident sessions.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for zero capacity.
    pub fn new(capacity: usize, backend: ExtendBackend) -> Result<Self, ServiceError> {
        if capacity == 0 {
            return Err(ServiceError::Order("session capacity must be >= 1".into()));
        }
        Ok(SessionStore {
            capacity,
            backend,
            sessions: Vec::new(),
            clock: 0,
            evictions: 0,
            simulated: 0,
        })
    }

    /// Serves one request, never failing the loop: errors become
    /// [`Response::Error`].
    pub fn handle(&mut self, request: &Request) -> Response {
        match request {
            Request::Submit(spec) => match self.submit(spec) {
                Ok(reply) => Response::Submitted(reply),
                Err(err) => Response::Error(err.to_string()),
            },
            Request::Extend(extend) => match self.extend(&extend.session, extend.replicates) {
                Ok(reply) => Response::Extended(reply),
                Err(err) => Response::Error(err.to_string()),
            },
            Request::Query(query) => match self.query(&query.session, &query.species) {
                Ok(reply) => Response::Queried(reply),
                Err(err) => Response::Error(err.to_string()),
            },
            Request::Stats => Response::Stats(self.stats()),
        }
    }

    /// Compiles and caches `spec` (idempotent: a warm session with the
    /// same spec is touched, not rebuilt).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for unresolvable models, unknown
    /// override species, invalid engine parameters, or an invalid
    /// grid.
    pub fn submit(&mut self, spec: &SessionSpec) -> Result<Submitted, ServiceError> {
        let key = spec.fingerprint();
        self.clock += 1;
        if let Some(session) = self.sessions.iter_mut().find(|s| s.spec == *spec) {
            session.last_used = self.clock;
            return Ok(Submitted {
                session: key,
                replicates: session.partial.replicates(),
                warm: true,
                simulated: 0,
            });
        }
        // Cold: compile the model and validate the whole spec up
        // front (engine parameters included), so Extend can trust it.
        let order = spec.work_order(0, 1);
        let model = order.compile_model()?;
        spec.engine.build()?;
        let partial = EnsemblePartial::new(&model, spec.t_end, spec.sample_dt)?;
        if self.sessions.len() >= self.capacity {
            // Evict the least-recently-touched session.
            let oldest = self
                .sessions
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1, store non-empty");
            self.sessions.swap_remove(oldest);
            self.evictions += 1;
        }
        self.sessions.push(Session {
            key: key.clone(),
            spec: spec.clone(),
            model,
            partial,
            last_used: self.clock,
        });
        Ok(Submitted {
            session: key,
            replicates: 0,
            warm: false,
            simulated: 0,
        })
    }

    /// Simulates the session's next `count` replicates (seed range
    /// `base_seed + R .. base_seed + R + count`) and merges them into
    /// the resident partial.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for an unknown session or zero
    /// `count`, simulation/worker errors from the backend, and any
    /// seed-coverage violation the partial's accounting detects.
    pub fn extend(&mut self, session: &str, count: u64) -> Result<Extended, ServiceError> {
        if count == 0 {
            return Err(ServiceError::Order("extend replicates must be >= 1".into()));
        }
        self.clock += 1;
        let clock = self.clock;
        let slot = self.lookup(session)?;
        let resident = &mut self.sessions[slot];
        resident.last_used = clock;
        let first = resident.partial.replicates();
        let fresh = match &self.backend {
            ExtendBackend::InProcess => {
                let spec = &resident.spec;
                let engine = &spec.engine;
                run_partial_from(
                    &resident.model,
                    || engine.build().expect("validated at submit"),
                    spec.base_seed.wrapping_add(first),
                    count,
                    spec.t_end,
                    spec.sample_dt,
                )?
            }
            ExtendBackend::Coordinator(coordinator) => {
                coordinator.run(&resident.spec.work_order(first, count))?
            }
        };
        resident.partial.merge(&fresh)?;
        self.simulated += count;
        Ok(Extended {
            session: session.to_string(),
            replicates: resident.partial.replicates(),
            simulated: count,
        })
    }

    /// Finalizes figures off the resident partial: means, σ, and the
    /// requested species' noise series. No replicate is simulated.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for an unknown session or a species the
    /// session does not aggregate, [`ServiceError::Sim`] for a partial
    /// that cannot finalize (zero replicates, poisoned cells).
    pub fn query(&mut self, session: &str, species: &[String]) -> Result<Queried, ServiceError> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self.lookup(session)?;
        let resident = &mut self.sessions[slot];
        resident.last_used = clock;
        let partial = &resident.partial;
        let ensemble = partial.finalize()?;
        let names: Vec<String> = if species.is_empty() {
            partial.fingerprint().species.clone()
        } else {
            species.to_vec()
        };
        let mut noise = Vec::with_capacity(names.len());
        for name in names {
            // Read the figures off the traces finalize already
            // materialized rather than re-expanding every exact cell
            // through the borrowed-partial path — the two are pinned
            // bitwise-identical (`glc_vasim::stats` parity test), and
            // this halves the per-query superaccumulator work.
            let points = ensemble_noise(&ensemble, &name).ok_or_else(|| {
                ServiceError::Order(format!("session does not aggregate species `{name}`"))
            })?;
            noise.push(SpeciesNoise {
                species: name,
                points,
            });
        }
        Ok(Queried {
            session: session.to_string(),
            replicates: partial.replicates(),
            mean: ensemble.mean,
            std_dev: ensemble.std_dev,
            noise,
            simulated: 0,
        })
    }

    /// A borrowed view of a resident session's partial (primarily for
    /// tests and embedding callers; protocol clients use Query).
    pub fn partial(&self, session: &str) -> Option<&EnsemblePartial> {
        self.sessions
            .iter()
            .find(|s| s.key == session)
            .map(|s| &s.partial)
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            sessions: self.sessions.len() as u64,
            evictions: self.evictions,
            simulated: self.simulated,
        }
    }

    /// Index of the session with the given key.
    fn lookup(&self, session: &str) -> Result<usize, ServiceError> {
        self.sessions
            .iter()
            .position(|s| s.key == session)
            .ok_or_else(|| {
                ServiceError::Order(format!(
                    "unknown session `{session}` (expired from the LRU bound, or never submitted)"
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glc_ssa::run_partial_from as fresh_partial;

    fn spec() -> SessionSpec {
        SessionSpec::new(
            ModelSource::Catalog("book_and".into()),
            EngineSpec::Direct,
            7,
            20.0,
            4.0,
        )
        .with_amount("LacI", 15.0)
        .with_amount("TetR", 15.0)
    }

    fn store() -> SessionStore {
        SessionStore::new(4, ExtendBackend::InProcess).unwrap()
    }

    #[test]
    fn submit_extend_query_round_trip() {
        let mut store = store();
        let submitted = store.submit(&spec()).unwrap();
        assert!(!submitted.warm);
        assert_eq!(submitted.replicates, 0);
        assert_eq!(submitted.simulated, 0);

        // Idempotent resubmit finds the warm session.
        let again = store.submit(&spec()).unwrap();
        assert!(again.warm);
        assert_eq!(again.session, submitted.session);

        let extended = store.extend(&submitted.session, 5).unwrap();
        assert_eq!(extended.replicates, 5);
        assert_eq!(extended.simulated, 5);
        let extended = store.extend(&submitted.session, 3).unwrap();
        assert_eq!(extended.replicates, 8);

        let queried = store.query(&submitted.session, &[]).unwrap();
        assert_eq!(queried.replicates, 8);
        assert_eq!(queried.simulated, 0, "queries must not simulate");
        assert_eq!(queried.mean.len(), queried.std_dev.len());
        assert_eq!(
            queried.noise.len(),
            queried.mean.species().len(),
            "empty filter reports every species"
        );

        // The resident partial is bitwise what a fresh 0..8 run makes.
        let order = spec().work_order(0, 8);
        let model = order.compile_model().unwrap();
        let reference = fresh_partial(
            &model,
            || EngineSpec::Direct.build().unwrap(),
            7,
            8,
            20.0,
            4.0,
        )
        .unwrap();
        assert_eq!(store.partial(&submitted.session).unwrap(), &reference);

        let stats = store.stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.simulated, 8);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn lru_bound_evicts_the_least_recently_touched() {
        let mut store = SessionStore::new(2, ExtendBackend::InProcess).unwrap();
        let make = |seed: u64| {
            SessionSpec::new(
                ModelSource::Catalog("book_not".into()),
                EngineSpec::Direct,
                seed,
                10.0,
                5.0,
            )
            .with_amount("LacI", 15.0)
        };
        let a = store.submit(&make(1)).unwrap().session;
        let b = store.submit(&make(2)).unwrap().session;
        // Touch A so B is the LRU victim.
        store.extend(&a, 1).unwrap();
        let c = store.submit(&make(3)).unwrap().session;
        assert_eq!(store.stats().sessions, 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.partial(&a).is_some(), "recently-touched A survives");
        assert!(store.partial(&b).is_none(), "LRU session B evicted");
        assert!(store.partial(&c).is_some());
        // Extending the evicted session is a clean error…
        assert!(matches!(store.extend(&b, 1), Err(ServiceError::Order(_))));
        // …and resubmitting starts it cold.
        let again = store.submit(&make(2)).unwrap();
        assert!(!again.warm);
        assert_eq!(again.replicates, 0);
    }

    #[test]
    fn bad_requests_are_clean_errors() {
        let mut store = store();
        assert!(SessionStore::new(0, ExtendBackend::InProcess).is_err());
        let bad = SessionSpec::new(
            ModelSource::Catalog("no_such".into()),
            EngineSpec::Direct,
            0,
            10.0,
            1.0,
        );
        assert!(matches!(store.submit(&bad), Err(ServiceError::Order(_))));
        let bad_engine = SessionSpec::new(
            ModelSource::Catalog("book_not".into()),
            EngineSpec::TauLeap(-1.0),
            0,
            10.0,
            1.0,
        );
        assert!(matches!(
            store.submit(&bad_engine),
            Err(ServiceError::Order(_))
        ));
        assert!(matches!(
            store.extend("sess-missing", 1),
            Err(ServiceError::Order(_))
        ));
        assert!(matches!(
            store.query("sess-missing", &[]),
            Err(ServiceError::Order(_))
        ));
        let session = store.submit(&spec()).unwrap().session;
        assert!(matches!(
            store.extend(&session, 0),
            Err(ServiceError::Order(_))
        ));
        // Querying before any extend: zero replicates cannot finalize.
        assert!(store.query(&session, &[]).is_err());
        // Unknown species in the filter.
        store.extend(&session, 1).unwrap();
        assert!(matches!(
            store.query(&session, &["Ghost".into()]),
            Err(ServiceError::Order(_))
        ));
    }

    #[test]
    fn requests_and_responses_round_trip_through_json() {
        let requests = [
            Request::Submit(spec()),
            Request::Extend(ExtendRequest {
                session: "sess-00ff".into(),
                replicates: 64,
            }),
            Request::Query(QueryRequest {
                session: "sess-00ff".into(),
                species: vec!["GFP".into()],
            }),
            Request::Stats,
        ];
        for request in &requests {
            let json = serde_json::to_string(request).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, request);
        }
        let mut store = store();
        let session = store.submit(&spec()).unwrap().session;
        store.extend(&session, 2).unwrap();
        let reply = store.handle(&Request::Query(QueryRequest {
            session,
            species: vec![],
        }));
        assert!(matches!(reply, Response::Queried(_)));
        // NaN figures (Fano/CV at zero mean) make PartialEq useless
        // here; canonical-JSON equality is the round-trip contract the
        // wire actually needs.
        let json = serde_json::to_string(&reply).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn fingerprints_separate_distinct_specs() {
        let base = spec();
        let mut other = spec();
        other.base_seed = 8;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut engine = spec();
        engine.engine = EngineSpec::Langevin(0.1);
        assert_ne!(base.fingerprint(), engine.fingerprint());
        assert_eq!(base.fingerprint(), spec().fingerprint());
    }
}
