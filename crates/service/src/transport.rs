//! Transport-abstracted worker fabric: *where* a shard runs, and the
//! health-aware scheduler that decides *which* worker runs it.
//!
//! The original [`crate::Coordinator`] was hard-wired to local
//! `std::process` children with a fixed even split and a single retry.
//! This module factors that into two seams the ROADMAP called for:
//!
//! * [`Transport`] — one method, [`Transport::spawn_shard`]: begin
//!   executing a [`WorkOrder`] somewhere and hand back a
//!   [`ShardHandle`] that joins to its [`EnsemblePartial`]. Three
//!   implementations ship:
//!   - [`InProcess`] — a thread of this process (no serialization, no
//!     process cost; the baseline every other transport is measured
//!     against);
//!   - [`ChildProcess`] — a `glc-worker` child over pipes (the
//!     original coordinator path, extracted verbatim);
//!   - [`TcpRelay`] — a TCP connection to a `glc-relay` process,
//!     which may live on another host: the order travels as one
//!     newline-framed JSON value, the reply as a [`RelayReply`]
//!     frame. One `glc-serve` can therefore front workers on other
//!     machines.
//! * [`WorkerPool`] — a scheduler over one transport per **slot**. It
//!   sizes shards by each slot's observed replicate throughput
//!   (unknown slots get the mean weight, so a cold pool degenerates to
//!   the old even split), retries a failed shard on the other slots,
//!   and **quarantines** a slot after `quarantine_after` consecutive
//!   failures — quarantined slots get no shards and serve no retries
//!   until every slot is quarantined, at which point the pool lifts
//!   the quarantine (probation) rather than deadlock. Health persists
//!   across [`WorkerPool::run`] calls, so a resident `glc-serve`
//!   accumulates it over the session's lifetime.
//!
//! # Determinism
//!
//! None of this moves a single bit: replicate seeds are absolute and
//! partial accumulation is exact, so shard sizing, retries, transport
//! choice and quarantine decisions affect *latency only*. The
//! transport-equivalence tests pin `TcpRelay` ≡ `ChildProcess` ≡
//! [`InProcess`] ≡ unsharded, bitwise, and a pool with an
//! always-failing slot still completes with the correct bits while
//! reporting the quarantine in [`RunReport`].

use crate::codec::{self, BinaryReply, Hello};
use crate::metrics::MetricsRegistry;
use crate::{frame, metrics, RunReport, ServiceError, WorkOrder};
use glc_ssa::EnsemblePartial;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a shard of ensemble work executes.
///
/// A transport is cheap to construct and stateless: spawning hands the
/// order over (thread, child stdin, or TCP frame) and returns
/// immediately, so a scheduler can put many shards in flight before
/// joining any of them. All partials returned by
/// [`ShardHandle::join`] are structurally validated
/// (`EnsemblePartial::validate`) before they are trusted.
pub trait Transport: Send {
    /// Begins executing `order`, returning a handle that joins to the
    /// shard's partial.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Worker`] when the execution vehicle cannot be
    /// started (missing binary, unreachable relay), and
    /// [`ServiceError::Protocol`] when the order cannot be encoded.
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError>;

    /// A human-readable description of this transport, for reports and
    /// logs (e.g. `child-process target/release/glc-worker`).
    fn describe(&self) -> String;

    /// Opens a persistent [`ChunkChannel`] for pipelined chunk orders,
    /// or `Ok(None)` when this transport is one-shot only — the pool
    /// then falls back to [`Transport::spawn_shard`] per chunk. The
    /// default is `Ok(None)`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Worker`] when the connection cannot be
    /// established (spawn failure, unreachable peer, failed frame
    /// handshake).
    fn open_channel(&self) -> Result<Option<Box<dyn ChunkChannel>>, ServiceError> {
        Ok(None)
    }

    /// Whether this transport keeps a persistent pipelined connection.
    /// The pool cuts fine-grained, steal-eligible chunks only when at
    /// least one active slot is pipelined; an all-one-shot pool keeps
    /// the classic one-weighted-shard-per-slot layout (chunking a
    /// one-shot transport would multiply its per-order spawn cost).
    fn pipelined(&self) -> bool {
        false
    }
}

/// A persistent connection that pipelines chunk orders: many orders
/// may be in flight at once, correlated by the envelope `id` each
/// reply echoes.
///
/// Error semantics are two-level. The *outer* `Err` of
/// [`ChunkChannel::submit`]/[`ChunkChannel::recv`] means the
/// connection itself is broken — every in-flight order is lost and the
/// channel must be dropped. An *inner* `Err` from `recv` means that
/// one chunk failed while the connection stays serviceable.
pub trait ChunkChannel: Send {
    /// How many orders are profitably in flight at once (>= 1).
    fn window(&self) -> usize {
        1
    }

    /// Sends one chunk order tagged with the correlation id `id`.
    fn submit(&mut self, id: u64, order: &WorkOrder) -> Result<(), ServiceError>;

    /// Receives the next correlated reply, in whatever order the peer
    /// finished them. Partials are validated before they are returned
    /// (no partial trust — same boundary as [`ShardHandle::join`]).
    fn recv(&mut self) -> Result<(u64, ChunkReply), ServiceError>;
}

/// One correlated reply off a [`ChunkChannel`]. Plain workers only
/// ever send `Done`; a GLCB relay granted reduction mode interleaves
/// `Deferred` receipts with `Reduced` merged partials (see
/// [`crate::codec::BinaryReply`] for the wire forms).
#[derive(Debug)]
pub enum ChunkReply {
    /// The chunk finished: its validated partial, or its failure (an
    /// inner error — the connection stays serviceable).
    Done(Result<EnsemblePartial, ServiceError>),
    /// A reducing relay absorbed this chunk's partial into its local
    /// accumulator; the bits arrive later in a `Reduced` reply that
    /// covers this id. The chunk stays pending but its window slot is
    /// free.
    Deferred {
        /// Replicates the absorbed chunk simulated.
        replicates: u64,
    },
    /// A reducing relay's merged partial, covering the correlation id
    /// **plus** every previously deferred id in `also_covers`.
    Reduced {
        /// Previously deferred ids this partial also covers.
        also_covers: Vec<u64>,
        /// The merge of all covered chunks' partials.
        partial: EnsemblePartial,
    },
}

/// An in-flight shard: join it to get the partial.
pub struct ShardHandle {
    inner: HandleKind,
}

enum HandleKind {
    Thread(std::thread::JoinHandle<Result<EnsemblePartial, ServiceError>>),
    Child {
        child: Child,
        first_replicate: u64,
    },
    Relay {
        stream: TcpStream,
        addr: String,
        first_replicate: u64,
    },
}

impl ShardHandle {
    /// Waits for the shard and returns its validated partial.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Worker`] for execution failures (child exit
    /// status, relay-reported errors, a panicked in-process shard) and
    /// [`ServiceError::Protocol`] for undecodable or structurally
    /// invalid replies.
    pub fn join(self) -> Result<EnsemblePartial, ServiceError> {
        let partial = match self.inner {
            HandleKind::Thread(handle) => handle
                .join()
                .map_err(|_| ServiceError::Worker("in-process shard panicked".into()))??,
            HandleKind::Child {
                child,
                first_replicate,
            } => collect_child(child, first_replicate)?,
            HandleKind::Relay {
                stream,
                addr,
                first_replicate,
            } => collect_relay(stream, &addr, first_replicate)?,
        };
        // Every reply crosses a trust boundary (JSON from a child or a
        // socket); the in-process path pays the same cheap check for
        // uniformity.
        partial.validate().map_err(|e| {
            ServiceError::Protocol(format!("shard returned an invalid partial: {e}"))
        })?;
        Ok(partial)
    }
}

/// Runs shards on threads of the calling process — the zero-overhead
/// baseline transport (no serialization, no spawn cost).
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl Transport for InProcess {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError> {
        let order = order.clone();
        Ok(ShardHandle {
            inner: HandleKind::Thread(std::thread::spawn(move || order.execute())),
        })
    }

    fn describe(&self) -> String {
        "in-process".into()
    }
}

/// Runs shards as `glc-worker` children of this process — the original
/// coordinator path, extracted: the order goes down the child's stdin,
/// the partial comes back on its stdout.
#[derive(Debug, Clone)]
pub struct ChildProcess {
    worker: PathBuf,
}

impl ChildProcess {
    /// A transport spawning children of the worker binary at `worker`.
    pub fn new(worker: impl Into<PathBuf>) -> Self {
        ChildProcess {
            worker: worker.into(),
        }
    }
}

impl Transport for ChildProcess {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError> {
        let mut child = Command::new(&self.worker)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| {
                ServiceError::Worker(format!("cannot spawn {}: {e}", self.worker.display()))
            })?;
        let payload =
            serde_json::to_string(order).map_err(|e| ServiceError::Protocol(e.to_string()));
        let written = payload.and_then(|payload| {
            let mut stdin = child.stdin.take().expect("stdin piped");
            stdin
                .write_all(payload.as_bytes())
                .map_err(|e| ServiceError::Worker(format!("writing work order: {e}")))
            // Dropping stdin here sends EOF: the order is complete.
        });
        if let Err(err) = written {
            let _ = child.kill();
            let _ = child.wait();
            return Err(err);
        }
        Ok(ShardHandle {
            inner: HandleKind::Child {
                child,
                first_replicate: order.first_replicate,
            },
        })
    }

    fn describe(&self) -> String {
        format!("child-process {}", self.worker.display())
    }
}

/// Runs shards over TCP against a `glc-relay` process — potentially on
/// another host. One connection per shard: the order goes out as a
/// newline-framed JSON value, the [`RelayReply`] frame comes back when
/// the relay finishes. Concurrency comes from the relay serving each
/// connection on its own thread, so a pool of several `TcpRelay` slots
/// pointed at one relay runs its shards in parallel over there.
#[derive(Debug, Clone)]
pub struct TcpRelay {
    addr: String,
}

impl TcpRelay {
    /// A transport dialing the relay at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        TcpRelay { addr: addr.into() }
    }

    /// The relay address this transport dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Transport for TcpRelay {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError> {
        let mut stream = TcpStream::connect(&self.addr).map_err(|e| {
            ServiceError::Worker(format!("cannot connect to relay {}: {e}", self.addr))
        })?;
        let mut payload =
            serde_json::to_string(order).map_err(|e| ServiceError::Protocol(e.to_string()))?;
        payload.push('\n');
        stream
            .write_all(payload.as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| {
                ServiceError::Worker(format!("writing work order to relay {}: {e}", self.addr))
            })?;
        Ok(ShardHandle {
            inner: HandleKind::Relay {
                stream,
                addr: self.addr.clone(),
                first_replicate: order.first_replicate,
            },
        })
    }

    fn describe(&self) -> String {
        format!("tcp-relay {}", self.addr)
    }
}

/// One reply frame of the `glc-relay` wire protocol: the shard's
/// partial, or the error that stopped it (the relay stays up either
/// way — a failed order poisons nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RelayReply {
    /// The shard completed; here is its aggregate.
    Partial(EnsemblePartial),
    /// The shard failed with this message.
    Error(String),
}

/// How long connection setup waits for the peer's hello frame before
/// failing closed. Overridable via `GLC_FRAME_HANDSHAKE_MS` (tests and
/// drills shorten it). Without the handshake, a peer that consumes
/// bytes but never frames — a dead marker script, a legacy
/// line-protocol relay — would block the slot forever instead of
/// failing it.
fn handshake_timeout() -> Duration {
    std::env::var("GLC_FRAME_HANDSHAKE_MS")
        .ok()
        .and_then(|ms| ms.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(5))
}

/// Orders a resident worker keeps in flight: one executing, one queued
/// behind it so the worker never idles waiting for the next frame.
const WORKER_PIPELINE_WINDOW: usize = 2;

/// Orders an open relay socket keeps in flight: the relay executes
/// frames concurrently, so a deeper window keeps its worker slots fed.
const RELAY_PIPELINE_WINDOW: usize = 4;

/// Runs chunks on one **resident** `glc-worker --serve` child per pool
/// slot: spawned once, kept alive on its pipes, orders pipelined as
/// length-prefixed frames (see [`crate::frame`]) with replies
/// correlated by envelope id. Eliminates the per-order spawn +
/// process-lifetime JSON cost [`ChildProcess`] pays; the one-shot
/// [`Transport::spawn_shard`] fallback (used by the retry pass)
/// delegates to a fresh [`ChildProcess`] order.
#[derive(Debug, Clone)]
pub struct PipelinedWorker {
    worker: PathBuf,
}

impl PipelinedWorker {
    /// A transport keeping one resident child of the worker binary at
    /// `worker`.
    pub fn new(worker: impl Into<PathBuf>) -> Self {
        PipelinedWorker {
            worker: worker.into(),
        }
    }
}

impl Transport for PipelinedWorker {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError> {
        ChildProcess::new(&self.worker).spawn_shard(order)
    }

    fn describe(&self) -> String {
        format!("pipelined-worker {}", self.worker.display())
    }

    fn open_channel(&self) -> Result<Option<Box<dyn ChunkChannel>>, ServiceError> {
        Ok(Some(Box::new(FramedChildChannel::open(&self.worker)?)))
    }

    fn pipelined(&self) -> bool {
        true
    }
}

/// Runs chunks over one **persistent framed socket** per pool slot to
/// a `glc-relay`: connect once, handshake, then pipeline orders as
/// frames. The relay executes concurrent frames on its own threads and
/// replies as they finish (out of order; the envelope id correlates).
/// The one-shot fallback delegates to a fresh [`TcpRelay`] line-mode
/// connection.
#[derive(Debug, Clone)]
pub struct PipelinedRelay {
    addr: String,
}

impl PipelinedRelay {
    /// A transport keeping one framed connection to the relay at
    /// `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        PipelinedRelay { addr: addr.into() }
    }

    /// The relay address this transport dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Transport for PipelinedRelay {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError> {
        TcpRelay::new(&self.addr).spawn_shard(order)
    }

    fn describe(&self) -> String {
        format!("pipelined-relay {}", self.addr)
    }

    fn open_channel(&self) -> Result<Option<Box<dyn ChunkChannel>>, ServiceError> {
        Ok(Some(Box::new(FramedRelayChannel::open(&self.addr)?)))
    }

    fn pipelined(&self) -> bool {
        true
    }
}

/// Decodes one framed reply payload — GLCB or JSON, sniffed per frame
/// — into the channel result shape: chunk-level errors
/// (`RelayReply::Error`, invalid partials) stay inner so the
/// connection survives them; an uncorrelatable or undecodable payload
/// is an outer error that poisons the connection.
fn decode_chunk_reply(payload: &[u8]) -> Result<(u64, ChunkReply), ServiceError> {
    let glcb = codec::is_glcb(payload);
    metrics::count_frame_rx(glcb, payload.len());
    if glcb {
        // GLCB decoding validates embedded partials as it goes.
        let (id, reply) = codec::decode_reply(payload)?;
        let reply = match reply {
            BinaryReply::Partial(partial) => ChunkReply::Done(Ok(partial)),
            BinaryReply::Error(message) => ChunkReply::Done(Err(ServiceError::Worker(message))),
            BinaryReply::Deferred { replicates } => ChunkReply::Deferred { replicates },
            BinaryReply::Reduced {
                also_covers,
                partial,
            } => ChunkReply::Reduced {
                also_covers,
                partial,
            },
        };
        return Ok((id, reply));
    }
    let (id, reply): (u64, RelayReply) = frame::decode_message(payload)?;
    match reply {
        RelayReply::Partial(partial) => match partial.validate() {
            Ok(()) => Ok((id, ChunkReply::Done(Ok(partial)))),
            Err(e) => Ok((
                id,
                ChunkReply::Done(Err(ServiceError::Protocol(format!(
                    "chunk returned an invalid partial: {e}"
                )))),
            )),
        },
        RelayReply::Error(message) => {
            Ok((id, ChunkReply::Done(Err(ServiceError::Worker(message)))))
        }
    }
}

/// Encodes one chunk order in the connection's negotiated codec and
/// counts the payload bytes.
fn encode_chunk_order(glcb: bool, id: u64, order: &WorkOrder) -> Result<Vec<u8>, ServiceError> {
    let payload = if glcb {
        codec::encode_order(id, order)
    } else {
        frame::encode_message(id, order)?
    };
    metrics::count_frame_tx(glcb, payload.len());
    Ok(payload)
}

/// The resident-worker connection: frames down the child's stdin,
/// reply frames read off its stdout by a dedicated reader thread (the
/// thread is what gives connection setup a handshake *timeout* — pipes
/// have no native read timeout).
struct FramedChildChannel {
    child: Child,
    stdin: Option<ChildStdin>,
    replies: mpsc::Receiver<Result<Vec<u8>, ServiceError>>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Whether the worker's hello advertised GLCB — orders then go out
    /// binary (replies are sniffed per frame either way).
    glcb: bool,
}

impl FramedChildChannel {
    fn open(worker: &PathBuf) -> Result<Self, ServiceError> {
        let mut child = Command::new(worker)
            .arg("--serve")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            // Errors travel in-band as RelayReply::Error frames; an
            // unread stderr pipe could wedge a chatty worker.
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| ServiceError::Worker(format!("cannot spawn {}: {e}", worker.display())))?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        let (tx, replies) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut stdout = BufReader::new(stdout);
            loop {
                match frame::read_frame(&mut stdout) {
                    Ok(Some(payload)) => {
                        if tx.send(Ok(payload)).is_err() {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(err) => {
                        let _ = tx.send(Err(err));
                        break;
                    }
                }
            }
        });
        let mut channel = FramedChildChannel {
            child,
            stdin: Some(stdin),
            replies,
            reader: Some(reader),
            glcb: false,
        };
        let hello = match channel.replies.recv_timeout(handshake_timeout()) {
            Ok(Ok(payload)) => codec::parse_hello(&payload).map_err(|err| err.to_string()),
            Ok(Err(err)) => Err(err.to_string()),
            Err(_) => Err(format!("no hello frame within {:?}", handshake_timeout())),
        };
        match hello {
            Ok(peer) => channel.glcb = Hello::glcb().intersect(peer).glcb,
            Err(detail) => {
                return Err(ServiceError::Worker(format!(
                    "worker {} did not complete the frame handshake: {detail}",
                    worker.display()
                )))
            }
        }
        Ok(channel)
    }
}

impl ChunkChannel for FramedChildChannel {
    fn window(&self) -> usize {
        WORKER_PIPELINE_WINDOW
    }

    fn submit(&mut self, id: u64, order: &WorkOrder) -> Result<(), ServiceError> {
        let payload = encode_chunk_order(self.glcb, id, order)?;
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| ServiceError::Worker("worker connection already closed".into()))?;
        frame::write_frame(stdin, &payload)
    }

    fn recv(&mut self) -> Result<(u64, ChunkReply), ServiceError> {
        match self.replies.recv() {
            Ok(Ok(payload)) => decode_chunk_reply(&payload),
            Ok(Err(err)) => Err(err),
            Err(_) => Err(ServiceError::Worker(
                "resident worker closed its connection".into(),
            )),
        }
    }
}

impl Drop for FramedChildChannel {
    fn drop(&mut self) {
        drop(self.stdin.take()); // EOF: a healthy worker exits cleanly.
        let _ = self.child.kill(); // A wedged one does not get to linger.
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// The persistent framed relay connection. The client speaks first
/// (the relay sniffs the magic byte to pick framed vs line mode), then
/// both sides exchange hello frames under a read timeout before any
/// order is pipelined.
struct FramedRelayChannel {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The capability intersection both hellos agreed on: GLCB orders
    /// when `negotiated.glcb`, reduction-mode replies possible when
    /// `negotiated.reduce`.
    negotiated: Hello,
}

impl FramedRelayChannel {
    fn open(addr: &str) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServiceError::Worker(format!("cannot connect to relay {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(handshake_timeout()))
            .map_err(|e| ServiceError::Worker(format!("relay {addr}: set timeout: {e}")))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| ServiceError::Worker(format!("relay {addr}: cannot clone stream: {e}")))?;
        let ours = Hello::glcb_reducing();
        frame::write_frame(&mut writer, &codec::hello_payload(ours))?;
        let mut reader = BufReader::new(stream);
        let negotiated = match frame::read_frame(&mut reader) {
            Ok(Some(payload)) => match codec::parse_hello(&payload) {
                Ok(theirs) => ours.intersect(theirs),
                Err(err) => {
                    return Err(ServiceError::Worker(format!(
                        "relay {addr} did not complete the frame handshake: {err}"
                    )))
                }
            },
            Ok(None) => {
                return Err(ServiceError::Worker(format!(
                    "relay {addr} did not complete the frame handshake: connection closed"
                )))
            }
            Err(err) => {
                return Err(ServiceError::Worker(format!(
                    "relay {addr} did not complete the frame handshake: {err}"
                )))
            }
        };
        reader
            .get_ref()
            .set_read_timeout(None)
            .map_err(|e| ServiceError::Worker(format!("relay {addr}: clear timeout: {e}")))?;
        Ok(FramedRelayChannel {
            addr: addr.to_string(),
            reader,
            writer,
            negotiated,
        })
    }
}

impl ChunkChannel for FramedRelayChannel {
    fn window(&self) -> usize {
        RELAY_PIPELINE_WINDOW
    }

    fn submit(&mut self, id: u64, order: &WorkOrder) -> Result<(), ServiceError> {
        let payload = encode_chunk_order(self.negotiated.glcb, id, order)?;
        frame::write_frame(&mut self.writer, &payload)
            .map_err(|e| ServiceError::Worker(format!("relay {}: {e}", self.addr)))
    }

    fn recv(&mut self) -> Result<(u64, ChunkReply), ServiceError> {
        match frame::read_frame(&mut self.reader) {
            Ok(Some(payload)) => decode_chunk_reply(&payload),
            Ok(None) => Err(ServiceError::Worker(format!(
                "relay {} closed the framed connection",
                self.addr
            ))),
            Err(err) => Err(err),
        }
    }
}

/// Reaps a worker child's output: waits, checks the exit status, and
/// decodes the partial.
fn collect_child(child: Child, first_replicate: u64) -> Result<EnsemblePartial, ServiceError> {
    let output = child
        .wait_with_output()
        .map_err(|e| ServiceError::Worker(format!("waiting for worker: {e}")))?;
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        return Err(ServiceError::Worker(format!(
            "shard at replicate {} exited with {}: {}",
            first_replicate,
            output.status,
            stderr.trim()
        )));
    }
    let text = String::from_utf8(output.stdout)
        .map_err(|e| ServiceError::Protocol(format!("worker output not UTF-8: {e}")))?;
    serde_json::from_str(text.trim())
        .map_err(|e| ServiceError::Protocol(format!("undecodable partial: {e}")))
}

/// Reads and decodes the relay's one reply frame for a shard.
fn collect_relay(
    stream: TcpStream,
    addr: &str,
    first_replicate: u64,
) -> Result<EnsemblePartial, ServiceError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ServiceError::Worker(format!("reading relay {addr} reply: {e}")))?;
    if line.trim().is_empty() {
        return Err(ServiceError::Worker(format!(
            "relay {addr} closed the connection without a reply \
             (shard at replicate {first_replicate})"
        )));
    }
    match serde_json::from_str::<RelayReply>(line.trim()) {
        Ok(RelayReply::Partial(partial)) => Ok(partial),
        Ok(RelayReply::Error(message)) => Err(ServiceError::Worker(format!(
            "relay {addr}: shard at replicate {first_replicate} failed: {message}"
        ))),
        Err(e) => Err(ServiceError::Protocol(format!(
            "undecodable relay reply: {e}"
        ))),
    }
}

/// Health accounting of one worker-pool slot, accumulated across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SlotHealth {
    /// Shards this slot completed successfully.
    pub successes: u64,
    /// Shard attempts that failed on this slot (first attempts and
    /// retries both count against the slot they ran on).
    pub failures: u64,
    /// Failures since the last success — the quarantine trigger.
    pub consecutive_failures: u64,
    /// Replicates this slot contributed to merged aggregates.
    pub replicates: u64,
    /// Shards this slot served as the *successful retry* of another
    /// slot's failure — a lifetime total, never reset by a run (unlike
    /// [`RunReport::retried_shards`], which is per-run).
    pub retries: u64,
    /// Wall-clock seconds this slot spent on successful shards
    /// (spawn-to-join; the denominator of the throughput estimate).
    pub busy_secs: f64,
    /// Whether the slot is currently quarantined (no shards, no
    /// retries) by the pool's health policy.
    pub quarantined: bool,
}

impl SlotHealth {
    /// Observed replicate throughput (replicates per second), once the
    /// slot has completed at least one shard.
    pub fn observed_throughput(&self) -> Option<f64> {
        (self.replicates > 0 && self.busy_secs > 0.0)
            .then(|| self.replicates as f64 / self.busy_secs)
    }
}

/// The durable form of a [`WorkerPool`]'s health: what
/// `<spill-dir>/pool_health.json` holds so a restarted `glc-serve`
/// does not forget a quarantined host or its lifetime retry totals.
///
/// Slots are recorded by transport *description* rather than index, so
/// a restart that reorders the `--relay`/`--worker-slot` flags (or
/// drops a slot) still restores health to the slots that mean the same
/// thing; see [`WorkerPool::restore_health`] for the matching rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PoolHealthSnapshot {
    /// Lifetime count of shards that failed and succeeded on a retry.
    pub retried_shards: u64,
    /// Every slot's health, labeled by its transport description.
    pub slots: Vec<SlotHealthRecord>,
}

/// One slot's entry in a [`PoolHealthSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotHealthRecord {
    /// The slot's [`Transport::describe`] string at snapshot time.
    pub transport: String,
    /// The slot's health at snapshot time.
    pub health: SlotHealth,
}

/// Default consecutive-failure count that quarantines a slot.
const DEFAULT_QUARANTINE_AFTER: u64 = 3;

/// Throughput weights are clamped to within this factor of the pool
/// mean, so one noisy measurement cannot starve (or flood) a slot.
const WEIGHT_CLAMP: f64 = 8.0;

struct PoolSlot {
    transport: Box<dyn Transport>,
    health: SlotHealth,
    /// The slot's persistent pipelined connection, opened lazily on
    /// first use and kept across [`WorkerPool::run`] calls (connection
    /// reuse is most of what the pipelined transports buy). Dropped on
    /// any connection-level failure; reopened on the next run. Always
    /// `None` for one-shot transports.
    channel: Option<Box<dyn ChunkChannel>>,
}

/// A health-aware scheduler over one [`Transport`] per slot.
///
/// Replaces the fixed even-split + single-retry logic that used to
/// live in `Coordinator::run_with_report`: shards are sized by each
/// slot's observed throughput, a failed shard is retried on the other
/// (non-quarantined) slots, and slots that fail
/// `quarantine_after` times in a row are quarantined until the pool
/// would otherwise be empty. Health persists across
/// [`WorkerPool::run`] calls; none of it affects the merged bits (see
/// the module docs).
pub struct WorkerPool {
    slots: Vec<PoolSlot>,
    quarantine_after: u64,
    /// Lifetime total of shards retried successfully — accumulated
    /// across [`WorkerPool::run`] calls, where [`RunReport`] resets
    /// per run (the fix this field exists for).
    lifetime_retried_shards: u64,
    /// Lifetime total of chunks a slot stole from another slot's
    /// queue (in-memory only; steals are a load-balancing observation,
    /// not durable health).
    lifetime_steals: u64,
    /// Shard-latency sink, when a registry is attached: each slot's
    /// successful spawn-to-join time lands in its histogram.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl WorkerPool {
    /// A pool with one slot per transport.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for an empty transport list.
    pub fn new(transports: Vec<Box<dyn Transport>>) -> Result<Self, ServiceError> {
        if transports.is_empty() {
            return Err(ServiceError::Order(
                "worker pool needs at least one transport".into(),
            ));
        }
        Ok(WorkerPool {
            slots: transports
                .into_iter()
                .map(|transport| PoolSlot {
                    transport,
                    health: SlotHealth::default(),
                    channel: None,
                })
                .collect(),
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            lifetime_retried_shards: 0,
            lifetime_steals: 0,
            metrics: None,
        })
    }

    /// Sets the consecutive-failure count that quarantines a slot
    /// (default 3).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for zero (a slot must be allowed at
    /// least one failure).
    pub fn with_quarantine_after(mut self, failures: u64) -> Result<Self, ServiceError> {
        if failures == 0 {
            return Err(ServiceError::Order("quarantine_after must be >= 1".into()));
        }
        self.quarantine_after = failures;
        Ok(self)
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// A snapshot of every slot's health.
    pub fn health(&self) -> Vec<SlotHealth> {
        self.slots.iter().map(|slot| slot.health.clone()).collect()
    }

    /// Every slot's transport description, in slot order.
    pub fn describe_slots(&self) -> Vec<String> {
        self.slots
            .iter()
            .map(|slot| slot.transport.describe())
            .collect()
    }

    /// Lifetime total of shards that failed and succeeded on a retry,
    /// accumulated across every [`WorkerPool::run`] of this pool
    /// (contrast [`RunReport::retried_shards`], which resets per run).
    pub fn lifetime_retried_shards(&self) -> u64 {
        self.lifetime_retried_shards
    }

    /// Lifetime total of chunks served by a slot other than the one
    /// whose queue they were seeded to (work stealing), accumulated
    /// across every [`WorkerPool::run`] of this pool.
    pub fn lifetime_steals(&self) -> u64 {
        self.lifetime_steals
    }

    /// The pool's durable health: every slot's accounting plus the
    /// lifetime retry total, in the `pool_health.json` shape.
    pub fn health_snapshot(&self) -> PoolHealthSnapshot {
        PoolHealthSnapshot {
            retried_shards: self.lifetime_retried_shards,
            slots: self
                .slots
                .iter()
                .map(|slot| SlotHealthRecord {
                    transport: slot.transport.describe(),
                    health: slot.health.clone(),
                })
                .collect(),
        }
    }

    /// Restores slot health from a persisted snapshot: each slot takes
    /// the first not-yet-consumed record with its transport
    /// description (so two `--workers` slots of the same binary each
    /// get one record, and a record for a transport no longer in the
    /// pool is dropped). Slots without a matching record keep their
    /// fresh health.
    pub fn restore_health(&mut self, snapshot: &PoolHealthSnapshot) {
        let mut consumed = vec![false; snapshot.slots.len()];
        for slot in &mut self.slots {
            let description = slot.transport.describe();
            let matched = snapshot
                .slots
                .iter()
                .enumerate()
                .position(|(i, record)| !consumed[i] && record.transport == description);
            if let Some(i) = matched {
                consumed[i] = true;
                slot.health = snapshot.slots[i].health.clone();
            }
        }
        self.lifetime_retried_shards = snapshot.retried_shards;
    }

    /// Attaches a metrics registry: installs one shard-latency
    /// histogram per slot (labeled by transport description) and
    /// records every successful shard's spawn-to-join time from here
    /// on. Recording is observation-only — it cannot move a bit of any
    /// merged partial.
    pub fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        registry.install_slots(self.describe_slots());
        self.metrics = Some(registry);
    }

    /// Executes `order` across the pool and merges the chunk partials.
    ///
    /// The seed range is cut into chunks (adaptive sizing when any
    /// active slot is pipelined; the classic one-weighted-shard-per-
    /// slot layout otherwise), seeded to per-slot queues proportional
    /// to observed throughput, and drained by one driver per slot —
    /// pipelined slots keep a window of orders in flight on their
    /// persistent connection, and a slot whose own queue runs dry
    /// **steals** from the back of the longest remaining queue, so
    /// stragglers and mid-run failures stop gating the run. Completed
    /// chunks stream-merge through a chunk-index reorder buffer, so
    /// the merged partial is bitwise independent of scheduling,
    /// stealing, transport and retry choices. Chunks that failed in
    /// the parallel phase are retried sequentially afterwards on the
    /// other slots, with the pre-existing rotation/quarantine rules.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for an empty order; otherwise the error
    /// of the lowest-replicate chunk whose attempts were exhausted.
    pub fn run(&mut self, order: &WorkOrder) -> Result<(EnsemblePartial, RunReport), ServiceError> {
        if order.replicates == 0 {
            return Err(ServiceError::Order("replicates must be >= 1".into()));
        }
        let mut active: Vec<usize> = (0..self.slots.len())
            .filter(|&i| !self.slots[i].health.quarantined)
            .collect();
        if active.is_empty() {
            // Every slot is quarantined: lift the quarantine rather
            // than deadlock — the pool would otherwise never serve
            // again (probation: a failure re-quarantines immediately).
            for slot in &mut self.slots {
                slot.health.quarantined = false;
                slot.health.consecutive_failures = 0;
            }
            active = (0..self.slots.len()).collect();
        }
        let throughputs: Vec<Option<f64>> = active
            .iter()
            .map(|&i| self.slots[i].health.observed_throughput())
            .collect();
        let pipelined = active.iter().any(|&i| self.slots[i].transport.pipelined());
        let plan = chunk_plan(order.replicates, &throughputs, pipelined);

        // Cut the order into chunk orders (absolute seeds: chunk
        // boundaries cannot move a bit) and seed the per-slot queues.
        let mut chunks: Vec<WorkOrder> = Vec::with_capacity(plan.len());
        let mut seeded: Vec<VecDeque<usize>> = vec![VecDeque::new(); self.slots.len()];
        let mut first = order.first_replicate;
        for (index, &(size, home)) in plan.iter().enumerate() {
            let mut chunk = order.clone();
            chunk.first_replicate = first;
            chunk.replicates = size;
            first = first.wrapping_add(size);
            seeded[active[home]].push_back(index);
            chunks.push(chunk);
        }
        // Stealing only pays when chunks are finer than slots; in the
        // legacy one-chunk-per-slot layout it would just reshuffle the
        // deterministic weighted split.
        let queue = ChunkQueue::new(seeded, pipelined);

        let mut report = RunReport::new(self.slots.len());
        report.chunks = chunks.len() as u64;
        let metrics = self.metrics.clone();
        if let Some(metrics) = &metrics {
            metrics.set_pool_queue_depth(queue.depth() as u64);
        }

        // Parallel phase: one driver thread per active slot, all
        // pulling from the shared queue. Drivers own their slot's
        // transport + cached channel; health and the merge stay on
        // this thread, fed by events (per-slot event order is the
        // slot's execution order, so consecutive-failure accounting
        // matches the sequential scheduler's).
        let is_active = {
            let mut mask = vec![false; self.slots.len()];
            for &i in &active {
                mask[i] = true;
            }
            mask
        };
        let (tx, rx) = mpsc::channel::<Event>();
        let mut merged: Option<EnsemblePartial> = None;
        // `None` marks a chunk whose bits arrived inside another
        // chunk's reduced partial — the in-order merge skips it.
        let mut buffer: BTreeMap<usize, Option<EnsemblePartial>> = BTreeMap::new();
        let mut next_merge = 0usize;
        let mut merge_error: Option<ServiceError> = None;
        // (chunk index, error of the failed attempt, slot it failed on)
        let mut pending: Vec<(usize, ServiceError, usize)> = Vec::new();
        let mut slot_events: Vec<Vec<HealthEvent>> =
            (0..self.slots.len()).map(|_| Vec::new()).collect();
        let mut busy_secs: Vec<f64> = vec![0.0; self.slots.len()];
        let mut last_channel_error: Option<String> = None;

        std::thread::scope(|scope| {
            for (index, slot) in self.slots.iter_mut().enumerate() {
                if !is_active[index] {
                    continue;
                }
                let tx = tx.clone();
                let queue = &queue;
                let chunks = &chunks;
                let metrics = metrics.as_deref();
                scope.spawn(move || drive_slot(index, slot, queue, chunks, &tx, metrics));
            }
            drop(tx);
            while let Ok(event) = rx.recv() {
                match event {
                    Event::Done {
                        slot,
                        chunk,
                        elapsed_secs,
                        stolen,
                        partial,
                    } => {
                        let replicates = chunks[chunk].replicates;
                        slot_events[slot].push(HealthEvent::Success { replicates });
                        report.slot_replicates[slot] += replicates;
                        if stolen {
                            report.steals += 1;
                            if let Some(metrics) = &metrics {
                                metrics.inc_pool_steals();
                            }
                        }
                        if let Some(metrics) = &metrics {
                            metrics.observe_shard(slot, Duration::from_secs_f64(elapsed_secs));
                        }
                        buffer.insert(chunk, Some(partial));
                        drain_merges(&mut buffer, &mut next_merge, &mut merged, &mut merge_error);
                    }
                    Event::Reduced {
                        slot,
                        chunks: covered,
                        elapsed_secs,
                        stolen,
                        partial,
                    } => {
                        for &chunk in &covered {
                            let replicates = chunks[chunk].replicates;
                            slot_events[slot].push(HealthEvent::Success { replicates });
                            report.slot_replicates[slot] += replicates;
                        }
                        report.steals += stolen;
                        if let Some(metrics) = &metrics {
                            for _ in 0..stolen {
                                metrics.inc_pool_steals();
                            }
                            metrics.observe_shard(slot, Duration::from_secs_f64(elapsed_secs));
                        }
                        let mut covered = covered;
                        covered.sort_unstable();
                        let mut covered = covered.into_iter();
                        if let Some(lowest) = covered.next() {
                            buffer.insert(lowest, Some(partial));
                            for chunk in covered {
                                buffer.insert(chunk, None);
                            }
                        }
                        drain_merges(&mut buffer, &mut next_merge, &mut merged, &mut merge_error);
                    }
                    Event::ChunkFailed { slot, chunk, error } => {
                        slot_events[slot].push(HealthEvent::Failure);
                        report.worker_failures[slot] += 1;
                        pending.push((chunk, error, slot));
                    }
                    Event::ChunkLost { slot, chunk, error } => {
                        pending.push((chunk, error, slot));
                    }
                    Event::ChannelFailed { slot, error } => {
                        slot_events[slot].push(HealthEvent::Failure);
                        report.worker_failures[slot] += 1;
                        last_channel_error = Some(error.to_string());
                    }
                    Event::Drained { slot, busy } => {
                        busy_secs[slot] += busy;
                    }
                }
            }
        });

        // Apply the buffered health deltas in each slot's own event
        // order (mpsc preserves per-sender order).
        for (index, events) in slot_events.iter().enumerate() {
            for event in events {
                let health = &mut self.slots[index].health;
                match event {
                    HealthEvent::Success { replicates } => {
                        health.successes += 1;
                        health.consecutive_failures = 0;
                        health.replicates += replicates;
                    }
                    HealthEvent::Failure => {
                        health.failures += 1;
                        health.consecutive_failures += 1;
                        if health.consecutive_failures >= self.quarantine_after {
                            health.quarantined = true;
                        }
                    }
                }
            }
            self.slots[index].health.busy_secs += busy_secs[index];
        }
        if let Some(metrics) = &metrics {
            metrics.set_pool_queue_depth(0);
        }
        self.lifetime_steals += report.steals;

        // Chunks nobody attempted (every slot failed before reaching
        // them) join the retry pass with the last connection error as
        // their cause.
        for (chunk, home) in queue.drain_remaining() {
            let cause = last_channel_error
                .clone()
                .unwrap_or_else(|| "every slot stopped before this chunk ran".to_string());
            pending.push((chunk, ServiceError::Worker(cause), home));
        }

        if merge_error.is_none() {
            // Sequential retry pass, lowest replicate range first —
            // the pre-existing rotation, quarantine and accounting
            // rules apply unchanged (retries ride the one-shot
            // spawn_shard path even on pipelined transports).
            pending.sort_by_key(|&(chunk, ..)| chunk);
            let mut terminal: Option<ServiceError> = None;
            for (chunk, error, failed_slot) in pending {
                if terminal.is_some() {
                    break; // Deterministic error: the lowest failing chunk wins.
                }
                match self.retry(failed_slot, &chunks[chunk], error, &mut report) {
                    Ok(partial) => {
                        buffer.insert(chunk, Some(partial));
                    }
                    Err(err) => terminal = Some(err),
                }
            }
            merge_error = terminal;
        }

        report.quarantined_slots = (0..self.slots.len())
            .filter(|&i| self.slots[i].health.quarantined)
            .collect();
        if let Some(failure) = merge_error {
            return Err(failure);
        }
        // Finish the in-order stream merge with the retried chunks.
        while let Some(ready) = buffer.remove(&next_merge) {
            next_merge += 1;
            let Some(ready) = ready else { continue };
            match &mut merged {
                None => merged = Some(ready),
                Some(total) => total.merge(&ready).map_err(ServiceError::from)?,
            }
        }
        if next_merge < chunks.len() {
            return Err(ServiceError::Worker(format!(
                "chunk {next_merge} of {} was never completed",
                chunks.len()
            )));
        }
        let merged =
            merged.ok_or_else(|| ServiceError::Worker("no chunk produced a partial".into()))?;
        Ok((merged, report))
    }

    /// Re-issues a failed shard on the other slots, in rotation order
    /// after the failed one. Non-quarantined slots are preferred; when
    /// every other slot is quarantined (or this is a one-slot pool)
    /// the rotation falls back to all slots so the shard still gets
    /// its retry. Re-running a seed range is idempotent — replicate
    /// seeds are absolute and partials exact — so a successful retry
    /// contributes exactly the bits the failed attempt would have.
    fn retry(
        &mut self,
        failed: usize,
        shard: &WorkOrder,
        first_err: ServiceError,
        report: &mut RunReport,
    ) -> Result<EnsemblePartial, ServiceError> {
        let n = self.slots.len();
        let rotation: Vec<usize> = (1..n).map(|step| (failed + step) % n).collect();
        let mut candidates: Vec<usize> = rotation
            .iter()
            .copied()
            .filter(|&i| !self.slots[i].health.quarantined)
            .collect();
        if candidates.is_empty() {
            candidates = if rotation.is_empty() {
                vec![failed] // One-slot pool: retry once on the same slot.
            } else {
                rotation
            };
        }
        let mut last_err = first_err;
        for slot in candidates {
            let started = Instant::now();
            let attempt = self.slots[slot]
                .transport
                .spawn_shard(shard)
                .and_then(ShardHandle::join);
            match attempt {
                Ok(partial) => {
                    report.retried_shards += 1;
                    self.lifetime_retried_shards += 1;
                    self.slots[slot].health.retries += 1;
                    self.record_success(slot, shard, started.elapsed().as_secs_f64(), report);
                    return Ok(partial);
                }
                Err(retry_err) => {
                    self.record_failure(slot, report);
                    // Prefer the later error: it is the one that
                    // exhausted the shard's attempts (for deterministic
                    // failures the messages agree anyway).
                    last_err = retry_err;
                }
            }
        }
        Err(last_err)
    }

    fn record_success(
        &mut self,
        slot: usize,
        shard: &WorkOrder,
        elapsed_secs: f64,
        report: &mut RunReport,
    ) {
        let health = &mut self.slots[slot].health;
        health.successes += 1;
        health.consecutive_failures = 0;
        health.replicates += shard.replicates;
        health.busy_secs += elapsed_secs;
        report.slot_replicates[slot] += shard.replicates;
        if let Some(metrics) = &self.metrics {
            metrics.observe_shard(slot, Duration::from_secs_f64(elapsed_secs));
        }
    }

    fn record_failure(&mut self, slot: usize, report: &mut RunReport) {
        let health = &mut self.slots[slot].health;
        health.failures += 1;
        health.consecutive_failures += 1;
        if health.consecutive_failures >= self.quarantine_after {
            health.quarantined = true;
        }
        report.worker_failures[slot] += 1;
    }
}

/// Sizes `total` replicates across slots proportionally to their
/// observed throughput (largest-remainder rounding, deterministic
/// index tie-break). Slots with no history get the mean of the known
/// throughputs — a cold pool therefore degenerates to the even split
/// the original coordinator used — and weights are clamped to within
/// [`WEIGHT_CLAMP`]× of the mean so one noisy measurement cannot
/// starve a slot.
fn shard_sizes(total: u64, throughputs: &[Option<f64>]) -> Vec<u64> {
    let n = throughputs.len();
    debug_assert!(n > 0);
    let known: Vec<f64> = throughputs.iter().flatten().copied().collect();
    let mean = if known.is_empty() {
        1.0
    } else {
        known.iter().sum::<f64>() / known.len() as f64
    };
    let weights: Vec<f64> = throughputs
        .iter()
        .map(|t| {
            t.unwrap_or(mean)
                .clamp(mean / WEIGHT_CLAMP, mean * WEIGHT_CLAMP)
        })
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut sizes = vec![0u64; n];
    let mut fractions: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for (i, weight) in weights.iter().enumerate() {
        let exact = total as f64 * weight / weight_sum;
        let floor = (exact.floor() as u64).min(total);
        sizes[i] = floor;
        assigned += floor;
        fractions.push((i, exact - exact.floor()));
    }
    // Float round-off can leave the floors a few replicates short (or,
    // pathologically, long). Distribute the shortfall by largest
    // remainder; trim any excess from the tail.
    while assigned > total {
        let last = sizes.iter().rposition(|&s| s > 0).expect("assigned > 0");
        sizes[last] -= 1;
        assigned -= 1;
    }
    fractions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut remaining = total - assigned;
    let mut at = 0;
    while remaining > 0 {
        let (slot, _) = fractions[at % n];
        sizes[slot] += 1;
        remaining -= 1;
        at += 1;
    }
    sizes
}

/// Target wall-clock duration of one pipelined chunk. Small enough
/// that a straggler only gates the run by a fraction of a second,
/// large enough that framing + JSON overhead stays in the noise.
const TARGET_CHUNK_SECS: f64 = 0.15;

/// Chunk-count bounds per slot in the pipelined layout: at least 2
/// (so there is always something to steal) and at most 16 (so
/// per-chunk overhead cannot dominate a small order).
const MIN_CHUNKS_PER_SLOT: u64 = 2;
const MAX_CHUNKS_PER_SLOT: u64 = 16;

/// Cuts `total` replicates into chunks, returning `(size, home)`
/// pairs where `home` is the index into the *active slot list* whose
/// queue the chunk is seeded to. Zero-sized chunks are dropped.
///
/// Two layouts:
/// - **legacy** (`pipelined == false`): exactly the classic weighted
///   one-shard-per-slot split ([`shard_sizes`]) — one-shot transports
///   pay a spawn per chunk, so finer chunks would only add overhead,
///   and the scheduler disables stealing for this layout.
/// - **pipelined**: near-uniform chunks sized so each takes roughly
///   [`TARGET_CHUNK_SECS`] at the mean observed throughput, clamped
///   to [`MIN_CHUNKS_PER_SLOT`]..=[`MAX_CHUNKS_PER_SLOT`] chunks per
///   slot — the lower bound holds for warm pools too, so every batch
///   keeps a stealable back chunk per slot; contiguous runs of chunks
///   are homed to slots proportionally to throughput.
///
/// Chunk boundaries never move a bit of the result — replicate seeds
/// are absolute and the merge exact — so sizing only shapes latency.
fn chunk_plan(total: u64, throughputs: &[Option<f64>], pipelined: bool) -> Vec<(u64, usize)> {
    let slots = throughputs.len() as u64;
    debug_assert!(slots > 0);
    if !pipelined {
        return shard_sizes(total, throughputs)
            .into_iter()
            .enumerate()
            .filter(|&(_, size)| size > 0)
            .map(|(home, size)| (size, home))
            .collect();
    }
    let ceil_div = |a: u64, b: u64| a.div_euclid(b) + u64::from(!a.is_multiple_of(b));
    let most = ceil_div(total, slots * MIN_CHUNKS_PER_SLOT).max(1);
    let known: Vec<f64> = throughputs.iter().flatten().copied().collect();
    let target = if known.is_empty() {
        most // Cold pool: MIN_CHUNKS_PER_SLOT chunks per slot.
    } else {
        // A warm pool trusts its throughput estimate for the chunk
        // *duration*, but never cuts fewer than MIN_CHUNKS_PER_SLOT
        // chunks per slot: a batch's makespan is gated by whichever
        // slot the scheduler serves last, and with a single chunk per
        // slot a straggler holds its whole share hostage. Keeping a
        // back chunk stealable bounds that tail at half the share for
        // two extra frame round trips per slot — microseconds against
        // the tens of milliseconds of compute a share represents on
        // the slow circuits, where the one-chunk layout measurably
        // swung ensemble throughput batch to batch.
        let mean = known.iter().sum::<f64>() / known.len() as f64;
        let least = ceil_div(total, slots * MAX_CHUNKS_PER_SLOT).max(1);
        let cap = ceil_div(total, slots * MIN_CHUNKS_PER_SLOT).max(1);
        (((mean * TARGET_CHUNK_SECS).round() as u64).max(1)).clamp(least.min(cap), cap)
    };
    let count = ceil_div(total, target).max(1) as usize;
    // Even cut of replicates across chunks; weighted cut of chunks
    // across slots. Both reuse the deterministic largest-remainder
    // split.
    let sizes = shard_sizes(total, &vec![None; count]);
    let homes = shard_sizes(count as u64, throughputs);
    let mut plan = Vec::with_capacity(count);
    let mut chunk = 0usize;
    for (home, &chunks) in homes.iter().enumerate() {
        for _ in 0..chunks {
            plan.push((sizes[chunk], home));
            chunk += 1;
        }
    }
    debug_assert_eq!(chunk, count);
    plan.retain(|&(size, _)| size > 0);
    plan
}

/// The shared chunk queue: one deque of chunk indices per slot.
/// Slots pop their own queue from the front; a slot whose queue ran
/// dry steals from the *back* of the longest other queue (back-
/// stealing takes the work farthest from the victim's cursor, lowest
/// victim index breaks ties deterministically). Stealing is disabled
/// in the legacy one-chunk-per-slot layout, where it would only
/// reshuffle the deterministic weighted split.
struct ChunkQueue {
    deques: Mutex<Vec<VecDeque<usize>>>,
    allow_steal: bool,
}

impl ChunkQueue {
    fn new(seeded: Vec<VecDeque<usize>>, allow_steal: bool) -> Self {
        ChunkQueue {
            deques: Mutex::new(seeded),
            allow_steal,
        }
    }

    /// Next chunk for `slot`, with a flag marking it as stolen.
    fn pull(&self, slot: usize) -> Option<(usize, bool)> {
        let mut deques = self.deques.lock().expect("chunk queue poisoned");
        if let Some(chunk) = deques[slot].pop_front() {
            return Some((chunk, false));
        }
        if !self.allow_steal {
            return None;
        }
        let victim = deques
            .iter()
            .enumerate()
            .filter(|&(index, deque)| index != slot && !deque.is_empty())
            .min_by_key(|&(index, deque)| (std::cmp::Reverse(deque.len()), index))
            .map(|(index, _)| index)?;
        deques[victim].pop_back().map(|chunk| (chunk, true))
    }

    /// Total chunks still queued (not yet pulled by any driver).
    fn depth(&self) -> usize {
        let deques = self.deques.lock().expect("chunk queue poisoned");
        deques.iter().map(VecDeque::len).sum()
    }

    /// Drains every queued chunk as `(chunk, home slot)` — the chunks
    /// nobody reached because every driver stopped early.
    fn drain_remaining(&self) -> Vec<(usize, usize)> {
        let mut deques = self.deques.lock().expect("chunk queue poisoned");
        let mut leftover = Vec::new();
        for (slot, deque) in deques.iter_mut().enumerate() {
            while let Some(chunk) = deque.pop_front() {
                leftover.push((chunk, slot));
            }
        }
        leftover
    }
}

/// Advances the in-order stream merge over the reorder buffer: merges
/// every contiguous ready chunk into the running total, skipping
/// `None` tombstones (chunks whose bits arrived inside a reduced
/// partial merged at a lower index). The first merge failure is
/// latched into `merge_error`.
fn drain_merges(
    buffer: &mut BTreeMap<usize, Option<EnsemblePartial>>,
    next_merge: &mut usize,
    merged: &mut Option<EnsemblePartial>,
    merge_error: &mut Option<ServiceError>,
) {
    while let Some(ready) = buffer.remove(&*next_merge) {
        *next_merge += 1;
        let Some(ready) = ready else { continue };
        let outcome = match merged {
            None => {
                *merged = Some(ready);
                Ok(())
            }
            Some(total) => total.merge(&ready).map_err(ServiceError::from),
        };
        if let Err(err) = outcome {
            if merge_error.is_none() {
                *merge_error = Some(err);
            }
        }
    }
}

/// What a slot driver tells the scheduler thread. Per-slot event
/// order is the slot's execution order (mpsc preserves per-sender
/// FIFO), which is what the health accounting relies on.
enum Event {
    /// A chunk completed with a validated partial.
    Done {
        slot: usize,
        chunk: usize,
        elapsed_secs: f64,
        stolen: bool,
        partial: EnsemblePartial,
    },
    /// A reducing relay completed several chunks as one merged
    /// partial: `chunks` lists every covered chunk index. Merging the
    /// one partial at the lowest covered index is bitwise equivalent
    /// to merging the per-chunk partials in index order —
    /// `EnsemblePartial::merge` is associative *and* commutative at
    /// the bit level (the exact accumulators make it so), which is
    /// precisely what lets the relay pre-merge at all.
    Reduced {
        slot: usize,
        chunks: Vec<usize>,
        elapsed_secs: f64,
        stolen: u64,
        partial: EnsemblePartial,
    },
    /// One chunk failed. Counts one slot failure; the chunk joins the
    /// sequential retry pass.
    ChunkFailed {
        slot: usize,
        chunk: usize,
        error: ServiceError,
    },
    /// A chunk was in flight when its connection broke. The breakage
    /// is counted once (by its `ChunkFailed` or `ChannelFailed`
    /// sibling); this chunk just needs retrying.
    ChunkLost {
        slot: usize,
        chunk: usize,
        error: ServiceError,
    },
    /// The connection failed before any chunk could be charged for it
    /// (e.g. a failed frame handshake). Counts one slot failure; the
    /// slot's unpulled chunks stay in the queue for stealing/retry.
    ChannelFailed { slot: usize, error: ServiceError },
    /// The driver exited; `busy` is the union of its busy windows
    /// (time with >= 1 order in flight), which keeps
    /// [`SlotHealth::observed_throughput`] honest under pipelining —
    /// summing per-chunk latencies would double-count overlap.
    Drained { slot: usize, busy: f64 },
}

/// Buffered health delta, applied on the scheduler thread after the
/// drivers join (the slots are mutably borrowed while they run).
enum HealthEvent {
    Success { replicates: u64 },
    Failure,
}

/// A driver's execution vehicle: the transport's persistent pipelined
/// channel, or the one-shot `spawn_shard` path behind the same
/// submit/recv shape (window 1, spawn errors surfaced as inner chunk
/// failures — one-shot transports have no connection to break).
enum DriverChan<'a> {
    Pipelined(Box<dyn ChunkChannel>),
    OneShot {
        transport: &'a dyn Transport,
        pending: Option<(u64, Result<ShardHandle, ServiceError>)>,
    },
}

impl DriverChan<'_> {
    fn window(&self) -> usize {
        match self {
            DriverChan::Pipelined(channel) => channel.window().max(1),
            DriverChan::OneShot { .. } => 1,
        }
    }

    fn submit(&mut self, id: u64, order: &WorkOrder) -> Result<(), ServiceError> {
        match self {
            DriverChan::Pipelined(channel) => channel.submit(id, order),
            DriverChan::OneShot { transport, pending } => {
                debug_assert!(pending.is_none());
                *pending = Some((id, transport.spawn_shard(order)));
                Ok(())
            }
        }
    }

    fn recv(&mut self) -> Result<(u64, ChunkReply), ServiceError> {
        match self {
            DriverChan::Pipelined(channel) => channel.recv(),
            DriverChan::OneShot { pending, .. } => {
                let (id, spawned) = pending.take().expect("recv without a submitted order");
                Ok((id, ChunkReply::Done(spawned.and_then(ShardHandle::join))))
            }
        }
    }
}

/// Poisons a driver's connection: charges `error` to one outstanding
/// chunk (or to the channel when nothing is outstanding) and reports
/// every other outstanding chunk — in flight, deferred, or already
/// resolved from an untrusted reply — as lost for the retry pass.
fn poison_connection(
    index: usize,
    tx: &mpsc::Sender<Event>,
    inflight: &mut VecDeque<(usize, Instant, bool)>,
    deferred: &mut Vec<(usize, Instant, bool)>,
    already_resolved: Vec<usize>,
    error: ServiceError,
) {
    let lost_error =
        || ServiceError::Worker("the connection failed with this chunk in flight".into());
    let mut outstanding = already_resolved;
    outstanding.extend(inflight.drain(..).map(|(chunk, ..)| chunk));
    outstanding.extend(deferred.drain(..).map(|(chunk, ..)| chunk));
    let mut rest = outstanding.into_iter();
    match rest.next() {
        Some(chunk) => {
            let _ = tx.send(Event::ChunkFailed {
                slot: index,
                chunk,
                error,
            });
        }
        None => {
            let _ = tx.send(Event::ChannelFailed { slot: index, error });
        }
    }
    for chunk in rest {
        let _ = tx.send(Event::ChunkLost {
            slot: index,
            chunk,
            error: lost_error(),
        });
    }
}

/// Drives one slot: pulls chunks (own queue first, then steals),
/// keeps up to `window` orders in flight on the slot's channel, and
/// streams [`Event`]s back to the scheduler. After any failure the
/// driver stops pulling new chunks but still drains healthy in-flight
/// orders; a connection-level failure loses every in-flight order
/// (first charged as the failure, the rest merely lost) and drops the
/// channel so the next run reopens it. A healthy pipelined channel is
/// cached back into the slot at exit — connection reuse across runs
/// is most of what pipelining buys.
fn drive_slot(
    index: usize,
    slot: &mut PoolSlot,
    queue: &ChunkQueue,
    chunks: &[WorkOrder],
    tx: &mpsc::Sender<Event>,
    metrics: Option<&MetricsRegistry>,
) {
    let PoolSlot {
        transport, channel, ..
    } = slot;
    let mut chan = match channel.take() {
        Some(cached) => DriverChan::Pipelined(cached),
        None => match transport.open_channel() {
            Ok(Some(opened)) => DriverChan::Pipelined(opened),
            Ok(None) => DriverChan::OneShot {
                transport: &**transport,
                pending: None,
            },
            Err(error) => {
                let _ = tx.send(Event::ChannelFailed { slot: index, error });
                let _ = tx.send(Event::Drained {
                    slot: index,
                    busy: 0.0,
                });
                return;
            }
        },
    };
    let window = chan.window();
    // In-flight orders: (chunk index, submit time, stolen flag).
    let mut inflight: VecDeque<(usize, Instant, bool)> = VecDeque::new();
    // Chunks a reducing relay acknowledged as absorbed: they no longer
    // occupy the window, but stay pending until a Reduced reply covers
    // them (and are lost with the connection otherwise).
    let mut deferred: Vec<(usize, Instant, bool)> = Vec::new();
    let mut busy = 0.0f64;
    let mut window_started: Option<Instant> = None;
    let mut failed = false;
    let mut broken = false;
    let lost_error =
        || ServiceError::Worker("the connection failed with this chunk in flight".into());

    loop {
        while !failed && inflight.len() < window {
            let Some((chunk, stolen)) = queue.pull(index) else {
                break;
            };
            if let Some(metrics) = metrics {
                metrics.set_pool_queue_depth(queue.depth() as u64);
            }
            if inflight.is_empty() && window_started.is_none() {
                window_started = Some(Instant::now());
            }
            match chan.submit(chunk as u64, &chunks[chunk]) {
                Ok(()) => {
                    inflight.push_back((chunk, Instant::now(), stolen));
                    if let Some(metrics) = metrics {
                        metrics.set_slot_inflight(index, inflight.len() as u64);
                    }
                }
                Err(error) => {
                    // Connection broken mid-submit: this chunk takes
                    // the failure, everything already in flight or
                    // deferred is lost with it.
                    failed = true;
                    broken = true;
                    let _ = tx.send(Event::ChunkFailed {
                        slot: index,
                        chunk,
                        error,
                    });
                    for (lost, ..) in inflight.drain(..).chain(deferred.drain(..)) {
                        let _ = tx.send(Event::ChunkLost {
                            slot: index,
                            chunk: lost,
                            error: lost_error(),
                        });
                    }
                }
            }
        }
        if inflight.is_empty() && deferred.is_empty() {
            // The fill loop found the queue dry (it only ever shrinks)
            // or a failure emptied the window: this driver is done.
            if let Some(started) = window_started.take() {
                busy += started.elapsed().as_secs_f64();
            }
            break;
        }
        match chan.recv() {
            Ok((id, ChunkReply::Done(outcome))) => {
                let Some(position) = inflight.iter().position(|&(chunk, ..)| chunk as u64 == id)
                else {
                    // An uncorrelatable reply: the stream can no
                    // longer be trusted. Treat it as a broken
                    // connection.
                    failed = true;
                    broken = true;
                    poison_connection(
                        index,
                        tx,
                        &mut inflight,
                        &mut deferred,
                        Vec::new(),
                        ServiceError::Protocol(format!("reply id {id} matches no in-flight chunk")),
                    );
                    continue;
                };
                let (chunk, started, stolen) =
                    inflight.remove(position).expect("position is in range");
                if let Some(metrics) = metrics {
                    metrics.set_slot_inflight(index, inflight.len() as u64);
                }
                if inflight.is_empty() && deferred.is_empty() {
                    if let Some(started) = window_started.take() {
                        busy += started.elapsed().as_secs_f64();
                    }
                }
                match outcome {
                    Ok(partial) => {
                        let _ = tx.send(Event::Done {
                            slot: index,
                            chunk,
                            elapsed_secs: started.elapsed().as_secs_f64(),
                            stolen,
                            partial,
                        });
                    }
                    Err(error) => {
                        // One chunk failed; the connection is fine.
                        // Stop pulling new work, drain the rest.
                        failed = true;
                        let _ = tx.send(Event::ChunkFailed {
                            slot: index,
                            chunk,
                            error,
                        });
                    }
                }
            }
            Ok((id, ChunkReply::Deferred { .. })) => {
                let Some(position) = inflight.iter().position(|&(chunk, ..)| chunk as u64 == id)
                else {
                    failed = true;
                    broken = true;
                    poison_connection(
                        index,
                        tx,
                        &mut inflight,
                        &mut deferred,
                        Vec::new(),
                        ServiceError::Protocol(format!(
                            "deferred receipt id {id} matches no in-flight chunk"
                        )),
                    );
                    continue;
                };
                // The chunk leaves the window (the relay holds its
                // bits now) but stays pending until a Reduced reply
                // covers it.
                let entry = inflight.remove(position).expect("position is in range");
                deferred.push(entry);
                if let Some(metrics) = metrics {
                    metrics.set_slot_inflight(index, inflight.len() as u64);
                }
            }
            Ok((
                id,
                ChunkReply::Reduced {
                    also_covers,
                    partial,
                },
            )) => {
                let mut ids = Vec::with_capacity(also_covers.len() + 1);
                ids.push(id);
                ids.extend(also_covers);
                let mut covered = Vec::with_capacity(ids.len());
                let mut earliest: Option<Instant> = None;
                let mut stolen = 0u64;
                let mut unknown = None;
                for cid in ids {
                    let entry = inflight
                        .iter()
                        .position(|&(chunk, ..)| chunk as u64 == cid)
                        .map(|p| inflight.remove(p).expect("position is in range"))
                        .or_else(|| {
                            deferred
                                .iter()
                                .position(|&(chunk, ..)| chunk as u64 == cid)
                                .map(|p| deferred.remove(p))
                        });
                    match entry {
                        Some((chunk, started, was_stolen)) => {
                            covered.push(chunk);
                            stolen += u64::from(was_stolen);
                            earliest = Some(match earliest {
                                Some(at) if at <= started => at,
                                _ => started,
                            });
                        }
                        None => {
                            unknown = Some(cid);
                            break;
                        }
                    }
                }
                if let Some(cid) = unknown {
                    // Coverage of an id we never sent (or covered
                    // twice): the stream — and the chunks this reply
                    // claimed — can no longer be trusted.
                    failed = true;
                    broken = true;
                    poison_connection(
                        index,
                        tx,
                        &mut inflight,
                        &mut deferred,
                        covered,
                        ServiceError::Protocol(format!(
                            "reduced reply covers unknown chunk id {cid}"
                        )),
                    );
                    continue;
                }
                if let Some(metrics) = metrics {
                    metrics.set_slot_inflight(index, inflight.len() as u64);
                }
                if inflight.is_empty() && deferred.is_empty() {
                    if let Some(started) = window_started.take() {
                        busy += started.elapsed().as_secs_f64();
                    }
                }
                let _ = tx.send(Event::Reduced {
                    slot: index,
                    chunks: covered,
                    elapsed_secs: earliest.map_or(0.0, |at| at.elapsed().as_secs_f64()),
                    stolen,
                    partial,
                });
            }
            Err(error) => {
                failed = true;
                broken = true;
                if let Some(started) = window_started.take() {
                    busy += started.elapsed().as_secs_f64();
                }
                poison_connection(index, tx, &mut inflight, &mut deferred, Vec::new(), error);
            }
        }
    }

    if !broken {
        if let DriverChan::Pipelined(healthy) = chan {
            *channel = Some(healthy);
        }
    }
    if let Some(metrics) = metrics {
        metrics.set_slot_inflight(index, 0);
    }
    let _ = tx.send(Event::Drained { slot: index, busy });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pools_split_evenly_like_the_old_coordinator() {
        assert_eq!(shard_sizes(10, &[None, None]), vec![5, 5]);
        assert_eq!(shard_sizes(11, &[None, None, None]), vec![4, 4, 3]);
        assert_eq!(shard_sizes(2, &[None, None, None]), vec![1, 1, 0]);
        assert_eq!(shard_sizes(1, &[None]), vec![1]);
    }

    #[test]
    fn shard_sizes_follow_observed_throughput() {
        // A slot measured 3x faster gets ~3x the replicates.
        let sizes = shard_sizes(100, &[Some(300.0), Some(100.0)]);
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        assert!(sizes[0] > sizes[1], "{sizes:?}");
        assert!((70..=80).contains(&sizes[0]), "{sizes:?}");
        // Unknown slots get the mean weight.
        let sizes = shard_sizes(90, &[Some(200.0), None, Some(100.0)]);
        assert_eq!(sizes.iter().sum::<u64>(), 90);
        assert!(sizes[0] > sizes[2], "{sizes:?}");
        assert!(sizes[1] > sizes[2] && sizes[1] < sizes[0], "{sizes:?}");
    }

    #[test]
    fn extreme_throughput_ratios_are_clamped() {
        // A glitchy measurement cannot starve a slot to zero when the
        // batch is large enough for the clamp to bite.
        let sizes = shard_sizes(1000, &[Some(1.0), Some(1_000_000.0)]);
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert!(sizes[0] > 0, "{sizes:?}");
    }

    #[test]
    fn every_total_is_preserved() {
        for total in [1u64, 2, 3, 7, 97, 192] {
            for weights in [
                vec![None, None],
                vec![Some(10.0), Some(20.0), Some(30.0)],
                vec![Some(5.0)],
                vec![None, Some(50.0), None, Some(0.5)],
            ] {
                let sizes = shard_sizes(total, &weights);
                assert_eq!(sizes.iter().sum::<u64>(), total, "{total} over {weights:?}");
            }
        }
    }

    #[test]
    fn legacy_chunk_plans_are_the_weighted_split() {
        // Non-pipelined pools keep the classic one-chunk-per-slot
        // layout (zero-sized shards dropped), so every pinned
        // assertion about the weighted split still holds.
        assert_eq!(chunk_plan(10, &[None, None], false), vec![(5, 0), (5, 1)]);
        assert_eq!(
            chunk_plan(2, &[None, None, None], false),
            vec![(1, 0), (1, 1)]
        );
        let weighted = chunk_plan(100, &[Some(300.0), Some(100.0)], false);
        let sizes = shard_sizes(100, &[Some(300.0), Some(100.0)]);
        assert_eq!(weighted, vec![(sizes[0], 0), (sizes[1], 1)]);
    }

    #[test]
    fn cold_pipelined_pools_cut_min_chunks_per_slot() {
        let plan = chunk_plan(20, &[None, None], true);
        assert_eq!(plan.len() as u64, 2 * MIN_CHUNKS_PER_SLOT);
        assert_eq!(plan.iter().map(|&(size, _)| size).sum::<u64>(), 20);
        // Homes are contiguous and cover both slots evenly.
        assert_eq!(
            plan.iter().map(|&(_, home)| home).collect::<Vec<_>>(),
            vec![0, 0, 1, 1]
        );
    }

    #[test]
    fn warm_pipelined_pools_target_chunk_seconds_within_clamps() {
        // 100 replicates/s mean throughput -> ~15-replicate chunks.
        let plan = chunk_plan(600, &[Some(100.0), Some(100.0)], true);
        assert_eq!(plan.iter().map(|&(size, _)| size).sum::<u64>(), 600);
        let chunks = plan.len() as u64;
        assert!((30..=45).contains(&chunks), "{chunks} chunks: {plan:?}");
        // ...but never more than MAX_CHUNKS_PER_SLOT per slot...
        let plan = chunk_plan(600, &[Some(1.0), Some(1.0)], true);
        assert!(
            plan.len() as u64 <= 2 * MAX_CHUNKS_PER_SLOT,
            "{} chunks",
            plan.len()
        );
        // ...and even when each slot's whole share fits inside the
        // time target, a warm pool still cuts MIN_CHUNKS_PER_SLOT
        // chunks per slot: the back chunks stay stealable, so a slot
        // the scheduler starves cannot hold its entire share hostage.
        let plan = chunk_plan(20, &[Some(1_000_000.0), Some(1_000_000.0)], true);
        assert_eq!(plan, vec![(5, 0), (5, 0), (5, 1), (5, 1)]);
    }

    #[test]
    fn tiny_pipelined_orders_drop_empty_chunks() {
        // 3 replicates over 2 slots wanting 4 chunks: one chunk is
        // empty and must vanish, totals preserved.
        let plan = chunk_plan(3, &[None, None], true);
        assert_eq!(plan.iter().map(|&(size, _)| size).sum::<u64>(), 3);
        assert!(plan.iter().all(|&(size, _)| size > 0), "{plan:?}");
        let plan = chunk_plan(1, &[None, None, None], true);
        assert_eq!(plan, vec![(1, 0)]);
    }

    #[test]
    fn chunk_queues_steal_from_the_back_of_the_longest_deque() {
        let seeded = vec![
            VecDeque::from(vec![0usize]),
            VecDeque::from(vec![1, 2, 3]),
            VecDeque::from(vec![4, 5]),
        ];
        let queue = ChunkQueue::new(seeded, true);
        assert_eq!(queue.depth(), 6);
        // Own work first, front-out.
        assert_eq!(queue.pull(0), Some((0, false)));
        // Then steal from the back of the longest other deque; on a
        // length tie the lowest victim index wins deterministically.
        assert_eq!(queue.pull(0), Some((3, true))); // deque 1 longest
        assert_eq!(queue.pull(0), Some((2, true))); // tie at 2: deque 1
        assert_eq!(queue.pull(0), Some((5, true))); // deque 2 longest
        assert_eq!(queue.pull(0), Some((1, true))); // tie at 1: deque 1
        assert_eq!(queue.pull(2), Some((4, false)));
        assert_eq!(queue.pull(0), None);
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn chunk_queues_never_steal_in_the_legacy_layout() {
        let seeded = vec![VecDeque::new(), VecDeque::from(vec![7usize])];
        let queue = ChunkQueue::new(seeded, false);
        assert_eq!(queue.pull(0), None);
        assert_eq!(queue.pull(1), Some((7, false)));
        // Whatever is left when the drivers stop is drained with its
        // home slot for the retry pass.
        let queue = ChunkQueue::new(vec![VecDeque::from(vec![1usize, 2])], false);
        assert_eq!(queue.drain_remaining(), vec![(1, 0), (2, 0)]);
    }
}
