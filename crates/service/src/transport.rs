//! Transport-abstracted worker fabric: *where* a shard runs, and the
//! health-aware scheduler that decides *which* worker runs it.
//!
//! The original [`crate::Coordinator`] was hard-wired to local
//! `std::process` children with a fixed even split and a single retry.
//! This module factors that into two seams the ROADMAP called for:
//!
//! * [`Transport`] — one method, [`Transport::spawn_shard`]: begin
//!   executing a [`WorkOrder`] somewhere and hand back a
//!   [`ShardHandle`] that joins to its [`EnsemblePartial`]. Three
//!   implementations ship:
//!   - [`InProcess`] — a thread of this process (no serialization, no
//!     process cost; the baseline every other transport is measured
//!     against);
//!   - [`ChildProcess`] — a `glc-worker` child over pipes (the
//!     original coordinator path, extracted verbatim);
//!   - [`TcpRelay`] — a TCP connection to a `glc-relay` process,
//!     which may live on another host: the order travels as one
//!     newline-framed JSON value, the reply as a [`RelayReply`]
//!     frame. One `glc-serve` can therefore front workers on other
//!     machines.
//! * [`WorkerPool`] — a scheduler over one transport per **slot**. It
//!   sizes shards by each slot's observed replicate throughput
//!   (unknown slots get the mean weight, so a cold pool degenerates to
//!   the old even split), retries a failed shard on the other slots,
//!   and **quarantines** a slot after `quarantine_after` consecutive
//!   failures — quarantined slots get no shards and serve no retries
//!   until every slot is quarantined, at which point the pool lifts
//!   the quarantine (probation) rather than deadlock. Health persists
//!   across [`WorkerPool::run`] calls, so a resident `glc-serve`
//!   accumulates it over the session's lifetime.
//!
//! # Determinism
//!
//! None of this moves a single bit: replicate seeds are absolute and
//! partial accumulation is exact, so shard sizing, retries, transport
//! choice and quarantine decisions affect *latency only*. The
//! transport-equivalence tests pin `TcpRelay` ≡ `ChildProcess` ≡
//! [`InProcess`] ≡ unsharded, bitwise, and a pool with an
//! always-failing slot still completes with the correct bits while
//! reporting the quarantine in [`RunReport`].

use crate::metrics::MetricsRegistry;
use crate::{RunReport, ServiceError, WorkOrder};
use glc_ssa::EnsemblePartial;
use serde::{Deserialize, Serialize};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a shard of ensemble work executes.
///
/// A transport is cheap to construct and stateless: spawning hands the
/// order over (thread, child stdin, or TCP frame) and returns
/// immediately, so a scheduler can put many shards in flight before
/// joining any of them. All partials returned by
/// [`ShardHandle::join`] are structurally validated
/// (`EnsemblePartial::validate`) before they are trusted.
pub trait Transport: Send {
    /// Begins executing `order`, returning a handle that joins to the
    /// shard's partial.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Worker`] when the execution vehicle cannot be
    /// started (missing binary, unreachable relay), and
    /// [`ServiceError::Protocol`] when the order cannot be encoded.
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError>;

    /// A human-readable description of this transport, for reports and
    /// logs (e.g. `child-process target/release/glc-worker`).
    fn describe(&self) -> String;
}

/// An in-flight shard: join it to get the partial.
pub struct ShardHandle {
    inner: HandleKind,
}

enum HandleKind {
    Thread(std::thread::JoinHandle<Result<EnsemblePartial, ServiceError>>),
    Child {
        child: Child,
        first_replicate: u64,
    },
    Relay {
        stream: TcpStream,
        addr: String,
        first_replicate: u64,
    },
}

impl ShardHandle {
    /// Waits for the shard and returns its validated partial.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Worker`] for execution failures (child exit
    /// status, relay-reported errors, a panicked in-process shard) and
    /// [`ServiceError::Protocol`] for undecodable or structurally
    /// invalid replies.
    pub fn join(self) -> Result<EnsemblePartial, ServiceError> {
        let partial = match self.inner {
            HandleKind::Thread(handle) => handle
                .join()
                .map_err(|_| ServiceError::Worker("in-process shard panicked".into()))??,
            HandleKind::Child {
                child,
                first_replicate,
            } => collect_child(child, first_replicate)?,
            HandleKind::Relay {
                stream,
                addr,
                first_replicate,
            } => collect_relay(stream, &addr, first_replicate)?,
        };
        // Every reply crosses a trust boundary (JSON from a child or a
        // socket); the in-process path pays the same cheap check for
        // uniformity.
        partial.validate().map_err(|e| {
            ServiceError::Protocol(format!("shard returned an invalid partial: {e}"))
        })?;
        Ok(partial)
    }

    /// Abandons the shard without collecting it (cleanup after a
    /// terminal failure elsewhere): children are killed and reaped,
    /// relay connections are dropped. In-process threads have no
    /// cancellation mechanism — they detach and run their shard to
    /// completion in the background, their result discarded — so an
    /// abandoned [`InProcess`] shard costs CPU until it finishes (a
    /// rare error-path cost; the common failure vehicles are the
    /// killable ones).
    fn abandon(self) {
        match self.inner {
            HandleKind::Thread(_) => {} // Detaches; the thread finishes and is discarded.
            HandleKind::Child { mut child, .. } => {
                let _ = child.kill();
                let _ = child.wait();
            }
            HandleKind::Relay { stream, .. } => drop(stream),
        }
    }
}

/// Runs shards on threads of the calling process — the zero-overhead
/// baseline transport (no serialization, no spawn cost).
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl Transport for InProcess {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError> {
        let order = order.clone();
        Ok(ShardHandle {
            inner: HandleKind::Thread(std::thread::spawn(move || order.execute())),
        })
    }

    fn describe(&self) -> String {
        "in-process".into()
    }
}

/// Runs shards as `glc-worker` children of this process — the original
/// coordinator path, extracted: the order goes down the child's stdin,
/// the partial comes back on its stdout.
#[derive(Debug, Clone)]
pub struct ChildProcess {
    worker: PathBuf,
}

impl ChildProcess {
    /// A transport spawning children of the worker binary at `worker`.
    pub fn new(worker: impl Into<PathBuf>) -> Self {
        ChildProcess {
            worker: worker.into(),
        }
    }
}

impl Transport for ChildProcess {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError> {
        let mut child = Command::new(&self.worker)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| {
                ServiceError::Worker(format!("cannot spawn {}: {e}", self.worker.display()))
            })?;
        let payload =
            serde_json::to_string(order).map_err(|e| ServiceError::Protocol(e.to_string()));
        let written = payload.and_then(|payload| {
            let mut stdin = child.stdin.take().expect("stdin piped");
            stdin
                .write_all(payload.as_bytes())
                .map_err(|e| ServiceError::Worker(format!("writing work order: {e}")))
            // Dropping stdin here sends EOF: the order is complete.
        });
        if let Err(err) = written {
            let _ = child.kill();
            let _ = child.wait();
            return Err(err);
        }
        Ok(ShardHandle {
            inner: HandleKind::Child {
                child,
                first_replicate: order.first_replicate,
            },
        })
    }

    fn describe(&self) -> String {
        format!("child-process {}", self.worker.display())
    }
}

/// Runs shards over TCP against a `glc-relay` process — potentially on
/// another host. One connection per shard: the order goes out as a
/// newline-framed JSON value, the [`RelayReply`] frame comes back when
/// the relay finishes. Concurrency comes from the relay serving each
/// connection on its own thread, so a pool of several `TcpRelay` slots
/// pointed at one relay runs its shards in parallel over there.
#[derive(Debug, Clone)]
pub struct TcpRelay {
    addr: String,
}

impl TcpRelay {
    /// A transport dialing the relay at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        TcpRelay { addr: addr.into() }
    }

    /// The relay address this transport dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Transport for TcpRelay {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<ShardHandle, ServiceError> {
        let mut stream = TcpStream::connect(&self.addr).map_err(|e| {
            ServiceError::Worker(format!("cannot connect to relay {}: {e}", self.addr))
        })?;
        let mut payload =
            serde_json::to_string(order).map_err(|e| ServiceError::Protocol(e.to_string()))?;
        payload.push('\n');
        stream
            .write_all(payload.as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| {
                ServiceError::Worker(format!("writing work order to relay {}: {e}", self.addr))
            })?;
        Ok(ShardHandle {
            inner: HandleKind::Relay {
                stream,
                addr: self.addr.clone(),
                first_replicate: order.first_replicate,
            },
        })
    }

    fn describe(&self) -> String {
        format!("tcp-relay {}", self.addr)
    }
}

/// One reply frame of the `glc-relay` wire protocol: the shard's
/// partial, or the error that stopped it (the relay stays up either
/// way — a failed order poisons nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RelayReply {
    /// The shard completed; here is its aggregate.
    Partial(EnsemblePartial),
    /// The shard failed with this message.
    Error(String),
}

/// Reaps a worker child's output: waits, checks the exit status, and
/// decodes the partial.
fn collect_child(child: Child, first_replicate: u64) -> Result<EnsemblePartial, ServiceError> {
    let output = child
        .wait_with_output()
        .map_err(|e| ServiceError::Worker(format!("waiting for worker: {e}")))?;
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        return Err(ServiceError::Worker(format!(
            "shard at replicate {} exited with {}: {}",
            first_replicate,
            output.status,
            stderr.trim()
        )));
    }
    let text = String::from_utf8(output.stdout)
        .map_err(|e| ServiceError::Protocol(format!("worker output not UTF-8: {e}")))?;
    serde_json::from_str(text.trim())
        .map_err(|e| ServiceError::Protocol(format!("undecodable partial: {e}")))
}

/// Reads and decodes the relay's one reply frame for a shard.
fn collect_relay(
    stream: TcpStream,
    addr: &str,
    first_replicate: u64,
) -> Result<EnsemblePartial, ServiceError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ServiceError::Worker(format!("reading relay {addr} reply: {e}")))?;
    if line.trim().is_empty() {
        return Err(ServiceError::Worker(format!(
            "relay {addr} closed the connection without a reply \
             (shard at replicate {first_replicate})"
        )));
    }
    match serde_json::from_str::<RelayReply>(line.trim()) {
        Ok(RelayReply::Partial(partial)) => Ok(partial),
        Ok(RelayReply::Error(message)) => Err(ServiceError::Worker(format!(
            "relay {addr}: shard at replicate {first_replicate} failed: {message}"
        ))),
        Err(e) => Err(ServiceError::Protocol(format!(
            "undecodable relay reply: {e}"
        ))),
    }
}

/// Health accounting of one worker-pool slot, accumulated across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SlotHealth {
    /// Shards this slot completed successfully.
    pub successes: u64,
    /// Shard attempts that failed on this slot (first attempts and
    /// retries both count against the slot they ran on).
    pub failures: u64,
    /// Failures since the last success — the quarantine trigger.
    pub consecutive_failures: u64,
    /// Replicates this slot contributed to merged aggregates.
    pub replicates: u64,
    /// Shards this slot served as the *successful retry* of another
    /// slot's failure — a lifetime total, never reset by a run (unlike
    /// [`RunReport::retried_shards`], which is per-run).
    pub retries: u64,
    /// Wall-clock seconds this slot spent on successful shards
    /// (spawn-to-join; the denominator of the throughput estimate).
    pub busy_secs: f64,
    /// Whether the slot is currently quarantined (no shards, no
    /// retries) by the pool's health policy.
    pub quarantined: bool,
}

impl SlotHealth {
    /// Observed replicate throughput (replicates per second), once the
    /// slot has completed at least one shard.
    pub fn observed_throughput(&self) -> Option<f64> {
        (self.replicates > 0 && self.busy_secs > 0.0)
            .then(|| self.replicates as f64 / self.busy_secs)
    }
}

/// The durable form of a [`WorkerPool`]'s health: what
/// `<spill-dir>/pool_health.json` holds so a restarted `glc-serve`
/// does not forget a quarantined host or its lifetime retry totals.
///
/// Slots are recorded by transport *description* rather than index, so
/// a restart that reorders the `--relay`/`--worker-slot` flags (or
/// drops a slot) still restores health to the slots that mean the same
/// thing; see [`WorkerPool::restore_health`] for the matching rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PoolHealthSnapshot {
    /// Lifetime count of shards that failed and succeeded on a retry.
    pub retried_shards: u64,
    /// Every slot's health, labeled by its transport description.
    pub slots: Vec<SlotHealthRecord>,
}

/// One slot's entry in a [`PoolHealthSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotHealthRecord {
    /// The slot's [`Transport::describe`] string at snapshot time.
    pub transport: String,
    /// The slot's health at snapshot time.
    pub health: SlotHealth,
}

/// Default consecutive-failure count that quarantines a slot.
const DEFAULT_QUARANTINE_AFTER: u64 = 3;

/// Throughput weights are clamped to within this factor of the pool
/// mean, so one noisy measurement cannot starve (or flood) a slot.
const WEIGHT_CLAMP: f64 = 8.0;

struct PoolSlot {
    transport: Box<dyn Transport>,
    health: SlotHealth,
}

/// A health-aware scheduler over one [`Transport`] per slot.
///
/// Replaces the fixed even-split + single-retry logic that used to
/// live in `Coordinator::run_with_report`: shards are sized by each
/// slot's observed throughput, a failed shard is retried on the other
/// (non-quarantined) slots, and slots that fail
/// `quarantine_after` times in a row are quarantined until the pool
/// would otherwise be empty. Health persists across
/// [`WorkerPool::run`] calls; none of it affects the merged bits (see
/// the module docs).
pub struct WorkerPool {
    slots: Vec<PoolSlot>,
    quarantine_after: u64,
    /// Lifetime total of shards retried successfully — accumulated
    /// across [`WorkerPool::run`] calls, where [`RunReport`] resets
    /// per run (the fix this field exists for).
    lifetime_retried_shards: u64,
    /// Shard-latency sink, when a registry is attached: each slot's
    /// successful spawn-to-join time lands in its histogram.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl WorkerPool {
    /// A pool with one slot per transport.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for an empty transport list.
    pub fn new(transports: Vec<Box<dyn Transport>>) -> Result<Self, ServiceError> {
        if transports.is_empty() {
            return Err(ServiceError::Order(
                "worker pool needs at least one transport".into(),
            ));
        }
        Ok(WorkerPool {
            slots: transports
                .into_iter()
                .map(|transport| PoolSlot {
                    transport,
                    health: SlotHealth::default(),
                })
                .collect(),
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            lifetime_retried_shards: 0,
            metrics: None,
        })
    }

    /// Sets the consecutive-failure count that quarantines a slot
    /// (default 3).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for zero (a slot must be allowed at
    /// least one failure).
    pub fn with_quarantine_after(mut self, failures: u64) -> Result<Self, ServiceError> {
        if failures == 0 {
            return Err(ServiceError::Order("quarantine_after must be >= 1".into()));
        }
        self.quarantine_after = failures;
        Ok(self)
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// A snapshot of every slot's health.
    pub fn health(&self) -> Vec<SlotHealth> {
        self.slots.iter().map(|slot| slot.health.clone()).collect()
    }

    /// Every slot's transport description, in slot order.
    pub fn describe_slots(&self) -> Vec<String> {
        self.slots
            .iter()
            .map(|slot| slot.transport.describe())
            .collect()
    }

    /// Lifetime total of shards that failed and succeeded on a retry,
    /// accumulated across every [`WorkerPool::run`] of this pool
    /// (contrast [`RunReport::retried_shards`], which resets per run).
    pub fn lifetime_retried_shards(&self) -> u64 {
        self.lifetime_retried_shards
    }

    /// The pool's durable health: every slot's accounting plus the
    /// lifetime retry total, in the `pool_health.json` shape.
    pub fn health_snapshot(&self) -> PoolHealthSnapshot {
        PoolHealthSnapshot {
            retried_shards: self.lifetime_retried_shards,
            slots: self
                .slots
                .iter()
                .map(|slot| SlotHealthRecord {
                    transport: slot.transport.describe(),
                    health: slot.health.clone(),
                })
                .collect(),
        }
    }

    /// Restores slot health from a persisted snapshot: each slot takes
    /// the first not-yet-consumed record with its transport
    /// description (so two `--workers` slots of the same binary each
    /// get one record, and a record for a transport no longer in the
    /// pool is dropped). Slots without a matching record keep their
    /// fresh health.
    pub fn restore_health(&mut self, snapshot: &PoolHealthSnapshot) {
        let mut consumed = vec![false; snapshot.slots.len()];
        for slot in &mut self.slots {
            let description = slot.transport.describe();
            let matched = snapshot
                .slots
                .iter()
                .enumerate()
                .position(|(i, record)| !consumed[i] && record.transport == description);
            if let Some(i) = matched {
                consumed[i] = true;
                slot.health = snapshot.slots[i].health.clone();
            }
        }
        self.lifetime_retried_shards = snapshot.retried_shards;
    }

    /// Attaches a metrics registry: installs one shard-latency
    /// histogram per slot (labeled by transport description) and
    /// records every successful shard's spawn-to-join time from here
    /// on. Recording is observation-only — it cannot move a bit of any
    /// merged partial.
    pub fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        registry.install_slots(self.describe_slots());
        self.metrics = Some(registry);
    }

    /// Executes `order` across the pool and merges the shard partials:
    /// sizes shards by observed slot throughput, retries failures on
    /// the other slots, updates quarantine state, and reports what
    /// happened. The merged partial is bitwise independent of all of
    /// those choices.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Order`] for an empty order; otherwise the error
    /// of the lowest-replicate shard whose attempts were exhausted.
    pub fn run(&mut self, order: &WorkOrder) -> Result<(EnsemblePartial, RunReport), ServiceError> {
        if order.replicates == 0 {
            return Err(ServiceError::Order("replicates must be >= 1".into()));
        }
        let mut active: Vec<usize> = (0..self.slots.len())
            .filter(|&i| !self.slots[i].health.quarantined)
            .collect();
        if active.is_empty() {
            // Every slot is quarantined: lift the quarantine rather
            // than deadlock — the pool would otherwise never serve
            // again (probation: a failure re-quarantines immediately).
            for slot in &mut self.slots {
                slot.health.quarantined = false;
                slot.health.consecutive_failures = 0;
            }
            active = (0..self.slots.len()).collect();
        }
        let throughputs: Vec<Option<f64>> = active
            .iter()
            .map(|&i| self.slots[i].health.observed_throughput())
            .collect();
        let sizes = shard_sizes(order.replicates, &throughputs);

        let mut report = RunReport::new(self.slots.len());
        // Spawn every shard before joining any, so they run
        // concurrently; a spawn error is just a first-attempt failure
        // and goes through the same retry path at collect time.
        let mut inflight: Vec<(usize, WorkOrder, Instant, Result<ShardHandle, ServiceError>)> =
            Vec::new();
        let mut first = order.first_replicate;
        for (&slot, &size) in active.iter().zip(&sizes) {
            if size == 0 {
                continue;
            }
            let mut shard = order.clone();
            shard.first_replicate = first;
            shard.replicates = size;
            first = first.wrapping_add(size);
            let spawned = self.slots[slot].transport.spawn_shard(&shard);
            inflight.push((slot, shard, Instant::now(), spawned));
        }

        // Collect and merge in shard order. Order does not matter for
        // the bits (exact accumulation); it does give deterministic
        // error reporting: the lowest-replicate failing shard wins.
        // After a terminal failure the remaining shards are abandoned:
        // children are killed and reaped, relay connections dropped;
        // in-process threads (uncancellable) detach and finish in the
        // background with their results discarded — see
        // ShardHandle::abandon.
        let mut merged: Option<EnsemblePartial> = None;
        let mut first_failure: Option<ServiceError> = None;
        for (slot, shard, started, spawned) in inflight {
            if first_failure.is_some() {
                if let Ok(handle) = spawned {
                    handle.abandon();
                }
                continue;
            }
            let partial = match spawned.and_then(ShardHandle::join) {
                Ok(partial) => {
                    self.record_success(slot, &shard, started.elapsed().as_secs_f64(), &mut report);
                    Ok(partial)
                }
                Err(err) => {
                    self.record_failure(slot, &mut report);
                    self.retry(slot, &shard, err, &mut report)
                }
            };
            let outcome = partial.and_then(|partial| match &mut merged {
                None => {
                    merged = Some(partial);
                    Ok(())
                }
                Some(total) => total.merge(&partial).map_err(ServiceError::from),
            });
            if let Err(err) = outcome {
                first_failure = Some(err);
            }
        }
        report.quarantined_slots = (0..self.slots.len())
            .filter(|&i| self.slots[i].health.quarantined)
            .collect();
        if let Some(failure) = first_failure {
            return Err(failure);
        }
        let merged =
            merged.ok_or_else(|| ServiceError::Worker("no shard produced a partial".into()))?;
        Ok((merged, report))
    }

    /// Re-issues a failed shard on the other slots, in rotation order
    /// after the failed one. Non-quarantined slots are preferred; when
    /// every other slot is quarantined (or this is a one-slot pool)
    /// the rotation falls back to all slots so the shard still gets
    /// its retry. Re-running a seed range is idempotent — replicate
    /// seeds are absolute and partials exact — so a successful retry
    /// contributes exactly the bits the failed attempt would have.
    fn retry(
        &mut self,
        failed: usize,
        shard: &WorkOrder,
        first_err: ServiceError,
        report: &mut RunReport,
    ) -> Result<EnsemblePartial, ServiceError> {
        let n = self.slots.len();
        let rotation: Vec<usize> = (1..n).map(|step| (failed + step) % n).collect();
        let mut candidates: Vec<usize> = rotation
            .iter()
            .copied()
            .filter(|&i| !self.slots[i].health.quarantined)
            .collect();
        if candidates.is_empty() {
            candidates = if rotation.is_empty() {
                vec![failed] // One-slot pool: retry once on the same slot.
            } else {
                rotation
            };
        }
        let mut last_err = first_err;
        for slot in candidates {
            let started = Instant::now();
            let attempt = self.slots[slot]
                .transport
                .spawn_shard(shard)
                .and_then(ShardHandle::join);
            match attempt {
                Ok(partial) => {
                    report.retried_shards += 1;
                    self.lifetime_retried_shards += 1;
                    self.slots[slot].health.retries += 1;
                    self.record_success(slot, shard, started.elapsed().as_secs_f64(), report);
                    return Ok(partial);
                }
                Err(retry_err) => {
                    self.record_failure(slot, report);
                    // Prefer the later error: it is the one that
                    // exhausted the shard's attempts (for deterministic
                    // failures the messages agree anyway).
                    last_err = retry_err;
                }
            }
        }
        Err(last_err)
    }

    fn record_success(
        &mut self,
        slot: usize,
        shard: &WorkOrder,
        elapsed_secs: f64,
        report: &mut RunReport,
    ) {
        let health = &mut self.slots[slot].health;
        health.successes += 1;
        health.consecutive_failures = 0;
        health.replicates += shard.replicates;
        health.busy_secs += elapsed_secs;
        report.slot_replicates[slot] += shard.replicates;
        if let Some(metrics) = &self.metrics {
            metrics.observe_shard(slot, Duration::from_secs_f64(elapsed_secs));
        }
    }

    fn record_failure(&mut self, slot: usize, report: &mut RunReport) {
        let health = &mut self.slots[slot].health;
        health.failures += 1;
        health.consecutive_failures += 1;
        if health.consecutive_failures >= self.quarantine_after {
            health.quarantined = true;
        }
        report.worker_failures[slot] += 1;
    }
}

/// Sizes `total` replicates across slots proportionally to their
/// observed throughput (largest-remainder rounding, deterministic
/// index tie-break). Slots with no history get the mean of the known
/// throughputs — a cold pool therefore degenerates to the even split
/// the original coordinator used — and weights are clamped to within
/// [`WEIGHT_CLAMP`]× of the mean so one noisy measurement cannot
/// starve a slot.
fn shard_sizes(total: u64, throughputs: &[Option<f64>]) -> Vec<u64> {
    let n = throughputs.len();
    debug_assert!(n > 0);
    let known: Vec<f64> = throughputs.iter().flatten().copied().collect();
    let mean = if known.is_empty() {
        1.0
    } else {
        known.iter().sum::<f64>() / known.len() as f64
    };
    let weights: Vec<f64> = throughputs
        .iter()
        .map(|t| {
            t.unwrap_or(mean)
                .clamp(mean / WEIGHT_CLAMP, mean * WEIGHT_CLAMP)
        })
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut sizes = vec![0u64; n];
    let mut fractions: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for (i, weight) in weights.iter().enumerate() {
        let exact = total as f64 * weight / weight_sum;
        let floor = (exact.floor() as u64).min(total);
        sizes[i] = floor;
        assigned += floor;
        fractions.push((i, exact - exact.floor()));
    }
    // Float round-off can leave the floors a few replicates short (or,
    // pathologically, long). Distribute the shortfall by largest
    // remainder; trim any excess from the tail.
    while assigned > total {
        let last = sizes.iter().rposition(|&s| s > 0).expect("assigned > 0");
        sizes[last] -= 1;
        assigned -= 1;
    }
    fractions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut remaining = total - assigned;
    let mut at = 0;
    while remaining > 0 {
        let (slot, _) = fractions[at % n];
        sizes[slot] += 1;
        remaining -= 1;
        at += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pools_split_evenly_like_the_old_coordinator() {
        assert_eq!(shard_sizes(10, &[None, None]), vec![5, 5]);
        assert_eq!(shard_sizes(11, &[None, None, None]), vec![4, 4, 3]);
        assert_eq!(shard_sizes(2, &[None, None, None]), vec![1, 1, 0]);
        assert_eq!(shard_sizes(1, &[None]), vec![1]);
    }

    #[test]
    fn shard_sizes_follow_observed_throughput() {
        // A slot measured 3x faster gets ~3x the replicates.
        let sizes = shard_sizes(100, &[Some(300.0), Some(100.0)]);
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        assert!(sizes[0] > sizes[1], "{sizes:?}");
        assert!((70..=80).contains(&sizes[0]), "{sizes:?}");
        // Unknown slots get the mean weight.
        let sizes = shard_sizes(90, &[Some(200.0), None, Some(100.0)]);
        assert_eq!(sizes.iter().sum::<u64>(), 90);
        assert!(sizes[0] > sizes[2], "{sizes:?}");
        assert!(sizes[1] > sizes[2] && sizes[1] < sizes[0], "{sizes:?}");
    }

    #[test]
    fn extreme_throughput_ratios_are_clamped() {
        // A glitchy measurement cannot starve a slot to zero when the
        // batch is large enough for the clamp to bite.
        let sizes = shard_sizes(1000, &[Some(1.0), Some(1_000_000.0)]);
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert!(sizes[0] > 0, "{sizes:?}");
    }

    #[test]
    fn every_total_is_preserved() {
        for total in [1u64, 2, 3, 7, 97, 192] {
            for weights in [
                vec![None, None],
                vec![Some(10.0), Some(20.0), Some(30.0)],
                vec![Some(5.0)],
                vec![None, Some(50.0), None, Some(0.5)],
            ] {
                let sizes = shard_sizes(total, &weights);
                assert_eq!(sizes.iter().sum::<u64>(), total, "{total} over {weights:?}");
            }
        }
    }
}
