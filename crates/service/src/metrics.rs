//! Operator-grade metrics: request-latency histograms, per-slot shard
//! timings, and service gauges, exported two ways.
//!
//! The service's original observability surface was a handful of
//! counters in [`crate::ServiceStats`]. This module grows it into a
//! real metrics layer:
//!
//! * [`Histogram`] — fixed **log-spaced** latency buckets backed by
//!   lock-free relaxed atomics, so the hot serving path pays a few
//!   uncontended `fetch_add`s per request and the scrape thread can
//!   read concurrently without stopping the world;
//! * [`MetricsRegistry`] — the shared hub: one histogram per
//!   [`RequestKind`] (recorded by `SessionStore::handle`), one per
//!   worker-pool slot (recorded by `WorkerPool` as each shard joins),
//!   and the last published [`crate::ServiceStats`] snapshot for the
//!   gauge families;
//! * [`render_prometheus`](MetricsRegistry::render_prometheus) — the
//!   whole registry as Prometheus text exposition format
//!   (`# HELP`/`# TYPE` + `family{labels} value` lines);
//! * [`serve_scrape`] — a hand-rolled `std::net` HTTP responder (the
//!   vendored-crate policy rules out hyper et al.) behind
//!   `glc-serve --metrics-addr`, answering `GET /metrics`.
//!
//! # Determinism
//!
//! Nothing here touches a seed, an engine, or a partial: recording is
//! observation-only, so interleaving Stats requests or scrapes between
//! Submit/Extend/Query cannot move a bit of any Query response. The
//! metrics property tests pin exactly that.

use crate::ServiceStats;
use serde::{Deserialize, Serialize};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Upper bounds (seconds) of the latency buckets: log-spaced by 4x
/// from 1 µs to ~67 s, covering a sub-microsecond Stats read through a
/// multi-minute remote Extend. Fixed at compile time so observation is
/// a branchless scan + one atomic increment, and every histogram in a
/// scrape is bucket-compatible.
pub const LATENCY_BUCKET_BOUNDS: [f64; 14] = [
    1.0e-6, 4.0e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3, 1.6384e-2, 6.5536e-2, 2.62144e-1,
    1.048576, 4.194304, 16.777216, 67.108864,
];

/// Buckets per histogram: the finite bounds plus one overflow bucket
/// (the `+Inf` bucket of the exposition format).
const BUCKETS: usize = LATENCY_BUCKET_BOUNDS.len() + 1;

/// Process-wide frame-payload byte counters, split by direction and
/// payload codec. They live outside [`MetricsRegistry`] because the
/// framed transports count bytes wherever they run — inside the pool,
/// the multiplexed listener, or a test harness — without threading a
/// registry handle through every connection; the scrape renders the
/// one process-wide truth as `glc_frame_bytes_total{dir,codec}`.
static FRAME_BYTES: [AtomicU64; 4] = [
    AtomicU64::new(0), // tx json
    AtomicU64::new(0), // tx glcb
    AtomicU64::new(0), // rx json
    AtomicU64::new(0), // rx glcb
];

fn frame_bytes_slot(rx: bool, glcb: bool) -> usize {
    usize::from(rx) * 2 + usize::from(glcb)
}

/// Counts `bytes` of frame payload sent by this process, attributed to
/// the GLCB or JSON codec.
pub fn count_frame_tx(glcb: bool, bytes: usize) {
    FRAME_BYTES[frame_bytes_slot(false, glcb)].fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Counts `bytes` of frame payload received by this process,
/// attributed to the GLCB or JSON codec.
pub fn count_frame_rx(glcb: bool, bytes: usize) {
    FRAME_BYTES[frame_bytes_slot(true, glcb)].fetch_add(bytes as u64, Ordering::Relaxed);
}

/// The four frame-byte counters as `(dir, codec, bytes)` rows, in
/// scrape order.
pub fn frame_bytes_snapshot() -> [(&'static str, &'static str, u64); 4] {
    let read = |rx, glcb| FRAME_BYTES[frame_bytes_slot(rx, glcb)].load(Ordering::Relaxed);
    [
        ("tx", "json", read(false, false)),
        ("tx", "glcb", read(false, true)),
        ("rx", "json", read(true, false)),
        ("rx", "glcb", read(true, true)),
    ]
}

/// A fixed-bucket latency histogram over lock-free atomic counters.
///
/// `observe` is wait-free (relaxed `fetch_add`s); `snapshot` reads the
/// counters relaxed too, so a scrape taken mid-request may be off by
/// the in-flight observation — bucket counts are monotone per bucket,
/// and the cumulative form is re-derived at snapshot time so it is
/// monotone *by construction* no matter how the loads interleave.
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) observation counts; the last slot
    /// is the overflow (`+Inf`) bucket.
    buckets: [AtomicU64; BUCKETS],
    /// Total observed time, in nanoseconds (u64 wraps after ~584 years
    /// of busy time — beyond any process lifetime this serves).
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one latency observation.
    pub fn observe(&self, elapsed: Duration) {
        let seconds = elapsed.as_secs_f64();
        let slot = LATENCY_BUCKET_BOUNDS
            .iter()
            .position(|&bound| seconds <= bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting: cumulative bucket
    /// counts (monotone by construction), total count, and the sum of
    /// observed seconds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(LATENCY_BUCKET_BOUNDS.len());
        let mut running = 0u64;
        for (slot, &bound) in LATENCY_BUCKET_BOUNDS.iter().enumerate() {
            running += self.buckets[slot].load(Ordering::Relaxed);
            cumulative.push((bound, running));
        }
        running += self.buckets[BUCKETS - 1].load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: cumulative,
            count: running,
            sum_seconds: self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// A point-in-time reading of one [`Histogram`], in the shape the wire
/// Stats response and the scrape renderer both consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HistogramSnapshot {
    /// `(upper_bound_seconds, cumulative_count)` per finite bucket,
    /// ascending; the implicit `+Inf` bucket equals `count`.
    pub buckets: Vec<(f64, u64)>,
    /// Total observations (the `+Inf` cumulative bucket).
    pub count: u64,
    /// Total observed seconds across all observations.
    pub sum_seconds: f64,
}

/// The request kinds the session protocol serves, each with its own
/// latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// [`crate::Request::Submit`].
    Submit,
    /// [`crate::Request::Extend`].
    Extend,
    /// [`crate::Request::Query`].
    Query,
    /// [`crate::Request::Stats`].
    Stats,
}

impl RequestKind {
    /// Every kind, in reporting order.
    pub const ALL: [RequestKind; 4] = [
        RequestKind::Submit,
        RequestKind::Extend,
        RequestKind::Query,
        RequestKind::Stats,
    ];

    /// The `kind` label value on the wire and in the scrape.
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Submit => "submit",
            RequestKind::Extend => "extend",
            RequestKind::Query => "query",
            RequestKind::Stats => "stats",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestKind::Submit => 0,
            RequestKind::Extend => 1,
            RequestKind::Query => 2,
            RequestKind::Stats => 3,
        }
    }
}

/// The shared metrics hub: histograms fed by the serving loop and the
/// worker pool, plus the last published [`ServiceStats`] snapshot for
/// the gauge families. One registry is owned (via `Arc`) by the
/// `SessionStore`, its `WorkerPool` backend, and the scrape listener
/// thread.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    requests: [Histogram; 4],
    /// One histogram per worker-pool slot, installed by the pool when
    /// the registry is attached (`Mutex` for the one-time install and
    /// the scrape walk; each `Histogram` inside is still atomic, so
    /// shard recording locks only long enough to find its slot).
    shards: Mutex<Vec<Arc<Histogram>>>,
    /// Transport description per pool slot, aligned with `shards`.
    slot_labels: Mutex<Vec<String>>,
    /// The service-level snapshot published after every handled
    /// request — sessions, spill accounting, slot health, footprints.
    published: Mutex<Option<ServiceStats>>,
    /// Chunks currently waiting in the worker pool's chunk queue
    /// (updated live by the slot drivers as they pull work).
    pool_queue_depth: AtomicU64,
    /// Lifetime count of chunks a slot stole from another slot's
    /// queue.
    pool_steals: AtomicU64,
    /// Orders in flight per pool slot, aligned with `slot_labels`
    /// (pipelined slots keep a window > 1 in flight).
    slot_inflight: Mutex<Vec<u64>>,
}

impl MetricsRegistry {
    /// A fresh registry with empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request latency.
    pub fn observe_request(&self, kind: RequestKind, elapsed: Duration) {
        self.requests[kind.index()].observe(elapsed);
    }

    /// Snapshot of one request-kind histogram.
    pub fn request_snapshot(&self, kind: RequestKind) -> HistogramSnapshot {
        self.requests[kind.index()].snapshot()
    }

    /// Installs (or re-installs) the worker-pool slot histograms:
    /// one per slot, labeled by the slot's transport description.
    /// Existing observations are kept when the slot layout is
    /// unchanged (a pool re-attaching the same registry).
    pub fn install_slots(&self, labels: Vec<String>) {
        let mut slots = self.shards.lock().expect("metrics poisoned");
        let mut current = self.slot_labels.lock().expect("metrics poisoned");
        let mut inflight = self.slot_inflight.lock().expect("metrics poisoned");
        if *current != labels {
            *slots = (0..labels.len()).map(|_| Arc::default()).collect();
            *inflight = vec![0; labels.len()];
            *current = labels;
        }
    }

    /// Sets the chunk-queue depth gauge (chunks not yet pulled by any
    /// slot driver).
    pub fn set_pool_queue_depth(&self, depth: u64) {
        self.pool_queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Counts one stolen chunk.
    pub fn inc_pool_steals(&self) {
        self.pool_steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime stolen-chunk count.
    pub fn pool_steals(&self) -> u64 {
        self.pool_steals.load(Ordering::Relaxed)
    }

    /// Sets the in-flight-orders gauge for pool slot `slot` (ignored
    /// for slots outside the installed layout).
    pub fn set_slot_inflight(&self, slot: usize, orders: u64) {
        let mut inflight = self.slot_inflight.lock().expect("metrics poisoned");
        if let Some(gauge) = inflight.get_mut(slot) {
            *gauge = orders;
        }
    }

    /// The histogram of shard latencies on pool slot `slot`, if the
    /// pool installed one.
    pub fn shard_histogram(&self, slot: usize) -> Option<Arc<Histogram>> {
        self.shards
            .lock()
            .expect("metrics poisoned")
            .get(slot)
            .cloned()
    }

    /// Records one shard execution latency against pool slot `slot`.
    pub fn observe_shard(&self, slot: usize, elapsed: Duration) {
        if let Some(histogram) = self.shard_histogram(slot) {
            histogram.observe(elapsed);
        }
    }

    /// Per-slot shard-latency snapshots, with their transport labels.
    pub fn shard_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let slots = self.shards.lock().expect("metrics poisoned");
        let labels = self.slot_labels.lock().expect("metrics poisoned");
        labels
            .iter()
            .zip(slots.iter())
            .map(|(label, histogram)| (label.clone(), histogram.snapshot()))
            .collect()
    }

    /// Publishes the service-level gauge snapshot the next scrape
    /// renders (called by the store after every handled request).
    pub fn publish(&self, stats: ServiceStats) {
        *self.published.lock().expect("metrics poisoned") = Some(stats);
    }

    /// The last published service snapshot, if any.
    pub fn published(&self) -> Option<ServiceStats> {
        self.published.lock().expect("metrics poisoned").clone()
    }

    /// Renders the whole registry in Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, histogram
    /// `_bucket`/`_sum`/`_count` series, and the service gauges from
    /// the last published snapshot.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP glc_request_seconds Session-protocol request latency.\n");
        out.push_str("# TYPE glc_request_seconds histogram\n");
        for kind in RequestKind::ALL {
            let snapshot = self.request_snapshot(kind);
            render_histogram(
                &mut out,
                "glc_request_seconds",
                &format!("kind=\"{}\"", kind.label()),
                &snapshot,
            );
        }

        let shards = self.shard_snapshots();
        if !shards.is_empty() {
            out.push_str("# HELP glc_shard_seconds Worker-pool shard execution latency.\n");
            out.push_str("# TYPE glc_shard_seconds histogram\n");
            for (slot, (label, snapshot)) in shards.iter().enumerate() {
                render_histogram(
                    &mut out,
                    "glc_shard_seconds",
                    &format!("slot=\"{slot}\",transport=\"{}\"", escape_label(label)),
                    snapshot,
                );
            }
        }

        {
            use std::fmt::Write as _;
            out.push_str(
                "# HELP glc_pool_queue_depth Chunks waiting in the worker-pool chunk queue.\n",
            );
            out.push_str("# TYPE glc_pool_queue_depth gauge\n");
            let _ = writeln!(
                out,
                "glc_pool_queue_depth {}",
                self.pool_queue_depth.load(Ordering::Relaxed)
            );
            out.push_str(
                "# HELP glc_pool_steals_total Chunks a pool slot stole from another slot's queue.\n",
            );
            out.push_str("# TYPE glc_pool_steals_total counter\n");
            let _ = writeln!(out, "glc_pool_steals_total {}", self.pool_steals());
            let labels = self.slot_labels.lock().expect("metrics poisoned").clone();
            let inflight = self.slot_inflight.lock().expect("metrics poisoned").clone();
            if !labels.is_empty() {
                out.push_str("# HELP glc_slot_inflight Orders in flight per pool slot.\n");
                out.push_str("# TYPE glc_slot_inflight gauge\n");
                for (slot, label) in labels.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "glc_slot_inflight{{slot=\"{slot}\",transport=\"{}\"}} {}",
                        escape_label(label),
                        inflight.get(slot).copied().unwrap_or(0)
                    );
                }
            }
        }

        {
            use std::fmt::Write as _;
            out.push_str(
                "# HELP glc_frame_bytes_total Frame payload bytes moved, by direction and codec.\n",
            );
            out.push_str("# TYPE glc_frame_bytes_total counter\n");
            for (dir, codec, bytes) in frame_bytes_snapshot() {
                let _ = writeln!(
                    out,
                    "glc_frame_bytes_total{{dir=\"{dir}\",codec=\"{codec}\"}} {bytes}"
                );
            }
        }

        if let Some(stats) = self.published() {
            render_service_gauges(&mut out, &stats);
        }
        out
    }
}

/// Renders one histogram family member: cumulative `_bucket` series
/// (ending in the `+Inf` bucket), `_sum`, `_count`.
fn render_histogram(out: &mut String, family: &str, labels: &str, snapshot: &HistogramSnapshot) {
    use std::fmt::Write as _;
    for &(bound, cumulative) in &snapshot.buckets {
        let _ = writeln!(
            out,
            "{family}_bucket{{{labels},le=\"{bound}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{family}_bucket{{{labels},le=\"+Inf\"}} {}",
        snapshot.count
    );
    let _ = writeln!(out, "{family}_sum{{{labels}}} {}", snapshot.sum_seconds);
    let _ = writeln!(out, "{family}_count{{{labels}}} {}", snapshot.count);
}

/// Renders the service-level counter and gauge families off a
/// published [`ServiceStats`] snapshot.
fn render_service_gauges(out: &mut String, stats: &ServiceStats) {
    use std::fmt::Write as _;
    let counters: [(&str, &str, u64); 10] = [
        (
            "glc_sessions_resident",
            "Sessions currently resident in the store.",
            stats.sessions,
        ),
        (
            "glc_sessions_evicted_total",
            "Sessions evicted by the LRU bound since startup.",
            stats.evictions,
        ),
        (
            "glc_replicates_simulated_total",
            "Replicates simulated since startup.",
            stats.simulated,
        ),
        (
            "glc_sessions_spilled_total",
            "Evicted sessions serialized to the spill directory.",
            stats.spilled,
        ),
        (
            "glc_sessions_reloaded_total",
            "Sessions transparently reloaded from the spill directory.",
            stats.reloads,
        ),
        (
            "glc_session_snapshots_total",
            "Write-through session snapshots taken on Extend.",
            stats.snapshots,
        ),
        (
            "glc_model_cache_hits_total",
            "Model compiles served from the compiled-model cache.",
            stats.model_cache_hits,
        ),
        (
            "glc_model_cache_misses_total",
            "Model compiles that actually ran.",
            stats.model_cache_misses,
        ),
        (
            "glc_spill_bytes",
            "Bytes currently held by session snapshots in the spill directory.",
            stats.spill_bytes,
        ),
        (
            "glc_spill_gc_evicted_total",
            "Session snapshots deleted by the spill garbage collector.",
            stats.spill_gc_evictions,
        ),
    ];
    for (family, help, value) in counters {
        let kind = if family.ends_with("_total") {
            "counter"
        } else {
            "gauge"
        };
        let _ = writeln!(out, "# HELP {family} {help}");
        let _ = writeln!(out, "# TYPE {family} {kind}");
        let _ = writeln!(out, "{family} {value}");
    }

    let _ = writeln!(
        out,
        "# HELP glc_pool_retried_shards_total Shards that failed and succeeded on a retry, \
         over the pool's lifetime."
    );
    let _ = writeln!(out, "# TYPE glc_pool_retried_shards_total counter");
    let _ = writeln!(out, "glc_pool_retried_shards_total {}", stats.pool_retries);

    if !stats.slots.is_empty() {
        out.push_str("# HELP glc_slot_health Worker-pool slot health accounting.\n");
        out.push_str("# TYPE glc_slot_health gauge\n");
        for (slot, health) in stats.slots.iter().enumerate() {
            let fields: [(&str, f64); 7] = [
                ("successes", health.successes as f64),
                ("failures", health.failures as f64),
                ("consecutive_failures", health.consecutive_failures as f64),
                ("retries", health.retries as f64),
                ("replicates", health.replicates as f64),
                ("quarantined", u64::from(health.quarantined) as f64),
                ("throughput", health.observed_throughput().unwrap_or(0.0)),
            ];
            for (field, value) in fields {
                let _ = writeln!(
                    out,
                    "glc_slot_health{{slot=\"{slot}\",field=\"{field}\"}} {value}"
                );
            }
        }
    }

    if !stats.footprints.is_empty() {
        out.push_str("# HELP glc_session_footprint Resident-session partial footprint.\n");
        out.push_str("# TYPE glc_session_footprint gauge\n");
        for footprint in &stats.footprints {
            let session = escape_label(&footprint.session);
            let _ = writeln!(
                out,
                "glc_session_footprint{{session=\"{session}\",unit=\"replicates\"}} {}",
                footprint.replicates
            );
            let _ = writeln!(
                out,
                "glc_session_footprint{{session=\"{session}\",unit=\"cells\"}} {}",
                footprint.cells
            );
            let _ = writeln!(
                out,
                "glc_session_footprint{{session=\"{session}\",unit=\"bytes\"}} {}",
                footprint.bytes
            );
        }
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Binds `addr` and serves the registry as `GET /metrics` forever on a
/// background thread — a deliberately minimal HTTP/1.1 responder over
/// `std::net` (one short-lived connection per scrape, `Connection:
/// close`), per the vendored-crate policy. Returns the bound address
/// (so `--metrics-addr 127.0.0.1:0` callers learn the real port).
///
/// # Errors
///
/// `std::io::Error` when the listener cannot bind.
pub fn serve_scrape(
    addr: &str,
    registry: Arc<MetricsRegistry>,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // One request per connection: read the head (we never need
            // a body), answer, close. Errors drop the connection; the
            // listener keeps serving.
            let mut head = Vec::with_capacity(512);
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
                match stream.read(&mut byte) {
                    Ok(1) => head.push(byte[0]),
                    _ => break,
                }
            }
            let request_line = String::from_utf8_lossy(&head);
            let path = request_line
                .split_whitespace()
                .nth(1)
                .unwrap_or("/")
                .to_string();
            let (status, body) = if path == "/metrics" || path == "/" {
                ("200 OK", registry.render_prometheus())
            } else {
                ("404 Not Found", String::from("not found\n"))
            };
            let response = format!(
                "HTTP/1.1 {status}\r\n\
                 Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                 Content-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
            let _ = stream.flush();
        }
    });
    Ok((bound, handle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_log_spaced_buckets() {
        let histogram = Histogram::default();
        histogram.observe(Duration::from_nanos(500)); // <= 1 µs
        histogram.observe(Duration::from_micros(100)); // <= 256 µs
        histogram.observe(Duration::from_secs(500)); // overflow
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 3);
        assert_eq!(snapshot.buckets[0], (1.0e-6, 1));
        let at_256us = snapshot
            .buckets
            .iter()
            .find(|(bound, _)| *bound == 2.56e-4)
            .expect("bucket");
        assert_eq!(at_256us.1, 2, "cumulative through 256 µs");
        assert_eq!(
            snapshot.buckets.last().expect("buckets").1,
            2,
            "the 500 s observation only reaches +Inf"
        );
        assert!((snapshot.sum_seconds - 500.0001005).abs() < 1e-6);
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let histogram = Histogram::default();
        for micros in [1u64, 3, 9, 27, 81, 243, 729, 100_000, 10_000_000] {
            histogram.observe(Duration::from_micros(micros));
        }
        let snapshot = histogram.snapshot();
        let mut previous = 0u64;
        for &(_, cumulative) in &snapshot.buckets {
            assert!(cumulative >= previous, "{snapshot:?}");
            previous = cumulative;
        }
        assert!(snapshot.count >= previous);
    }

    #[test]
    fn render_includes_every_request_kind_and_parses_line_by_line() {
        let registry = MetricsRegistry::new();
        registry.observe_request(RequestKind::Submit, Duration::from_micros(30));
        registry.observe_request(RequestKind::Query, Duration::from_millis(2));
        let text = registry.render_prometheus();
        for kind in RequestKind::ALL {
            assert!(
                text.contains(&format!(
                    "glc_request_seconds_bucket{{kind=\"{}\"",
                    kind.label()
                )),
                "{text}"
            );
        }
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line.split_once(' ').is_some_and(
                        |(series, value)| !series.is_empty() && value.parse::<f64>().is_ok()
                    ),
                "unparseable exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn frame_byte_counters_land_under_their_direction_and_codec() {
        let before = frame_bytes_snapshot();
        count_frame_tx(false, 10);
        count_frame_tx(true, 20);
        count_frame_rx(false, 30);
        count_frame_rx(true, 40);
        let after = frame_bytes_snapshot();
        let deltas: Vec<u64> = after
            .iter()
            .zip(before.iter())
            .map(|(now, was)| now.2 - was.2)
            .collect();
        // Other tests share the process-wide counters, so assert only
        // that at least our contribution landed in each cell.
        assert!(deltas[0] >= 10 && deltas[1] >= 20 && deltas[2] >= 30 && deltas[3] >= 40);
        let text = MetricsRegistry::new().render_prometheus();
        for (dir, codec) in [
            ("tx", "json"),
            ("tx", "glcb"),
            ("rx", "json"),
            ("rx", "glcb"),
        ] {
            assert!(
                text.contains(&format!(
                    "glc_frame_bytes_total{{dir=\"{dir}\",codec=\"{codec}\"}}"
                )),
                "{text}"
            );
        }
    }

    #[test]
    fn shard_histograms_follow_the_installed_slot_layout() {
        let registry = MetricsRegistry::new();
        assert!(registry.shard_snapshots().is_empty());
        registry.install_slots(vec!["in-process".into(), "tcp-relay h:1".into()]);
        registry.observe_shard(1, Duration::from_millis(5));
        registry.observe_shard(7, Duration::from_millis(5)); // out of range: dropped
        let snapshots = registry.shard_snapshots();
        assert_eq!(snapshots.len(), 2);
        assert_eq!(snapshots[0].1.count, 0);
        assert_eq!(snapshots[1].1.count, 1);
        assert_eq!(snapshots[1].0, "tcp-relay h:1");
        // Re-installing the same layout keeps the observations…
        registry.install_slots(vec!["in-process".into(), "tcp-relay h:1".into()]);
        assert_eq!(registry.shard_snapshots()[1].1.count, 1);
        // …a different layout resets them.
        registry.install_slots(vec!["in-process".into()]);
        assert_eq!(registry.shard_snapshots()[0].1.count, 0);
    }

    #[test]
    fn scrape_server_answers_get_metrics() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.observe_request(RequestKind::Stats, Duration::from_micros(10));
        let (addr, _handle) = serve_scrape("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("glc_request_seconds_count{kind=\"stats\"} 1"));
        // Unknown paths 404 without killing the listener.
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /nope HTTP/1.1\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET / HTTP/1.1\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    }
}
