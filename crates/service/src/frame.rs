//! Length-prefixed frame codec for the worker/relay wire.
//!
//! PR 5 put newline-delimited JSON on every hop of the fabric. That
//! framing couples one connection to one work order: the reply is
//! "whatever line comes back", so a slot that wants several orders in
//! flight has no way to tell their replies apart, and every order pays
//! a fresh spawn/connect. This module replaces it with a binary frame:
//!
//! ```text
//! +----------+----------+-------------------------+
//! | magic    | length   | payload                 |
//! | 4 bytes  | u32 BE   | `length` bytes of JSON  |
//! | "GLCF"   |          | (an Envelope, usually)  |
//! +----------+----------+-------------------------+
//! ```
//!
//! The payload is the same JSON the line protocol carried — typically
//! an [`Envelope`](crate::Envelope) whose `id` correlates a reply with
//! its in-flight order — so everything the schema tests pin about the
//! JSON layer still holds; only the outer delimiting changed.
//!
//! Decoding **fails closed**: a bad magic, an oversized length, or an
//! EOF inside a frame is an error, never a partial result, and an
//! oversized length is rejected *before* any allocation. The
//! [`FrameDecoder`] accepts bytes in arbitrary splits (nonblocking
//! readers hand it whatever the socket had), and validates the header
//! prefix as soon as enough bytes exist to falsify it.

use crate::session::Envelope;
use crate::ServiceError;
use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

/// First four bytes of every frame. `47 4C 43 46` ("GLCF"). The line
/// protocol can never produce this prefix — a JSON request line starts
/// with `{`, `"` or whitespace — so a listener can sniff one byte and
/// serve both framings on the same port.
pub const FRAME_MAGIC: [u8; 4] = *b"GLCF";

/// Header size: magic + big-endian u32 payload length.
pub const FRAME_HEADER_LEN: usize = 8;

/// Hard payload cap. A batch-sized `EnsemblePartial` is a few hundred
/// KiB; 64 MiB leaves three orders of magnitude of headroom while
/// keeping a corrupt or hostile length prefix from driving a
/// multi-gigabyte allocation.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Handshake payload both ends exchange before pipelining orders. A
/// peer that doesn't speak frames (a dead marker script, a legacy
/// line-protocol relay) never produces it, so connection setup fails
/// closed instead of blocking on a peer that will never frame.
pub const FRAME_HELLO: &[u8] = b"{\"glc_frame_hello\":1}";

/// Encodes one frame around `payload`.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, ServiceError> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(ServiceError::Protocol(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Writes one frame and flushes it (pipelined peers act on frames as
/// they arrive; a frame parked in a `BufWriter` would stall the
/// window).
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), ServiceError> {
    let frame = encode_frame(payload)?;
    writer
        .write_all(&frame)
        .and_then(|()| writer.flush())
        .map_err(|err| ServiceError::Worker(format!("writing frame: {err}")))
}

/// Reads one frame from a blocking reader. `Ok(None)` is a clean EOF
/// *between* frames; an EOF inside a header or payload is an error
/// (the peer died mid-frame — nothing it sent can be trusted).
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>, ServiceError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut at = 0;
    while at < FRAME_HEADER_LEN {
        match reader.read(&mut header[at..]) {
            Ok(0) if at == 0 => return Ok(None),
            Ok(0) => {
                return Err(ServiceError::Protocol(format!(
                    "truncated frame: EOF after {at} of {FRAME_HEADER_LEN} header bytes"
                )))
            }
            Ok(n) => at += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(ServiceError::Worker(format!("reading frame: {err}"))),
        }
    }
    let len = validate_header(&header)?;
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match reader.read(&mut payload[at..]) {
            Ok(0) => {
                return Err(ServiceError::Protocol(format!(
                    "truncated frame: EOF after {at} of {len} payload bytes"
                )))
            }
            Ok(n) => at += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(ServiceError::Worker(format!("reading frame: {err}"))),
        }
    }
    Ok(Some(payload))
}

/// Reads one newline-terminated line from a buffered reader, failing
/// closed once the line exceeds [`MAX_FRAME_PAYLOAD`] bytes. The legacy
/// line protocol had no length cap at all, so a peer streaming garbage
/// without a newline could grow the buffer without bound; this mirrors
/// the frame cap onto the line paths. `Ok(None)` is EOF before any
/// byte of a line.
pub fn read_line_capped<R: std::io::BufRead>(
    reader: &mut R,
) -> Result<Option<String>, ServiceError> {
    let mut line = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(ServiceError::Worker(format!("reading line: {err}"))),
        };
        if chunk.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            break;
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(at) => (at + 1, true),
            None => (chunk.len(), false),
        };
        if line.len() + take > MAX_FRAME_PAYLOAD + 1 {
            return Err(ServiceError::Protocol(format!(
                "request line exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
            )));
        }
        line.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if done {
            break;
        }
    }
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|err| ServiceError::Protocol(format!("request line is not UTF-8: {err}")))
}

/// Checks magic and length of a complete 8-byte header; returns the
/// payload length.
fn validate_header(header: &[u8; FRAME_HEADER_LEN]) -> Result<usize, ServiceError> {
    if header[..4] != FRAME_MAGIC {
        return Err(ServiceError::Protocol(format!(
            "bad frame magic {:02x} {:02x} {:02x} {:02x} (expected \"GLCF\")",
            header[0], header[1], header[2], header[3]
        )));
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(ServiceError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
        )));
    }
    Ok(len)
}

/// Incremental frame decoder for nonblocking readers: push bytes in
/// whatever splits the transport produced, pull complete frames out.
/// Violations surface on the first byte that proves them — a wrong
/// magic byte fails before the header is even complete.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, `Ok(None)` if more bytes
    /// are needed. Once it returns `Err`, the stream is poisoned — the
    /// caller must drop the connection (resynchronizing inside a
    /// corrupt binary stream would be guesswork).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ServiceError> {
        let have = self.buf.len().min(4);
        if self.buf[..have] != FRAME_MAGIC[..have] {
            let bad = self.buf[..have]
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ");
            return Err(ServiceError::Protocol(format!(
                "bad frame magic {bad} (expected \"GLCF\")"
            )));
        }
        if self.buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&self.buf[..FRAME_HEADER_LEN]);
        let len = validate_header(&header)?;
        if self.buf.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = self.buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        self.buf.drain(..FRAME_HEADER_LEN + len);
        Ok(Some(payload))
    }

    /// True when bytes of an incomplete frame are buffered. A peer
    /// that hangs up here died mid-frame: the caller must treat the
    /// connection as failed, not as cleanly closed.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}

/// Encodes `body` under the envelope `id` as a frame payload. `id` is
/// the chunk-order correlation key: replies echo it, so a slot may
/// keep many orders in flight on one connection.
pub fn encode_message<T: Serialize>(id: u64, body: &T) -> Result<Vec<u8>, ServiceError> {
    let envelope = Envelope {
        id: Some(Value::Num(id as f64)),
        body,
    };
    serde_json::to_string(&envelope)
        .map(String::into_bytes)
        .map_err(|err| ServiceError::Protocol(format!("encoding frame envelope: {err:?}")))
}

/// Decodes a frame payload into an envelope, returning `(id, body)`.
/// A missing or non-numeric id fails closed — an uncorrelatable reply
/// on a pipelined connection cannot be attributed to any order.
pub fn decode_message<T: Deserialize>(payload: &[u8]) -> Result<(u64, T), ServiceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|err| ServiceError::Protocol(format!("frame payload is not UTF-8: {err}")))?;
    let envelope: Envelope<T> = serde_json::from_str(text)
        .map_err(|err| ServiceError::Protocol(format!("unparseable frame payload: {err:?}")))?;
    match envelope.id {
        Some(Value::Num(id)) if id >= 0.0 && id.fract() == 0.0 => Ok((id as u64, envelope.body)),
        other => Err(ServiceError::Protocol(format!(
            "frame envelope id {other:?} is not a non-negative integer"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_blocking_reader() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"beta").unwrap();
        let mut reader = &wire[..];
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some(&b"alpha"[..])
        );
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some(&b"beta"[..])
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        let frame = encode_frame(b"payload").unwrap();
        for cut in 1..frame.len() {
            let mut reader = &frame[..cut];
            let err = match read_frame(&mut reader) {
                Ok(got) => panic!("cut at {cut} produced {got:?}"),
                Err(err) => err.to_string(),
            };
            assert!(err.contains("truncated frame"), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversized_lengths_fail_before_allocating() {
        let mut wire = Vec::from(FRAME_MAGIC);
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut &wire[..]).unwrap_err().to_string();
        assert!(err.contains("exceeds"), "{err}");
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire);
        let err = decoder.next_frame().unwrap_err().to_string();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn the_decoder_rejects_bad_magic_on_the_first_wrong_byte() {
        let mut decoder = FrameDecoder::new();
        decoder.push(b"{\"");
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn capped_line_reads_stop_at_the_frame_cap() {
        let mut reader = std::io::BufReader::new(&b"alpha\nbeta"[..]);
        assert_eq!(
            read_line_capped(&mut reader).unwrap().as_deref(),
            Some("alpha")
        );
        assert_eq!(
            read_line_capped(&mut reader).unwrap().as_deref(),
            Some("beta")
        );
        assert_eq!(read_line_capped(&mut reader).unwrap(), None);

        struct Endless;
        impl std::io::Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                buf.fill(b'x');
                Ok(buf.len())
            }
        }
        let mut reader = std::io::BufReader::new(Endless);
        let err = read_line_capped(&mut reader).unwrap_err().to_string();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn envelope_messages_carry_their_correlation_id() {
        let payload = encode_message(41, &crate::RelayReply::Error("boom".into())).unwrap();
        let (id, reply): (u64, crate::RelayReply) = decode_message(&payload).unwrap();
        assert_eq!(id, 41);
        assert!(matches!(reply, crate::RelayReply::Error(msg) if msg == "boom"));
    }
}
