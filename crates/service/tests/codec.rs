//! GLCB codec tests: round-trip property tests that the binary wire
//! layer is bitwise-faithful, agrees with the JSON envelope wherever
//! JSON can represent the value exactly, and fails closed on every
//! truncated, trailing-garbage or structurally-invalid payload.
//!
//! The JSON-parity assertions are scoped to values below 2^53: the
//! JSON layer carries numbers through f64, so seed ranges and ids
//! above that lose low bits there — which is precisely why the GLCB
//! varints exist; the binary path is exact for the full u64 range
//! (checked here at the wrap boundary).
//!
//! CI runs this file on every push (`query-service` job).

use glc_service::codec::{self, BinaryReply, Hello};
use glc_service::{frame, EngineSpec, ModelSource, RelayReply, WorkOrder};
use glc_ssa::{CompiledModel, EnsemblePartial, Trace};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Characters the text-frame property draws lines from: ASCII, JSON
/// structure, and multi-byte UTF-8.
const PALETTE: [char; 12] = ['a', 'Z', '0', ' ', '"', '{', '}', ':', ',', '§', 'π', '💥'];
const PALETTE_LEN: usize = PALETTE.len();

/// Draws across the full u64 span the vendored strategies can reach:
/// small values, the 2^53 JSON-exactness boundary, and the wrap edge.
fn any_u64() -> BoxedStrategy<u64> {
    prop_oneof![
        0u64..1000,
        ((1u64 << 53) - 1000)..((1u64 << 53) + 1000),
        (u64::MAX - 1000)..u64::MAX,
    ]
}

/// A small catalog order, fields driven by the property inputs.
fn tiny_order(seed: u64, first: u64, replicates: u64, engine: EngineSpec) -> WorkOrder {
    let mut order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        engine,
        seed,
        replicates,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    order.first_replicate = first;
    order
}

/// A fixed menu of partials spanning the codec's edge cases: a real
/// Direct run, a wrap-straddling seed range, an empty grid, and a
/// poisoned one (whose finalized noise figures are NaN).
fn sample_partials() -> &'static Vec<EnsemblePartial> {
    static PARTIALS: OnceLock<Vec<EnsemblePartial>> = OnceLock::new();
    PARTIALS.get_or_init(|| {
        let run = |seed: u64, replicates: u64| {
            tiny_order(seed, 0, replicates, EngineSpec::Direct)
                .execute()
                .expect("tiny order runs")
        };
        let mut model = ModelSource::Catalog("book_not".into())
            .load()
            .expect("catalog model");
        model.set_initial_amount("LacI", 15.0);
        let compiled = CompiledModel::new(&model).expect("compiles");
        let empty = EnsemblePartial::new(&compiled, 5.0, 1.0).expect("empty grid");
        let mut poisoned = EnsemblePartial::new(&compiled, 2.0, 1.0).expect("grid");
        let species: Vec<String> = poisoned.fingerprint().species.clone();
        let mut hot = Trace::new(species.clone(), 1.0, 0.0);
        for _ in 0..3 {
            hot.push_row(&vec![f64::INFINITY; species.len()]);
        }
        poisoned.accumulate(&hot, 0).expect("poisoning accumulate");
        vec![run(11, 3), run(u64::MAX - 2, 3), empty, poisoned]
    })
}

proptest! {
    /// Orders: GLCB round-trips bitwise for the full u64 seed space,
    /// agrees with the JSON envelope below 2^53, and every truncation
    /// or trailing byte fails closed.
    #[test]
    fn glcb_orders_round_trip_and_match_json(
        seed in any_u64(),
        first in any_u64(),
        replicates in 0u64..1000,
        id in any_u64(),
        engine_pick in 0usize..5,
        knob in 0.001f64..1.0,
    ) {
        let engine = match engine_pick {
            0 => EngineSpec::Direct,
            1 => EngineSpec::FirstReaction,
            2 => EngineSpec::NextReaction,
            3 => EngineSpec::TauLeap(knob),
            _ => EngineSpec::Langevin(knob),
        };
        let order = tiny_order(seed, first, replicates, engine);
        let bytes = codec::encode_order(id, &order);
        prop_assert!(codec::is_glcb(&bytes));
        let (back_id, back) = codec::decode_order(&bytes).unwrap();
        prop_assert_eq!(back_id, id);
        prop_assert_eq!(&back, &order);
        prop_assert_eq!(codec::encode_order(id, &back), bytes.clone(), "canonical re-encode");

        if seed < (1 << 53) && first < (1 << 53) && id < (1 << 53) {
            let json = frame::encode_message(id, &order).unwrap();
            prop_assert!(!codec::is_glcb(&json), "JSON can never sniff as GLCB");
            let (json_id, via_json): (u64, WorkOrder) = frame::decode_message(&json).unwrap();
            prop_assert_eq!(json_id, id);
            prop_assert_eq!(&via_json, &back, "codec ≡ JSON below 2^53");
        }

        for cut in (0..bytes.len()).step_by(7) {
            prop_assert!(codec::decode_order(&bytes[..cut]).is_err());
        }
        let mut trailing = bytes;
        trailing.push(0);
        prop_assert!(codec::decode_order(&trailing).is_err());
    }

    /// Replies: every `BinaryReply` variant — including `Reduced`
    /// covering arbitrary extra ids and partials with poisoned sums or
    /// wrap-straddling seed ranges — round-trips bitwise, agrees with
    /// the JSON `RelayReply` where one exists, and fails closed on
    /// damage.
    #[test]
    fn glcb_replies_round_trip_bitwise(
        id in any_u64(),
        case in 0usize..4,
        variant in 0usize..4,
        replicates in any_u64(),
        covers in proptest::collection::vec(any_u64(), 0..4),
    ) {
        let partial = &sample_partials()[case];
        let reply = match variant {
            0 => BinaryReply::Partial(partial.clone()),
            1 => BinaryReply::Error("chunk exploded: §π💥".into()),
            2 => BinaryReply::Deferred { replicates },
            _ => BinaryReply::Reduced {
                also_covers: covers,
                partial: partial.clone(),
            },
        };
        let bytes = codec::encode_reply(id, &reply);
        prop_assert!(codec::is_glcb(&bytes));
        let (back_id, back) = codec::decode_reply(&bytes).unwrap();
        prop_assert_eq!(back_id, id);
        prop_assert_eq!(&back, &reply);
        prop_assert_eq!(codec::encode_reply(id, &back), bytes.clone(), "canonical re-encode");

        // The two legacy-representable variants agree with the JSON
        // envelope (below the f64-exact ceiling; the sample partials'
        // wrap-range case is deliberately beyond it and skipped).
        let json_exact = partial
            .covered_seeds()
            .iter()
            .all(|&(s, c)| s < (1 << 53) && c < (1 << 53));
        if id < (1 << 53) && variant < 2 && (variant == 1 || json_exact) {
            let legacy = match &reply {
                BinaryReply::Partial(p) => RelayReply::Partial(p.clone()),
                BinaryReply::Error(e) => RelayReply::Error(e.clone()),
                _ => unreachable!(),
            };
            let json = frame::encode_message(id, &legacy).unwrap();
            let (json_id, via_json): (u64, RelayReply) = frame::decode_message(&json).unwrap();
            prop_assert_eq!(json_id, id);
            match (via_json, &back) {
                (RelayReply::Partial(a), BinaryReply::Partial(b)) => prop_assert_eq!(&a, b),
                (RelayReply::Error(a), BinaryReply::Error(b)) => prop_assert_eq!(&a, b),
                other => prop_assert!(false, "variant mismatch: {:?}", other),
            }
        }

        for cut in (0..bytes.len()).step_by(13) {
            prop_assert!(codec::decode_reply(&bytes[..cut]).is_err());
        }
        let mut trailing = bytes;
        trailing.push(0);
        prop_assert!(codec::decode_reply(&trailing).is_err());
    }

    /// Session text frames carry the line bytes exactly, whatever the
    /// line holds.
    #[test]
    fn glcb_text_frames_are_byte_faithful(
        picks in proptest::collection::vec(0usize..PALETTE_LEN, 0..120),
    ) {
        let line: String = picks.iter().map(|&i| PALETTE[i]).collect();
        let bytes = codec::encode_text(&line);
        prop_assert!(codec::is_glcb(&bytes));
        prop_assert_eq!(codec::decode_text(&bytes).unwrap(), line);
        for cut in (0..bytes.len()).step_by(5) {
            prop_assert!(codec::decode_text(&bytes[..cut]).is_err());
        }
    }
}

#[test]
fn glcb_snapshots_round_trip_spec_and_partial() {
    for partial in sample_partials() {
        let spec_json = r#"{"model":{"Catalog":"book_not"},"fake":"spec"}"#;
        let bytes = codec::encode_snapshot(spec_json, partial);
        assert!(codec::is_glcb(&bytes));
        let (back_spec, back_partial) = codec::decode_snapshot(&bytes).unwrap();
        assert_eq!(back_spec, spec_json);
        assert_eq!(&back_partial, partial);
        for cut in (0..bytes.len()).step_by(11) {
            assert!(codec::decode_snapshot(&bytes[..cut]).is_err());
        }
    }
}

#[test]
fn cross_tag_decodes_fail_closed() {
    // A payload of one tag handed to another tag's decoder is a
    // protocol error, never a misparse.
    let order = codec::encode_order(1, &tiny_order(2, 0, 3, EngineSpec::Direct));
    let reply = codec::encode_reply(1, &BinaryReply::Error("x".into()));
    let text = codec::encode_text("{\"Stats\":null}");
    assert!(codec::decode_reply(&order).is_err());
    assert!(codec::decode_order(&reply).is_err());
    assert!(codec::decode_order(&text).is_err());
    assert!(codec::decode_text(&order).is_err());
    assert!(codec::decode_snapshot(&text).is_err());
    // Unknown versions and tags too.
    let mut wrong_version = order.clone();
    wrong_version[4] = 9;
    assert!(codec::decode_order(&wrong_version).is_err());
    let mut wrong_tag = order;
    wrong_tag[5] = 200;
    assert!(codec::decode_order(&wrong_tag).is_err());
}

#[test]
fn hello_negotiation_matrix_holds() {
    // binary↔binary, binary↔legacy, legacy↔legacy: the grant is the
    // intersection, and the legacy spelling is byte-exact.
    let legacy = codec::hello_payload(Hello::legacy());
    assert_eq!(legacy, frame::FRAME_HELLO.to_vec());
    for ours in [Hello::legacy(), Hello::glcb(), Hello::glcb_reducing()] {
        let parsed = codec::parse_hello(&codec::hello_payload(ours)).unwrap();
        assert_eq!(parsed, ours, "hello round-trips");
        for theirs in [Hello::legacy(), Hello::glcb(), Hello::glcb_reducing()] {
            let granted = ours.intersect(theirs);
            assert_eq!(granted.glcb, ours.glcb && theirs.glcb);
            assert_eq!(granted.reduce, ours.reduce && theirs.reduce);
        }
    }
}
