//! Transport-fabric tests: the three [`Transport`] implementations
//! driven through real processes and sockets, checked **bitwise**
//! against each other, plus the [`WorkerPool`]'s health-aware
//! scheduling (retries, quarantine, throughput accounting).
//!
//! The acceptance gate of the transport refactor: an Extend dispatched
//! over `TcpRelay` ≡ `ChildProcess` ≡ `InProcess` ≡ a fresh unsharded
//! run — property-tested for Direct + Langevin on `book_and` +
//! `cello_0x1C` — and a pool with an always-failing slot still
//! completes with the correct bits while reporting the quarantine.
//! CI runs this file on every push (`query-service` job).

use glc_service::{
    ChildProcess, ChunkChannel, ChunkReply, EngineSpec, ExtendBackend, InProcess, ModelSource,
    PipelinedRelay, PipelinedWorker, ServiceError, SessionSpec, SessionStore, TcpRelay, Transport,
    WorkOrder, WorkerPool,
};
use glc_ssa::run_partial_from;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{BufRead as _, BufReader};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Paths of the freshly built binaries under test.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glc-worker")
}

fn relay_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glc-relay")
}

/// A `glc-relay` child bound to a free localhost port. The relay
/// exits when its stdin closes, so even a leaked fixture dies with
/// this test process.
struct RelayFixture {
    child: Child,
    _stdin: ChildStdin,
    addr: String,
}

impl RelayFixture {
    fn spawn(args: &[&str]) -> Self {
        let mut child = Command::new(relay_bin())
            .args(["--listen", "127.0.0.1:0"])
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn glc-relay");
        let stdin = child.stdin.take().expect("stdin piped");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read bound address");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address token")
            .to_string();
        assert!(
            line.contains("listening on") && addr.contains(':'),
            "unexpected banner: {line:?}"
        );
        RelayFixture {
            child,
            _stdin: stdin,
            addr,
        }
    }
}

impl Drop for RelayFixture {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One relay shared by every property-test case (spawning a process
/// per case would dominate the test); it exits with this process.
fn shared_relay_addr() -> &'static str {
    static RELAY: OnceLock<RelayFixture> = OnceLock::new();
    &RELAY.get_or_init(|| RelayFixture::spawn(&[])).addr
}

fn catalog_spec(circuit: &str, engine: EngineSpec, base_seed: u64) -> SessionSpec {
    let entry = glc_gates::catalog::by_id(circuit).expect("catalog circuit");
    let mut spec = SessionSpec::new(
        ModelSource::Catalog(circuit.into()),
        engine,
        base_seed,
        20.0,
        4.0,
    );
    for input in &entry.inputs {
        spec = spec.with_amount(input, 15.0);
    }
    spec
}

/// The fresh-run reference: `run_partial_from` over the whole range,
/// built from the same spec.
fn fresh_reference(spec: &SessionSpec, replicates: u64) -> glc_ssa::EnsemblePartial {
    let mut model = spec.model.load().expect("model loads");
    for (species, amount) in &spec.set_amounts {
        model.set_initial_amount(species, *amount);
    }
    let compiled = glc_ssa::CompiledModel::new(&model).expect("compiles");
    run_partial_from(
        &compiled,
        || spec.engine.build().expect("engine builds"),
        spec.base_seed,
        replicates,
        spec.t_end,
        spec.sample_dt,
    )
    .expect("reference run")
}

/// A store whose Extends run over a pool of the given transports.
fn pooled_store(transports: Vec<Box<dyn Transport>>) -> SessionStore {
    let pool = WorkerPool::new(transports).expect("pool");
    SessionStore::new(2, ExtendBackend::Pool(pool)).expect("store")
}

/// An in-process *pipelined* transport for scheduler tests: chunks
/// execute inside `recv` (so the in-flight window and completion
/// interleaving are real), with a configurable window, an optional
/// per-chunk delay (a tunable straggler), and scripted failures
/// shared across the pool — each failure credit taken by whichever
/// recv gets there first.
#[derive(Clone)]
struct TestPipelined {
    window: usize,
    delay: Duration,
    /// Chunk failures left to inject (inner error: chunk fails, the
    /// connection survives).
    inner_failures: Arc<AtomicU64>,
    /// Connection failures left to inject (outer error: the channel
    /// is broken, every in-flight chunk is lost).
    outer_failures: Arc<AtomicU64>,
    /// Channels opened so far (counts connection reuse across runs).
    opens: Arc<AtomicU64>,
}

impl TestPipelined {
    fn new(window: usize, delay: Duration) -> Self {
        TestPipelined {
            window,
            delay,
            inner_failures: Arc::new(AtomicU64::new(0)),
            outer_failures: Arc::new(AtomicU64::new(0)),
            opens: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Takes one failure credit from `counter`, if any is left.
    fn take(counter: &AtomicU64) -> bool {
        counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }
}

impl Transport for TestPipelined {
    fn spawn_shard(&self, order: &WorkOrder) -> Result<glc_service::ShardHandle, ServiceError> {
        InProcess.spawn_shard(order) // Retries ride the one-shot path.
    }

    fn describe(&self) -> String {
        "test-pipelined".into()
    }

    fn open_channel(&self) -> Result<Option<Box<dyn ChunkChannel>>, ServiceError> {
        self.opens.fetch_add(1, Ordering::SeqCst);
        Ok(Some(Box::new(TestChannel {
            cfg: self.clone(),
            pending: VecDeque::new(),
        })))
    }

    fn pipelined(&self) -> bool {
        true
    }
}

struct TestChannel {
    cfg: TestPipelined,
    pending: VecDeque<(u64, WorkOrder)>,
}

impl ChunkChannel for TestChannel {
    fn window(&self) -> usize {
        self.cfg.window
    }

    fn submit(&mut self, id: u64, order: &WorkOrder) -> Result<(), ServiceError> {
        self.pending.push_back((id, order.clone()));
        Ok(())
    }

    fn recv(&mut self) -> Result<(u64, ChunkReply), ServiceError> {
        let (id, order) = self
            .pending
            .pop_front()
            .ok_or_else(|| ServiceError::Worker("recv with nothing in flight".into()))?;
        if TestPipelined::take(&self.cfg.outer_failures) {
            return Err(ServiceError::Worker("test connection dropped".into()));
        }
        if !self.cfg.delay.is_zero() {
            std::thread::sleep(self.cfg.delay);
        }
        if TestPipelined::take(&self.cfg.inner_failures) {
            return Ok((
                id,
                ChunkReply::Done(Err(ServiceError::Worker("test chunk failed".into()))),
            ));
        }
        Ok((id, ChunkReply::Done(order.execute())))
    }
}

proptest! {
    /// The acceptance property: the same extend schedule dispatched
    /// over every transport — in-process threads, glc-worker children,
    /// TCP relay, pipelined-framed resident workers and relay
    /// connections, plus pipelined pools with a mid-run chunk failure
    /// and a straggler/steal mix — leaves bitwise-identical resident
    /// partials, all equal to the fresh unsharded run. Direct +
    /// Langevin, book_and + cello_0x1C.
    #[test]
    fn extends_agree_bitwise_across_all_transports(
        first in 1u64..3,
        growth in 1u64..3,
        seed in 0u64..500,
        cello in any::<bool>(),
        langevin in any::<bool>(),
    ) {
        let circuit = if cello { "cello_0x1C" } else { "book_and" };
        let engine = if langevin {
            EngineSpec::Langevin(if cello { 0.1 } else { 0.01 })
        } else {
            EngineSpec::Direct
        };
        let spec = catalog_spec(circuit, engine, seed);
        // A pipelined pool that fails one chunk mid-run (retried on
        // the other slots)…
        let flaky = TestPipelined::new(2, Duration::ZERO);
        flaky.inner_failures.store(1, Ordering::SeqCst);
        // …and one mixing a straggler with a fast slot, so chunks can
        // migrate by stealing.
        let straggler = TestPipelined::new(1, Duration::from_millis(3));
        let mut stores = vec![
            SessionStore::new(2, ExtendBackend::InProcess).unwrap(),
            pooled_store(vec![Box::new(InProcess), Box::new(InProcess)]),
            pooled_store(vec![
                Box::new(ChildProcess::new(worker_bin())),
                Box::new(ChildProcess::new(worker_bin())),
            ]),
            pooled_store(vec![
                Box::new(TcpRelay::new(shared_relay_addr())),
                Box::new(TcpRelay::new(shared_relay_addr())),
            ]),
            pooled_store(vec![
                Box::new(PipelinedWorker::new(worker_bin())),
                Box::new(PipelinedWorker::new(worker_bin())),
            ]),
            pooled_store(vec![
                Box::new(PipelinedRelay::new(shared_relay_addr())),
                Box::new(PipelinedRelay::new(shared_relay_addr())),
            ]),
            pooled_store(vec![
                Box::new(flaky.clone()),
                Box::new(TestPipelined::new(2, Duration::ZERO)),
            ]),
            pooled_store(vec![
                Box::new(straggler),
                Box::new(TestPipelined::new(1, Duration::ZERO)),
            ]),
        ];
        let mut partials = Vec::new();
        for store in &mut stores {
            let session = store.submit(&spec).unwrap().session;
            store.extend(&session, first).unwrap();
            store.extend(&session, growth).unwrap();
            partials.push(store.partial(&session).unwrap().clone());
        }
        prop_assert_eq!(
            flaky.inner_failures.load(Ordering::SeqCst), 0,
            "the scripted chunk failure really fired"
        );
        let reference = fresh_reference(&spec, first + growth);
        for (at, partial) in partials.iter().enumerate() {
            prop_assert_eq!(partial, &reference, "backend #{} diverged", at);
        }
    }
}

#[test]
fn fast_slots_steal_from_stragglers_without_moving_a_bit() {
    // One slot sleeps 100 ms per chunk, the other runs at full speed:
    // the fast slot must drain its own queue and then steal from the
    // straggler's — and the merged bits must not notice.
    let order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        23,
        20,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    let reference = order.execute().unwrap();
    let slow = TestPipelined::new(1, Duration::from_millis(100));
    let fast = TestPipelined::new(1, Duration::ZERO);
    let mut pool =
        WorkerPool::new(vec![Box::new(slow) as Box<dyn Transport>, Box::new(fast)]).unwrap();
    let (partial, report) = pool.run(&order).unwrap();
    assert_eq!(partial, reference, "stealing must not move a bit");
    assert!(
        report.chunks >= 4,
        "a pipelined cold pool cuts steal-eligible chunks: {report:?}"
    );
    assert!(report.steals >= 1, "the fast slot stole work: {report:?}");
    assert_eq!(report.total_failures(), 0, "{report:?}");
    assert_eq!(pool.lifetime_steals(), report.steals);
    assert!(
        report.slot_replicates[1] > report.slot_replicates[0],
        "the fast slot carried more replicates: {report:?}"
    );
}

#[test]
fn pipelined_chunk_failures_retry_elsewhere_and_stay_exact() {
    // A chunk fails mid-run on a pipelined slot (the connection
    // survives): the chunk is retried on the one-shot rotation and the
    // result is bitwise the reference.
    let order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        31,
        12,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    let reference = order.execute().unwrap();
    let flaky = TestPipelined::new(2, Duration::ZERO);
    flaky.inner_failures.store(1, Ordering::SeqCst);
    let mut pool = WorkerPool::new(vec![
        Box::new(flaky.clone()) as Box<dyn Transport>,
        Box::new(TestPipelined::new(2, Duration::ZERO)),
    ])
    .unwrap();
    let (partial, report) = pool.run(&order).unwrap();
    assert_eq!(partial, reference);
    assert_eq!(flaky.inner_failures.load(Ordering::SeqCst), 0);
    assert_eq!(report.total_failures(), 1, "{report:?}");
    assert_eq!(report.retried_shards, 1, "{report:?}");
    assert!(report.quarantined_slots.is_empty(), "{report:?}");
}

#[test]
fn broken_connections_lose_the_window_but_the_run_completes_exactly() {
    // The connection itself breaks with a full window in flight: every
    // in-flight chunk is lost, the channel is dropped (and reopened on
    // the next run), the lost chunks are retried — and the bits are
    // still exact, twice.
    let order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        41,
        16,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    let reference = order.execute().unwrap();
    let brittle = TestPipelined::new(2, Duration::ZERO);
    brittle.outer_failures.store(1, Ordering::SeqCst);
    let steady = TestPipelined::new(2, Duration::ZERO);
    let mut pool = WorkerPool::new(vec![
        Box::new(brittle.clone()) as Box<dyn Transport>,
        Box::new(steady.clone()),
    ])
    .unwrap();
    let (partial, report) = pool.run(&order).unwrap();
    assert_eq!(partial, reference);
    assert_eq!(
        report.total_failures(),
        1,
        "a broken connection is one failure, not one per lost chunk: {report:?}"
    );
    assert!(report.retried_shards >= 1, "{report:?}");

    // Second run: the broken slot reopens its channel, the healthy
    // slot reuses its cached connection.
    let opens_before = (
        brittle.opens.load(Ordering::SeqCst),
        steady.opens.load(Ordering::SeqCst),
    );
    assert_eq!(opens_before, (1, 1));
    let (partial, report) = pool.run(&order).unwrap();
    assert_eq!(partial, reference);
    assert_eq!(report.total_failures(), 0, "{report:?}");
    assert_eq!(
        brittle.opens.load(Ordering::SeqCst),
        2,
        "the broken channel was reopened"
    );
    assert_eq!(
        steady.opens.load(Ordering::SeqCst),
        1,
        "the healthy channel was reused across runs"
    );
}

#[test]
fn relay_reduction_merges_chunks_upstream_bitwise() {
    // A single pipelined relay connection carrying several concurrent
    // chunk orders: the negotiated reduce capability makes the relay
    // answer early finishers with Deferred receipts, merge their
    // partials locally, and ship one Reduced batch when its in-flight
    // count drains — and the reassembled bits must equal the unsharded
    // reference, across two runs on the same cached connection.
    let relay = RelayFixture::spawn(&[]);
    let order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        57,
        30,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    let reference = order.execute().unwrap();
    let mut pool = WorkerPool::new(vec![
        Box::new(PipelinedRelay::new(relay.addr.clone())) as Box<dyn Transport>
    ])
    .unwrap();
    for run in 0..2 {
        let (partial, report) = pool.run(&order).unwrap();
        assert_eq!(partial, reference, "run {run}: reduction moved a bit");
        if run == 0 {
            // The cold pool always splits into multiple chunks, which
            // is what puts several orders in flight on the connection
            // and triggers the Deferred/Reduced path (a warm pool may
            // legitimately plan one chunk and skip it).
            assert!(
                report.chunks >= 2,
                "cold run needs concurrent chunks to reduce: {report:?}"
            );
        }
        assert_eq!(report.total_failures(), 0, "run {run}: {report:?}");
        assert_eq!(
            report.slot_replicates[0], 30,
            "run {run}: every replicate accounted through the reduced batch: {report:?}"
        );
    }
}

#[test]
fn mixed_transport_pools_merge_bitwise() {
    // One pool mixing all three transports: the shard boundaries land
    // on different vehicles entirely, and the bits cannot tell.
    let relay = RelayFixture::spawn(&[]);
    let spec = catalog_spec("book_and", EngineSpec::Direct, 17);
    let mut store = pooled_store(vec![
        Box::new(InProcess),
        Box::new(ChildProcess::new(worker_bin())),
        Box::new(TcpRelay::new(relay.addr.clone())),
    ]);
    let session = store.submit(&spec).unwrap().session;
    for batch in [7u64, 5] {
        store.extend(&session, batch).unwrap();
    }
    assert_eq!(
        store.partial(&session).unwrap(),
        &fresh_reference(&spec, 12)
    );
}

#[test]
fn relay_with_child_workers_matches_too() {
    // A relay that fans its orders out over its own glc-worker
    // children (the remote-host deployment shape): still the same
    // bits.
    let relay = RelayFixture::spawn(&["--workers", "2", "--worker-bin", worker_bin()]);
    let spec = catalog_spec("book_and", EngineSpec::Langevin(0.01), 29);
    let mut store = pooled_store(vec![Box::new(TcpRelay::new(relay.addr.clone()))]);
    let session = store.submit(&spec).unwrap().session;
    store.extend(&session, 6).unwrap();
    assert_eq!(store.partial(&session).unwrap(), &fresh_reference(&spec, 6));
}

#[test]
fn relay_reports_bad_orders_and_keeps_serving() {
    let relay = RelayFixture::spawn(&[]);
    let transport = TcpRelay::new(relay.addr.clone());
    let bad = WorkOrder::new(
        ModelSource::Catalog("no_such_circuit".into()),
        EngineSpec::Direct,
        1,
        2,
        5.0,
        1.0,
    );
    let err = transport
        .spawn_shard(&bad)
        .and_then(|handle| handle.join())
        .unwrap_err();
    assert!(
        err.to_string().contains("no_such_circuit"),
        "error carries the relay's message: {err}"
    );
    // The failed order poisoned nothing: a good order on the same
    // relay still round-trips.
    let good = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        3,
        2,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    let partial = transport
        .spawn_shard(&good)
        .and_then(|handle| handle.join())
        .unwrap();
    assert_eq!(partial.replicates(), 2);
    assert_eq!(partial, good.execute().unwrap());
}

#[test]
fn unreachable_relay_is_a_clean_error() {
    // Port 1 on localhost is essentially never listening.
    let transport = TcpRelay::new("127.0.0.1:1");
    let order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        1,
        1,
        2.0,
        1.0,
    );
    let err = transport
        .spawn_shard(&order)
        .and_then(|handle| handle.join())
        .unwrap_err();
    assert!(
        err.to_string().contains("cannot connect"),
        "unexpected error: {err}"
    );
}

/// Writes an executable shell script that drains its order and always
/// fails — a permanently dead worker slot.
#[cfg(unix)]
fn dead_worker_script(label: &str) -> std::path::PathBuf {
    use std::os::unix::fs::PermissionsExt as _;
    let dir = std::env::temp_dir().join(format!("glc-dead-slot-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create script dir");
    let script = dir.join("dead-worker.sh");
    std::fs::write(
        &script,
        "#!/bin/sh\ncat > /dev/null\necho 'slot is dead' >&2\nexit 1\n",
    )
    .expect("write script");
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("chmod script");
    script
}

#[cfg(unix)]
#[test]
fn always_failing_slot_is_quarantined_and_the_result_is_still_exact() {
    // The acceptance scenario: slot 0 always fails, slot 1 is healthy.
    // Every run completes with the correct bits; the pool quarantines
    // the dead slot and stops handing it work.
    let order = WorkOrder::new(
        ModelSource::Catalog("book_and".into()),
        EngineSpec::Direct,
        7,
        10,
        20.0,
        4.0,
    )
    .with_amount("LacI", 15.0)
    .with_amount("TetR", 15.0);
    let reference = order.execute().unwrap();

    let mut pool = WorkerPool::new(vec![
        Box::new(ChildProcess::new(dead_worker_script("quarantine"))) as Box<dyn Transport>,
        Box::new(ChildProcess::new(worker_bin())),
    ])
    .unwrap()
    .with_quarantine_after(1)
    .unwrap();

    // Run 1: the dead slot's shard fails once, is retried on the
    // healthy slot, and the dead slot is quarantined.
    let (partial, report) = pool.run(&order).unwrap();
    assert_eq!(partial, reference, "retry must reproduce the exact bits");
    assert_eq!(report.worker_failures, vec![1, 0], "{report:?}");
    assert_eq!(report.retried_shards, 1, "{report:?}");
    assert_eq!(report.quarantined_slots, vec![0], "{report:?}");
    assert_eq!(
        report.slot_replicates,
        vec![0, 10],
        "the healthy slot carried everything: {report:?}"
    );
    assert!(pool.health()[0].quarantined);
    assert!(!pool.health()[1].quarantined);

    // Run 2: the quarantined slot gets no shards at all — zero new
    // failures — and the bits are still exact.
    let (partial, report) = pool.run(&order).unwrap();
    assert_eq!(partial, reference);
    assert_eq!(report.worker_failures, vec![0, 0], "{report:?}");
    assert_eq!(report.retried_shards, 0, "{report:?}");
    assert_eq!(report.quarantined_slots, vec![0], "{report:?}");
    assert_eq!(report.slot_replicates, vec![0, 10]);
}

#[cfg(unix)]
#[test]
fn fully_quarantined_pools_get_probation_not_deadlock() {
    // Every slot dead: runs fail, but each run still *attempts* the
    // work (quarantine lifts when it would empty the pool) instead of
    // deadlocking or panicking.
    let script = dead_worker_script("probation");
    let order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        3,
        4,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    let mut pool = WorkerPool::new(vec![
        Box::new(ChildProcess::new(&script)) as Box<dyn Transport>,
        Box::new(ChildProcess::new(&script)),
    ])
    .unwrap()
    .with_quarantine_after(1)
    .unwrap();
    for round in 0..3 {
        let err = pool.run(&order).unwrap_err();
        assert!(
            err.to_string().contains("slot is dead"),
            "round {round}: {err}"
        );
    }
    // Failures kept accumulating across rounds: probation really
    // re-attempted the slots.
    let health = pool.health();
    assert!(
        health.iter().map(|h| h.failures).sum::<u64>() >= 3,
        "{health:?}"
    );
}

#[cfg(unix)]
#[test]
fn retry_counts_accumulate_across_runs_of_a_persistent_pool() {
    // The fix this PR pins: RunReport.retried_shards resets per run
    // (by design), but a persistent pool's lifetime total must carry
    // across runs — and so must the per-slot retry credit.
    let order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        5,
        4,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    let mut pool = WorkerPool::new(vec![
        Box::new(ChildProcess::new(dead_worker_script("lifetime"))) as Box<dyn Transport>,
        Box::new(ChildProcess::new(worker_bin())),
    ])
    .unwrap()
    // Quarantine only after 10 consecutive failures, so the dead slot
    // keeps getting (and failing) a shard on every run.
    .with_quarantine_after(10)
    .unwrap();

    let reference = order.execute().unwrap();
    for round in 1u64..=3 {
        let (partial, report) = pool.run(&order).unwrap();
        assert_eq!(partial, reference, "round {round}");
        assert_eq!(
            report.retried_shards, 1,
            "per-run report resets: {report:?}"
        );
        assert_eq!(
            pool.lifetime_retried_shards(),
            round,
            "lifetime total must accumulate"
        );
    }
    let health = pool.health();
    assert_eq!(health[0].retries, 0, "the dead slot never served a retry");
    assert_eq!(health[1].retries, 3, "the healthy slot served every retry");
    assert_eq!(health[0].failures, 3);

    // The durable snapshot round-trips the lifetime totals, and a
    // fresh pool of the same transports restores them by description.
    let snapshot = pool.health_snapshot();
    assert_eq!(snapshot.retried_shards, 3);
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: glc_service::PoolHealthSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snapshot);

    let mut reborn = WorkerPool::new(vec![
        Box::new(ChildProcess::new(dead_worker_script("lifetime"))) as Box<dyn Transport>,
        Box::new(ChildProcess::new(worker_bin())),
    ])
    .unwrap()
    .with_quarantine_after(10)
    .unwrap();
    reborn.restore_health(&back);
    assert_eq!(reborn.lifetime_retried_shards(), 3);
    assert_eq!(reborn.health(), health, "restore by transport description");

    // A pool missing one of the transports restores what matches and
    // leaves the new slot fresh.
    let mut reshaped = WorkerPool::new(vec![
        Box::new(ChildProcess::new(worker_bin())) as Box<dyn Transport>,
        Box::new(InProcess),
    ])
    .unwrap();
    reshaped.restore_health(&back);
    let reshaped_health = reshaped.health();
    assert_eq!(reshaped_health[0], health[1], "worker slot restored");
    assert_eq!(
        reshaped_health[1],
        glc_service::SlotHealth::default(),
        "unmatched slot starts fresh"
    );
}

#[test]
fn pool_health_tracks_throughput_for_adaptive_sizing() {
    let order = WorkOrder::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        11,
        8,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0);
    let mut pool = WorkerPool::new(vec![
        Box::new(InProcess) as Box<dyn Transport>,
        Box::new(InProcess),
    ])
    .unwrap();
    let reference = order.execute().unwrap();
    let (first, report) = pool.run(&order).unwrap();
    assert_eq!(first, reference);
    assert_eq!(report.slot_replicates.iter().sum::<u64>(), 8);
    let health = pool.health();
    for slot in &health {
        assert!(slot.observed_throughput().is_some(), "{slot:?}");
        assert_eq!(slot.failures, 0);
    }
    // A second run sizes shards from that history — and the bits are
    // still the reference bits whatever the sizes were.
    let (second, report) = pool.run(&order).unwrap();
    assert_eq!(second, reference);
    assert_eq!(report.slot_replicates.iter().sum::<u64>(), 8);
    assert_eq!(pool.describe_slots(), vec!["in-process", "in-process"]);
}
