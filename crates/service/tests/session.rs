//! Resident query-service tests: the Submit / Extend / Query session
//! protocol, in-process and over a real `glc-serve` child.
//!
//! The acceptance gate of the resident refactor, property-tested and
//! exercised end to end:
//!
//! * extending a cached ensemble from `R` to `R + N` replicates
//!   produces a partial **bitwise-identical** to a fresh `0 .. R + N`
//!   run (Direct + Langevin, `book_and` + `cello_0x1C`);
//! * `Query` after `Extend` performs **zero simulation work** (every
//!   response reports the replicates it simulated);
//! * the coordinator-backed Extend reproduces the in-process bits over
//!   worker child processes.
//!
//! CI runs this file on every push (`query-service` job).

use glc_service::{
    Coordinator, EngineSpec, ExtendBackend, ExtendRequest, ModelSource, QueryRequest, Request,
    Response, SessionSpec, SessionStore,
};
use glc_ssa::run_partial_from;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// Paths of the freshly built binaries under test.
fn serve_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glc-serve")
}

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glc-worker")
}

fn catalog_spec(circuit: &str, engine: EngineSpec, base_seed: u64) -> SessionSpec {
    let entry = glc_gates::catalog::by_id(circuit).expect("catalog circuit");
    let mut spec = SessionSpec::new(
        ModelSource::Catalog(circuit.into()),
        engine,
        base_seed,
        20.0,
        4.0,
    );
    for input in &entry.inputs {
        spec = spec.with_amount(input, 15.0);
    }
    spec
}

/// The fresh-run reference: `run_partial_from` over the whole range,
/// built from the same spec.
fn fresh_reference(spec: &SessionSpec, replicates: u64) -> glc_ssa::EnsemblePartial {
    let mut model = spec.model.load().expect("model loads");
    for (species, amount) in &spec.set_amounts {
        model.set_initial_amount(species, *amount);
    }
    let compiled = glc_ssa::CompiledModel::new(&model).expect("compiles");
    run_partial_from(
        &compiled,
        || spec.engine.build().expect("engine builds"),
        spec.base_seed,
        replicates,
        spec.t_end,
        spec.sample_dt,
    )
    .expect("reference run")
}

proptest! {
    /// The acceptance property, in-process backend: any split of a
    /// replicate budget into an initial extend + a growth extend holds
    /// exactly the fresh-run partial — coverage accounting included.
    #[test]
    fn extend_matches_fresh_run_bitwise_direct(
        first in 1u64..4,
        growth in 1u64..4,
        seed in 0u64..1_000,
        cello in any::<bool>(),
    ) {
        let circuit = if cello { "cello_0x1C" } else { "book_and" };
        let spec = catalog_spec(circuit, EngineSpec::Direct, seed);
        let mut store = SessionStore::new(2, ExtendBackend::InProcess).unwrap();
        let session = store.submit(&spec).unwrap().session;
        store.extend(&session, first).unwrap();
        store.extend(&session, growth).unwrap();
        let reference = fresh_reference(&spec, first + growth);
        prop_assert_eq!(store.partial(&session).unwrap(), &reference);
    }

    /// Langevin: continuous-valued traces, the adversarial case for
    /// any non-exact accumulation (and for the sparse digit windows,
    /// which see far more occupied digits than integer counts).
    #[test]
    fn extend_matches_fresh_run_bitwise_langevin(
        first in 1u64..3,
        growth in 1u64..3,
        seed in 0u64..1_000,
        cello in any::<bool>(),
    ) {
        let circuit = if cello { "cello_0x1C" } else { "book_and" };
        let engine = EngineSpec::Langevin(if cello { 0.1 } else { 0.01 });
        let spec = catalog_spec(circuit, engine, seed);
        let mut store = SessionStore::new(2, ExtendBackend::InProcess).unwrap();
        let session = store.submit(&spec).unwrap().session;
        store.extend(&session, first).unwrap();
        store.extend(&session, growth).unwrap();
        let reference = fresh_reference(&spec, first + growth);
        prop_assert_eq!(store.partial(&session).unwrap(), &reference);
    }
}

#[test]
fn coordinator_backend_matches_in_process_extends_bitwise() {
    // Extends fanned out over real glc-worker children merge into the
    // same resident bits as the single-threaded in-process backend.
    let spec = catalog_spec("book_and", EngineSpec::Direct, 7);
    let coordinator = Coordinator::new(worker_bin(), 2).unwrap();
    let mut sharded = SessionStore::new(2, ExtendBackend::Coordinator(coordinator)).unwrap();
    let mut local = SessionStore::new(2, ExtendBackend::InProcess).unwrap();
    let session = sharded.submit(&spec).unwrap().session;
    assert_eq!(local.submit(&spec).unwrap().session, session);
    for batch in [5u64, 3, 4] {
        sharded.extend(&session, batch).unwrap();
        local.extend(&session, batch).unwrap();
    }
    assert_eq!(
        sharded.partial(&session).unwrap(),
        local.partial(&session).unwrap()
    );
    assert_eq!(
        sharded.partial(&session).unwrap(),
        &fresh_reference(&spec, 12)
    );
}

/// A line-oriented client over a spawned `glc-serve` child.
struct ServeClient {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ServeClient {
    fn spawn(args: &[&str]) -> Self {
        let mut child = Command::new(serve_bin())
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn glc-serve");
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        ServeClient {
            child,
            stdin,
            stdout,
        }
    }

    fn request(&mut self, request: &Request) -> Response {
        let line = serde_json::to_string(request).expect("encode request");
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut reply = String::new();
        self.stdout.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("decode response")
    }

    fn shutdown(mut self) {
        drop(self.stdin); // EOF ends the serve loop.
        let status = self.child.wait().expect("glc-serve exits");
        assert!(status.success(), "glc-serve exited with {status}");
    }
}

#[test]
fn glc_serve_end_to_end_submit_extend_query() {
    let spec = catalog_spec("book_and", EngineSpec::Direct, 11);
    let mut client = ServeClient::spawn(&["--capacity", "4"]);

    let Response::Submitted(submitted) = client.request(&Request::Submit(spec.clone())) else {
        panic!("expected Submitted");
    };
    assert!(!submitted.warm);
    assert_eq!(submitted.simulated, 0);
    let session = submitted.session.clone();

    // Extend twice: 6 then 4 replicates.
    for (batch, expected_total) in [(6u64, 6u64), (4, 10)] {
        let Response::Extended(extended) = client.request(&Request::Extend(ExtendRequest {
            session: session.clone(),
            replicates: batch,
        })) else {
            panic!("expected Extended");
        };
        assert_eq!(extended.replicates, expected_total);
        assert_eq!(extended.simulated, batch);
    }

    // Query: zero simulation work, figures bitwise equal to a fresh
    // 0..10 in-process run finalized directly.
    let Response::Queried(queried) = client.request(&Request::Query(QueryRequest {
        session: session.clone(),
        species: vec!["GFP".into()],
    })) else {
        panic!("expected Queried");
    };
    assert_eq!(queried.simulated, 0, "queries must not simulate");
    assert_eq!(queried.replicates, 10);
    let reference = fresh_reference(&spec, 10).finalize().expect("finalize");
    assert_eq!(queried.mean.len(), reference.mean.len());
    for (s, species) in queried.mean.species().iter().enumerate() {
        let mine = queried.mean.series_at(s);
        let refs = reference.mean.series(species).expect("species");
        for (k, (a, b)) in mine.iter().zip(refs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "mean of {species} at {k}");
        }
        let mine = queried.std_dev.series_at(s);
        let refs = reference.std_dev.series(species).expect("species");
        for (k, (a, b)) in mine.iter().zip(refs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "σ of {species} at {k}");
        }
    }
    assert_eq!(queried.noise.len(), 1);
    assert_eq!(queried.noise[0].species, "GFP");
    assert_eq!(queried.noise[0].points.len(), queried.mean.len());

    // A second identical query does no work and returns the same line.
    let again = client.request(&Request::Query(QueryRequest {
        session: session.clone(),
        species: vec!["GFP".into()],
    }));
    assert_eq!(
        serde_json::to_string(&again).unwrap(),
        serde_json::to_string(&Response::Queried(queried)).unwrap()
    );

    // Malformed and unknown-session requests keep the service alive.
    let err = client.request(&Request::Extend(ExtendRequest {
        session: "sess-bogus".into(),
        replicates: 1,
    }));
    assert!(matches!(err, Response::Error(_)));
    let Response::Stats(stats) = client.request(&Request::Stats) else {
        panic!("expected Stats");
    };
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.simulated, 10);

    client.shutdown();
}

#[test]
fn glc_serve_worker_backend_matches_fresh_run() {
    // Submit → extend ×2 → query over a glc-serve that fans extends
    // out to glc-worker children: still bitwise the fresh run.
    let spec = catalog_spec("book_and", EngineSpec::Direct, 23);
    let mut client = ServeClient::spawn(&["--workers", "2", "--worker-bin", worker_bin()]);
    let Response::Submitted(submitted) = client.request(&Request::Submit(spec.clone())) else {
        panic!("expected Submitted");
    };
    for batch in [4u64, 3] {
        let reply = client.request(&Request::Extend(ExtendRequest {
            session: submitted.session.clone(),
            replicates: batch,
        }));
        assert!(matches!(reply, Response::Extended(_)), "{reply:?}");
    }
    let Response::Queried(queried) = client.request(&Request::Query(QueryRequest {
        session: submitted.session.clone(),
        species: vec![],
    })) else {
        panic!("expected Queried");
    };
    assert_eq!(queried.simulated, 0);
    let reference = fresh_reference(&spec, 7).finalize().expect("finalize");
    for (s, species) in queried.mean.species().iter().enumerate() {
        let refs = reference.mean.series(species).expect("species");
        for (k, (a, b)) in queried.mean.series_at(s).iter().zip(refs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "mean of {species} at {k}");
        }
    }
    client.shutdown();
}

#[test]
fn glc_serve_echoes_request_ids() {
    use glc_service::Envelope;
    use serde::Value;
    let spec = catalog_spec("book_not", EngineSpec::Direct, 5);
    let mut client = ServeClient::spawn(&[]);

    // An id-carrying Submit: the reply carries the same id.
    let line = serde_json::to_string(&Envelope::with_id(
        Value::Num(7.0),
        Request::Submit(spec.clone()),
    ))
    .unwrap();
    writeln!(client.stdin, "{line}").unwrap();
    client.stdin.flush().unwrap();
    let mut reply = String::new();
    client.stdout.read_line(&mut reply).unwrap();
    let decoded: Envelope<Response> = serde_json::from_str(reply.trim()).unwrap();
    assert_eq!(decoded.id, Some(Value::Num(7.0)));
    let Response::Submitted(submitted) = decoded.body else {
        panic!("expected Submitted, got {:?}", decoded.body);
    };

    // Pipelined requests with distinct ids come back correlated, in
    // order, each with its own id — including the unit-variant Stats
    // spelling `{"id":…,"Stats":null}`.
    let lines = [
        serde_json::to_string(&Envelope::with_id(
            Value::Str("x-1".into()),
            Request::Extend(ExtendRequest {
                session: submitted.session.clone(),
                replicates: 2,
            }),
        ))
        .unwrap(),
        "{\"id\":\"x-2\",\"Stats\":null}".to_string(),
        // No id: the reply must be the bare historical format.
        serde_json::to_string(&Request::Stats).unwrap(),
    ];
    for line in &lines {
        writeln!(client.stdin, "{line}").unwrap();
    }
    client.stdin.flush().unwrap();
    let mut replies = Vec::new();
    for _ in 0..lines.len() {
        let mut reply = String::new();
        client.stdout.read_line(&mut reply).unwrap();
        replies.push(reply.trim().to_string());
    }
    let first: Envelope<Response> = serde_json::from_str(&replies[0]).unwrap();
    assert_eq!(first.id, Some(Value::Str("x-1".into())));
    assert!(matches!(first.body, Response::Extended(_)));
    let second: Envelope<Response> = serde_json::from_str(&replies[1]).unwrap();
    assert_eq!(second.id, Some(Value::Str("x-2".into())));
    assert!(matches!(second.body, Response::Stats(_)));
    assert!(
        replies[2].starts_with("{\"Stats\":"),
        "id-less request must get the bare reply format: {}",
        replies[2]
    );
    client.shutdown();
}

#[test]
fn glc_serve_relay_backend_matches_fresh_run() {
    // One extend driven through a real glc-relay over localhost TCP
    // (the remote-transport deployment shape): submit → extend → query
    // against `glc-serve --relay` is still bitwise the fresh run.
    let mut relay = Command::new(env!("CARGO_BIN_EXE_glc-relay"))
        .args(["--listen", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn glc-relay");
    let mut banner = String::new();
    BufReader::new(relay.stdout.take().expect("stdout piped"))
        .read_line(&mut banner)
        .expect("read bound address");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("address")
        .to_string();

    let spec = catalog_spec("book_and", EngineSpec::Direct, 31);
    let mut client = ServeClient::spawn(&["--relay", &addr, "--relay", &addr]);
    let Response::Submitted(submitted) = client.request(&Request::Submit(spec.clone())) else {
        panic!("expected Submitted");
    };
    for batch in [4u64, 3] {
        let reply = client.request(&Request::Extend(ExtendRequest {
            session: submitted.session.clone(),
            replicates: batch,
        }));
        assert!(matches!(reply, Response::Extended(_)), "{reply:?}");
    }
    let Response::Queried(queried) = client.request(&Request::Query(QueryRequest {
        session: submitted.session.clone(),
        species: vec![],
    })) else {
        panic!("expected Queried");
    };
    assert_eq!(queried.simulated, 0);
    let reference = fresh_reference(&spec, 7).finalize().expect("finalize");
    for (s, species) in queried.mean.species().iter().enumerate() {
        let refs = reference.mean.series(species).expect("species");
        for (k, (a, b)) in queried.mean.series_at(s).iter().zip(refs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "mean of {species} at {k}");
        }
    }
    client.shutdown();
    let _ = relay.kill();
    let _ = relay.wait();
}

#[test]
fn glc_serve_survives_garbage_lines() {
    let mut client = ServeClient::spawn(&[]);
    writeln!(client.stdin, "this is not json").unwrap();
    client.stdin.flush().unwrap();
    let mut reply = String::new();
    client.stdout.read_line(&mut reply).unwrap();
    let decoded: Response = serde_json::from_str(reply.trim()).unwrap();
    assert!(matches!(decoded, Response::Error(_)), "{decoded:?}");
    // Still serving after the error.
    let Response::Stats(stats) = client.request(&Request::Stats) else {
        panic!("expected Stats");
    };
    assert_eq!(stats.sessions, 0);
    client.shutdown();
}
