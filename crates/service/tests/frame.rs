//! Frame-codec robustness: the length-prefixed wire format must fail
//! **closed** under everything a broken pipe, a hostile peer, or a
//! nonblocking socket can produce — split reads at arbitrary
//! boundaries, interleaved correlation ids, oversized length
//! prefixes, truncated frames — with no panic and no partially
//! trusted payload.

use glc_service::frame::{
    decode_message, encode_frame, encode_message, read_frame, write_frame, FrameDecoder,
    FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_PAYLOAD,
};
use glc_service::RelayReply;
use proptest::prelude::*;

/// A deterministic pseudo-random payload: the vendored proptest has no
/// byte strategies, so bytes are synthesized from a u64 seed with a
/// splitmix-style mix.
fn payload_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

/// Splits `wire` at pseudo-random points derived from `seed` and
/// feeds the pieces to the decoder, returning every decoded frame.
fn feed_in_splits(decoder: &mut FrameDecoder, wire: &[u8], seed: u64) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let mut state = seed | 1;
    let mut at = 0;
    while at < wire.len() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Piece sizes from 1 byte to ~32: small enough to cut headers
        // and payloads everywhere interesting.
        let take = (1 + (state as usize) % 32).min(wire.len() - at);
        decoder.push(&wire[at..at + take]);
        at += take;
        while let Some(frame) = decoder.next_frame().expect("valid wire never errors") {
            frames.push(frame);
        }
    }
    frames
}

proptest! {
    /// Any sequence of frames survives any split pattern: the decoder
    /// reassembles exactly the payloads that were written, in order,
    /// and ends at a clean frame boundary.
    #[test]
    fn arbitrary_splits_reassemble_exactly(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..6),
        lens in proptest::collection::vec(0usize..600, 1..6),
        split_seed in 0u64..u64::MAX,
    ) {
        let payloads: Vec<Vec<u8>> = seeds
            .iter()
            .zip(&lens)
            .map(|(&seed, &len)| payload_bytes(seed, len))
            .collect();
        let mut wire = Vec::new();
        for payload in &payloads {
            write_frame(&mut wire, payload).unwrap();
        }
        let mut decoder = FrameDecoder::new();
        let frames = feed_in_splits(&mut decoder, &wire, split_seed);
        prop_assert_eq!(&frames, &payloads);
        prop_assert!(!decoder.has_partial(), "ended inside a frame");
    }

    /// A frame truncated at any cut point is an error (blocking
    /// reader) or a held partial (incremental decoder) — never a
    /// payload, never a panic.
    #[test]
    fn truncation_never_yields_a_partial_payload(
        seed in 0u64..u64::MAX,
        len in 1usize..300,
        cut_frac in 0u64..1000,
    ) {
        let frame = encode_frame(&payload_bytes(seed, len)).unwrap();
        // Cut strictly inside the frame.
        let cut = 1 + (cut_frac as usize * (frame.len() - 2)) / 1000;
        let truncated = &frame[..cut];
        // Blocking reader: EOF mid-frame is a protocol error.
        let outcome = read_frame(&mut &truncated[..]);
        match outcome {
            Err(err) => prop_assert!(
                err.to_string().contains("truncated frame"),
                "cut {cut}: {err}"
            ),
            Ok(got) => prop_assert!(false, "cut {cut} produced {got:?}"),
        }
        // Incremental decoder: the bytes are held as a partial, so the
        // connection owner can tell a mid-frame hangup from a clean
        // close.
        let mut decoder = FrameDecoder::new();
        decoder.push(truncated);
        prop_assert_eq!(decoder.next_frame().unwrap(), None);
        prop_assert!(decoder.has_partial());
    }

    /// A length prefix beyond the cap is rejected as soon as the
    /// header is complete — before any payload allocation — on both
    /// decode paths.
    #[test]
    fn oversized_lengths_fail_closed_before_allocation(
        extra in 1u64..u64::from(u32::MAX) - MAX_FRAME_PAYLOAD as u64,
        junk_seed in 0u64..u64::MAX,
    ) {
        let len = MAX_FRAME_PAYLOAD as u32 + extra as u32;
        let mut wire = Vec::from(FRAME_MAGIC);
        wire.extend_from_slice(&len.to_be_bytes());
        // A few junk bytes after the header: the decoder must not
        // wait for `len` bytes before rejecting.
        wire.extend_from_slice(&payload_bytes(junk_seed, 8));
        let err = read_frame(&mut &wire[..]).unwrap_err().to_string();
        prop_assert!(err.contains("exceeds"), "{err}");
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire[..FRAME_HEADER_LEN]);
        let err = decoder.next_frame().unwrap_err().to_string();
        prop_assert!(err.contains("exceeds"), "{err}");
    }

    /// A corrupted magic fails on the first byte that proves it wrong,
    /// whichever of the four bytes was flipped.
    #[test]
    fn corrupt_magic_fails_on_the_first_wrong_byte(
        byte_index in 0usize..4,
        flip in 1u64..256,
        seed in 0u64..u64::MAX,
    ) {
        let mut frame = encode_frame(&payload_bytes(seed, 16)).unwrap();
        frame[byte_index] ^= flip as u8;
        let err = read_frame(&mut &frame[..]).unwrap_err().to_string();
        prop_assert!(err.contains("bad frame magic"), "{err}");
        // The incremental decoder needs only the bytes up to and
        // including the corrupt one.
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame[..=byte_index]);
        let err = decoder.next_frame().unwrap_err().to_string();
        prop_assert!(err.contains("bad frame magic"), "{err}");
    }

    /// Interleaved correlation ids survive the envelope round trip:
    /// replies written in any order decode to exactly their own id and
    /// body, so a pipelined slot can attribute every reply.
    #[test]
    fn interleaved_ids_round_trip_unconfused(
        ids in proptest::collection::vec(0u64..1 << 53, 2..8),
        split_seed in 0u64..u64::MAX,
    ) {
        let mut wire = Vec::new();
        for &id in &ids {
            let body = RelayReply::Error(format!("reply-{id}"));
            let message = encode_message(id, &body).unwrap();
            write_frame(&mut wire, &message).unwrap();
        }
        let mut decoder = FrameDecoder::new();
        let frames = feed_in_splits(&mut decoder, &wire, split_seed);
        prop_assert_eq!(frames.len(), ids.len());
        for (frame, &wanted) in frames.iter().zip(&ids) {
            let (id, reply): (u64, RelayReply) = decode_message(frame).unwrap();
            prop_assert_eq!(id, wanted);
            match reply {
                RelayReply::Error(msg) => {
                    prop_assert_eq!(msg, format!("reply-{wanted}"))
                }
                other => prop_assert!(false, "wrong body {other:?}"),
            }
        }
    }

    /// Uncorrelatable or malformed envelopes fail closed: not UTF-8,
    /// not JSON, or an id that is missing, negative or fractional all
    /// error rather than guessing an attribution.
    #[test]
    fn uncorrelatable_replies_are_rejected(
        seed in 0u64..u64::MAX,
        shape in 0usize..4,
    ) {
        let payload: Vec<u8> = match shape {
            // Invalid UTF-8 (0xff can never appear in UTF-8).
            0 => vec![0xff, 0xfe, b'{', b'}'],
            // Valid UTF-8, invalid JSON.
            1 => payload_bytes(seed, 24)
                .into_iter()
                .map(|b| b'a' + (b % 26))
                .collect(),
            // Valid envelope JSON with no id.
            2 => b"{\"Error\":\"no id here\"}".to_vec(),
            // Valid envelope JSON with a fractional id.
            _ => b"{\"id\":1.5,\"Error\":\"bad id\"}".to_vec(),
        };
        let outcome: Result<(u64, RelayReply), _> = decode_message(&payload);
        prop_assert!(outcome.is_err(), "shape {shape} decoded");
    }
}
