//! Observability-layer tests: the metrics surface end-to-end.
//!
//! The acceptance gate of the metrics layer:
//!
//! * a real `glc-serve --metrics-addr` child serves a Prometheus-style
//!   scrape under live submit/extend/query traffic: every line parses,
//!   latency buckets are monotone, and session footprints are > 0;
//! * the extended Stats wire reply is **backward-compatible**: a
//!   counters-only reply from an old server still decodes (new fields
//!   default) and the new reply round-trips;
//! * recording never perturbs results — Stats requests and scrape
//!   renders interleaved at arbitrary points between submit/extend/
//!   query leave the final Query bitwise identical to an
//!   uninstrumented run, for Direct + Langevin on both circuits.
//!
//! CI runs this file on every push (`metrics-scrape` job).

use glc_service::{
    EngineSpec, ExtendBackend, ExtendRequest, MetricsRegistry, ModelSource, QueryRequest, Request,
    Response, SessionSpec, SessionStore,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read as _, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::Arc;

fn serve_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glc-serve")
}

fn catalog_spec(circuit: &str, engine: EngineSpec, base_seed: u64) -> SessionSpec {
    let entry = glc_gates::catalog::by_id(circuit).expect("catalog circuit");
    let mut spec = SessionSpec::new(
        ModelSource::Catalog(circuit.into()),
        engine,
        base_seed,
        20.0,
        4.0,
    );
    for input in &entry.inputs {
        spec = spec.with_amount(input, 15.0);
    }
    spec
}

/// A `glc-serve` child with a live metrics listener: the protocol on
/// stdin/stdout, the bound scrape address read off the stderr banner.
struct MetricsServe {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    scrape_addr: String,
}

impl MetricsServe {
    fn spawn(extra: &[&str]) -> Self {
        let mut child = Command::new(serve_bin())
            .args(["--metrics-addr", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn glc-serve");
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        // The bound address goes to stderr so stdout stays
        // protocol-only; `:0` means we must learn the real port.
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut banner = String::new();
        stderr.read_line(&mut banner).expect("read metrics banner");
        let scrape_addr = banner
            .trim()
            .rsplit(' ')
            .next()
            .expect("address token")
            .to_string();
        assert!(
            banner.contains("metrics listening on") && scrape_addr.contains(':'),
            "unexpected banner: {banner:?}"
        );
        MetricsServe {
            child,
            stdin,
            stdout,
            scrape_addr,
        }
    }

    fn request(&mut self, request: &Request) -> Response {
        let line = serde_json::to_string(request).expect("encode request");
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut reply = String::new();
        self.stdout.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("decode response")
    }

    /// One HTTP scrape: returns the plain-text body.
    fn scrape(&self) -> String {
        let mut stream =
            std::net::TcpStream::connect(&self.scrape_addr).expect("connect to scrape");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: glc\r\nConnection: close\r\n\r\n")
            .expect("send scrape request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read scrape");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("HTTP head/body split");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        body.to_string()
    }
}

impl Drop for MetricsServe {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Parses one exposition body into (series-with-labels, value) pairs,
/// asserting every line is a comment or a parseable sample.
fn parse_exposition(body: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in body.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable exposition line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line:?}"));
        samples.push((series.to_string(), value));
    }
    samples
}

#[test]
fn live_glc_serve_scrape_reports_families_under_traffic() {
    let mut serve = MetricsServe::spawn(&["--capacity", "4"]);
    let spec = catalog_spec("book_and", EngineSpec::Direct, 21);

    // Cold scrape: the request histograms exist (all zero), no
    // footprints yet.
    let cold = parse_exposition(&serve.scrape());
    for kind in ["submit", "extend", "query", "stats"] {
        assert!(
            cold.iter()
                .any(|(series, _)| series
                    == &format!("glc_request_seconds_count{{kind=\"{kind}\"}}")),
            "missing {kind} histogram in cold scrape"
        );
    }

    // Drive live traffic.
    let Response::Submitted(submitted) = serve.request(&Request::Submit(spec.clone())) else {
        panic!("expected Submitted");
    };
    let session = submitted.session.clone();
    let Response::Extended(extended) = serve.request(&Request::Extend(ExtendRequest {
        session: session.clone(),
        replicates: 4,
    })) else {
        panic!("expected Extended");
    };
    assert_eq!(extended.replicates, 4);
    let Response::Queried(_) = serve.request(&Request::Query(QueryRequest {
        session: session.clone(),
        species: vec![],
    })) else {
        panic!("expected Queried");
    };

    let body = serve.scrape();
    let samples = parse_exposition(&body);
    let value = |series: &str| {
        samples
            .iter()
            .find(|(s, _)| s == series)
            .unwrap_or_else(|| panic!("missing series {series} in:\n{body}"))
            .1
    };

    // One request of each kind was recorded.
    for kind in ["submit", "extend", "query"] {
        assert_eq!(
            value(&format!("glc_request_seconds_count{{kind=\"{kind}\"}}")),
            1.0,
            "{kind}"
        );
        assert!(
            value(&format!("glc_request_seconds_sum{{kind=\"{kind}\"}}")) > 0.0,
            "{kind} latency sum"
        );
    }

    // Latency buckets are monotone non-decreasing within each series.
    for kind in ["submit", "extend", "query", "stats"] {
        let prefix = format!("glc_request_seconds_bucket{{kind=\"{kind}\",le=");
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|(series, _)| series.starts_with(&prefix))
            .map(|&(_, value)| value)
            .collect();
        assert!(buckets.len() > 10, "{kind}: too few buckets");
        for window in buckets.windows(2) {
            assert!(
                window[0] <= window[1],
                "{kind}: buckets must be cumulative-monotone, got {buckets:?}"
            );
        }
    }

    // Service gauges and the session footprint made it out.
    assert_eq!(value("glc_replicates_simulated_total"), 4.0);
    assert_eq!(value("glc_sessions_resident"), 1.0);
    let footprint_bytes = value(&format!(
        "glc_session_footprint{{session=\"{session}\",unit=\"bytes\"}}"
    ));
    assert!(footprint_bytes > 0.0, "session footprint must be > 0");
    assert_eq!(
        value(&format!(
            "glc_session_footprint{{session=\"{session}\",unit=\"replicates\"}}"
        )),
        4.0
    );

    // The wire Stats reply carries the same observability surface.
    let Response::Stats(stats) = serve.request(&Request::Stats) else {
        panic!("expected Stats");
    };
    assert_eq!(stats.simulated, 4);
    assert_eq!(stats.footprints.len(), 1);
    assert!(stats.footprints[0].bytes > 0);
    assert!(stats.footprints[0].cells > 0);
    let submit_latency = stats
        .latency
        .iter()
        .find(|entry| entry.kind == "submit")
        .expect("submit latency on the wire");
    assert_eq!(submit_latency.histogram.count, 1);
    for window in submit_latency.histogram.buckets.windows(2) {
        assert!(window[0].1 <= window[1].1, "wire buckets monotone");
        assert!(window[0].0 < window[1].0, "wire bounds ascending");
    }
}

#[test]
fn old_wire_stats_decode_with_defaults() {
    // A counters-only Stats reply, as every pre-observability server
    // sent it: the new client must decode it, defaulting what is
    // missing — the backward-compatibility half of the wire contract.
    let old = r#"{"Stats":{"sessions":2,"evictions":1,"simulated":40,"spilled":1,
        "reloads":0,"snapshots":5,"model_cache_hits":3,"model_cache_misses":2}}"#;
    let back: Response = serde_json::from_str(old).expect("old wire shape decodes");
    let Response::Stats(stats) = back else {
        panic!("expected Stats, got {back:?}");
    };
    assert_eq!(stats.sessions, 2);
    assert_eq!(stats.snapshots, 5);
    assert_eq!(stats.spill_bytes, 0, "new counters default");
    assert_eq!(stats.spill_gc_evictions, 0);
    assert_eq!(stats.pool_retries, 0);
    assert!(stats.latency.is_empty());
    assert!(stats.slots.is_empty());
    assert!(stats.footprints.is_empty());

    // And the new, fully-populated shape round-trips.
    let mut store = SessionStore::new(2, ExtendBackend::InProcess)
        .unwrap()
        .with_metrics(Arc::new(MetricsRegistry::new()));
    let spec = catalog_spec("book_not", EngineSpec::Direct, 3);
    let Response::Submitted(submitted) = store.handle(&Request::Submit(spec)) else {
        panic!("expected Submitted");
    };
    let Response::Extended(_) = store.handle(&Request::Extend(ExtendRequest {
        session: submitted.session,
        replicates: 2,
    })) else {
        panic!("expected Extended");
    };
    let stats = store.stats();
    assert!(!stats.latency.is_empty());
    assert!(!stats.footprints.is_empty());
    let json = serde_json::to_string(&stats).unwrap();
    let back: glc_service::ServiceStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
}

proptest! {
    /// The determinism property the whole layer leans on: metrics
    /// recording is observation-only. Interleave Stats requests and
    /// scrape renders at arbitrary points between submit/extend/query
    /// and the final Query response is **bitwise** what an
    /// uninstrumented store produces — Direct + Langevin, book_and +
    /// cello_0x1C.
    #[test]
    fn interleaved_stats_and_scrapes_never_perturb_results(
        first in 1u64..3,
        growth in 1u64..3,
        seed in 0u64..500,
        cello in any::<bool>(),
        langevin in any::<bool>(),
        interleave in 0u64..64,
    ) {
        let circuit = if cello { "cello_0x1C" } else { "book_and" };
        let engine = if langevin {
            EngineSpec::Langevin(if cello { 0.1 } else { 0.01 })
        } else {
            EngineSpec::Direct
        };
        let spec = catalog_spec(circuit, engine, seed);

        // Reference: no metrics, no Stats traffic.
        let mut plain = SessionStore::new(2, ExtendBackend::InProcess).unwrap();
        let session = plain.submit(&spec).unwrap().session;
        plain.extend(&session, first).unwrap();
        plain.extend(&session, growth).unwrap();
        let reference = plain.handle(&Request::Query(QueryRequest {
            session: session.clone(),
            species: vec![],
        }));

        // Instrumented: same schedule, with a Stats request and a
        // scrape render wedged in wherever the mask says.
        let registry = Arc::new(MetricsRegistry::new());
        let mut wired = SessionStore::new(2, ExtendBackend::InProcess)
            .unwrap()
            .with_metrics(Arc::clone(&registry));
        let poke = |store: &mut SessionStore, bit: u64| {
            if interleave & (1 << bit) != 0 {
                let reply = store.handle(&Request::Stats);
                assert!(matches!(reply, Response::Stats(_)));
            }
            if interleave & (1 << (bit + 1)) != 0 {
                let _ = registry.render_prometheus();
            }
        };
        poke(&mut wired, 0);
        wired.handle(&Request::Submit(spec.clone()));
        poke(&mut wired, 2);
        wired.handle(&Request::Extend(ExtendRequest {
            session: session.clone(),
            replicates: first,
        }));
        poke(&mut wired, 4);
        wired.handle(&Request::Extend(ExtendRequest {
            session: session.clone(),
            replicates: growth,
        }));
        let observed = wired.handle(&Request::Query(QueryRequest {
            session: session.clone(),
            species: vec![],
        }));

        // Canonical-JSON equality is the bitwise contract (NaN-valued
        // noise figures make PartialEq useless here, as in the
        // protocol tests).
        prop_assert_eq!(
            serde_json::to_string(&observed).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "metrics recording must not move a bit"
        );
        prop_assert_eq!(
            wired.partial(&session).unwrap(),
            plain.partial(&session).unwrap()
        );
    }
}
