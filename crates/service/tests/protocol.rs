//! End-to-end worker-protocol tests: real `glc-worker` child
//! processes, driven by the [`Coordinator`], checked **bitwise**
//! against the in-process `run_ensemble`.
//!
//! This is the acceptance gate of the sharding refactor: the same base
//! seed must produce the same ensemble bits whether the replicates run
//! on one thread, many threads, or across process boundaries — CI runs
//! this on every push (`worker-protocol` job).

use glc_service::{Coordinator, EngineSpec, ModelSource, WorkOrder};
use glc_ssa::{run_ensemble, Direct, Engine, Ensemble, Langevin};

/// Path of the freshly built worker binary under test.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glc-worker")
}

fn book_and_order(engine: EngineSpec, replicates: u64) -> WorkOrder {
    WorkOrder::new(
        ModelSource::Catalog("book_and".into()),
        engine,
        7,
        replicates,
        60.0,
        6.0,
    )
    .with_amount("LacI", 15.0)
    .with_amount("TetR", 15.0)
}

/// Trace-level bitwise equality (PartialEq on f64 can hide ±0 / NaN
/// differences; compare the actual bits).
fn assert_bitwise_equal(a: &Ensemble, b: &Ensemble) {
    assert_eq!(a.replicates, b.replicates);
    for (mine, theirs) in [(&a.mean, &b.mean), (&a.std_dev, &b.std_dev)] {
        assert_eq!(mine.species(), theirs.species());
        assert_eq!(mine.len(), theirs.len());
        for (s, _) in mine.species().iter().enumerate() {
            let x = mine.series_at(s);
            let y = theirs.series_at(s);
            for (k, (va, vb)) in x.iter().zip(y).enumerate() {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "species {s} sample {k}: {va} vs {vb}"
                );
            }
        }
    }
}

#[test]
fn coordinator_over_two_workers_matches_in_process_bitwise() {
    let order = book_and_order(EngineSpec::Direct, 12);
    let sharded = Coordinator::new(worker_bin(), 2)
        .unwrap()
        .run_ensemble(&order)
        .unwrap();
    let model = order.compile_model().unwrap();
    let in_process = run_ensemble(
        &model,
        || Box::new(Direct::new()) as Box<dyn Engine>,
        12,
        60.0,
        6.0,
        7,
        4,
    )
    .unwrap();
    assert_bitwise_equal(&sharded, &in_process);
}

#[test]
fn worker_count_does_not_change_the_bits() {
    // Langevin traces are continuous-valued: without exact partial
    // accumulation, different shardings would differ in the last bits.
    let order = book_and_order(EngineSpec::Langevin(0.2), 9);
    let reference = Coordinator::new(worker_bin(), 1)
        .unwrap()
        .run_ensemble(&order)
        .unwrap();
    for workers in [2usize, 3, 5] {
        let sharded = Coordinator::new(worker_bin(), workers)
            .unwrap()
            .run_ensemble(&order)
            .unwrap();
        assert_bitwise_equal(&sharded, &reference);
    }
    let model = order.compile_model().unwrap();
    let in_process = run_ensemble(
        &model,
        || Box::new(Langevin::new(0.2).unwrap()) as Box<dyn Engine>,
        9,
        60.0,
        6.0,
        7,
        3,
    )
    .unwrap();
    assert_bitwise_equal(&reference, &in_process);
}

#[test]
fn sbml_work_orders_travel_whole_models() {
    // A fully self-contained order: the model rides inside the JSON,
    // so the worker needs no shared catalog.
    let entry = glc_gates::catalog::by_id("book_not").unwrap();
    let mut model = entry.model.clone();
    model.set_initial_amount("LacI", 15.0);
    let order = WorkOrder::new(
        ModelSource::Sbml(glc_model::sbml::write(&model)),
        EngineSpec::Direct,
        11,
        6,
        30.0,
        5.0,
    );
    let sharded = Coordinator::new(worker_bin(), 3)
        .unwrap()
        .run_ensemble(&order)
        .unwrap();
    let compiled = order.compile_model().unwrap();
    let in_process = run_ensemble(
        &compiled,
        || Box::new(Direct::new()) as Box<dyn Engine>,
        6,
        30.0,
        5.0,
        11,
        2,
    )
    .unwrap();
    assert_bitwise_equal(&sharded, &in_process);
}

/// Writes an executable shell script that fails on its first
/// invocation (creating a marker file) and execs the real worker on
/// every later one — a deterministic "transiently lost worker".
#[cfg(unix)]
fn flaky_worker_script(label: &str) -> std::path::PathBuf {
    use std::os::unix::fs::PermissionsExt as _;
    let dir = std::env::temp_dir().join(format!("glc-flaky-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create script dir");
    let marker = dir.join("first-attempt-burned");
    let _ = std::fs::remove_dir(&marker);
    let script = dir.join("flaky-worker.sh");
    // `mkdir` is atomic, so exactly one concurrently-spawned child
    // claims the injected failure; stdin is drained first so the
    // coordinator's order write never sees a broken pipe.
    std::fs::write(
        &script,
        format!(
            "#!/bin/sh\norder=$(cat)\nif mkdir '{marker}' 2>/dev/null; then\n  echo 'injected transient failure' >&2\n  exit 1\nfi\nprintf '%s' \"$order\" | '{worker}' \"$@\"\n",
            marker = marker.display(),
            worker = worker_bin(),
        ),
    )
    .expect("write script");
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("chmod script");
    script
}

#[cfg(unix)]
#[test]
fn failed_shard_is_retried_once_and_reproduces_the_bits() {
    // One worker child dies on its first attempt; the coordinator
    // re-issues the shard (same absolute seed range → idempotent), so
    // the aggregate is still bitwise the in-process run, and the
    // report carries the failure.
    let order = book_and_order(EngineSpec::Direct, 12);
    let coordinator = Coordinator::new(flaky_worker_script("retry"), 2).unwrap();
    let (partial, report) = coordinator.run_with_report(&order).unwrap();
    assert_eq!(report.total_failures(), 1, "{report:?}");
    assert_eq!(report.retried_shards, 1, "{report:?}");
    assert_eq!(report.worker_failures.len(), 2);
    let model = order.compile_model().unwrap();
    let in_process = run_ensemble(
        &model,
        || Box::new(Direct::new()) as Box<dyn Engine>,
        12,
        60.0,
        6.0,
        7,
        4,
    )
    .unwrap();
    assert_bitwise_equal(&partial.finalize().unwrap(), &in_process);
}

#[cfg(unix)]
#[test]
fn permanently_failing_worker_exhausts_its_retry() {
    use std::os::unix::fs::PermissionsExt as _;
    // A worker that always fails (after draining its order, so the
    // coordinator reaches the collect path) burns the first attempt
    // and the one retry, then surfaces the failure.
    let dir = std::env::temp_dir().join(format!("glc-dead-worker-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create script dir");
    let script = dir.join("dead-worker.sh");
    std::fs::write(
        &script,
        "#!/bin/sh\ncat > /dev/null\necho 'permanently broken' >&2\nexit 1\n",
    )
    .expect("write script");
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("chmod script");
    let order = book_and_order(EngineSpec::Direct, 4);
    let err = Coordinator::new(&script, 2)
        .unwrap()
        .run_with_report(&order)
        .unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("exited with") && text.contains("permanently broken"),
        "{text}"
    );
}

#[test]
fn healthy_runs_report_zero_failures() {
    let order = book_and_order(EngineSpec::Direct, 6);
    let (_, report) = Coordinator::new(worker_bin(), 3)
        .unwrap()
        .run_with_report(&order)
        .unwrap();
    assert_eq!(report.total_failures(), 0);
    assert_eq!(report.retried_shards, 0);
    assert_eq!(report.worker_failures, vec![0, 0, 0]);
}

#[test]
fn worker_failures_surface_with_stderr() {
    let mut order = book_and_order(EngineSpec::Direct, 4);
    order.model = ModelSource::Catalog("no_such_circuit".into());
    let err = Coordinator::new(worker_bin(), 2)
        .unwrap()
        .run(&order)
        .unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("no_such_circuit"),
        "error should carry the worker's stderr: {text}"
    );
}

#[test]
fn missing_worker_binary_is_a_clean_error() {
    let order = book_and_order(EngineSpec::Direct, 2);
    let err = Coordinator::new("/nonexistent/glc-worker", 2)
        .unwrap()
        .run(&order)
        .unwrap_err();
    assert!(err.to_string().contains("cannot spawn"), "{err}");
}
