//! Durable-session tests: the `--spill-dir` backing store, in-process
//! and over a real killed-and-restarted `glc-serve` child.
//!
//! The acceptance gate of the durability refactor:
//!
//! * an LRU-evicted session spills to disk and transparently reloads
//!   on its next touch, then extends **bitwise-identically** to a
//!   session that never left memory;
//! * a `glc-serve` killed hard (SIGKILL) between requests resumes from
//!   its write-through snapshots: the restarted service extends from
//!   the resident replicate count and the final Query equals an
//!   uninterrupted run, bitwise;
//! * LRU eviction order is property-tested against a model, and
//!   submit-after-evict rebuilds a session that extends exactly like
//!   a never-evicted one (with and without the spill store);
//! * the spill garbage collector holds its bounds: size-capped
//!   directories evict **oldest-first** with `spill_bytes` matching a
//!   `du` over the session files, age-capped directories collect
//!   stale snapshots, and a just-written snapshot is never its own
//!   GC victim;
//! * a pool slot quarantined before a SIGKILL is still quarantined
//!   after the restart, read back from `pool_health.json`.
//!
//! CI runs this file on every push (`spill-resume` job).

use glc_service::{
    session, EngineSpec, ExtendBackend, ExtendRequest, ModelSource, QueryRequest, Request,
    Response, ServiceError, SessionSpec, SessionStore,
};
use glc_ssa::run_partial_from;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

fn serve_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glc-serve")
}

/// A fresh, empty spill directory under the system temp dir.
fn spill_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "glc-spill-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn catalog_spec(circuit: &str, engine: EngineSpec, base_seed: u64) -> SessionSpec {
    let entry = glc_gates::catalog::by_id(circuit).expect("catalog circuit");
    let mut spec = SessionSpec::new(
        ModelSource::Catalog(circuit.into()),
        engine,
        base_seed,
        20.0,
        4.0,
    );
    for input in &entry.inputs {
        spec = spec.with_amount(input, 15.0);
    }
    spec
}

/// A small, fast spec for the property tests.
fn tiny_spec(base_seed: u64) -> SessionSpec {
    SessionSpec::new(
        ModelSource::Catalog("book_not".into()),
        EngineSpec::Direct,
        base_seed,
        5.0,
        1.0,
    )
    .with_amount("LacI", 15.0)
}

/// The fresh-run reference: `run_partial_from` over the whole range,
/// built from the same spec.
fn fresh_reference(spec: &SessionSpec, replicates: u64) -> glc_ssa::EnsemblePartial {
    let mut model = spec.model.load().expect("model loads");
    for (species, amount) in &spec.set_amounts {
        model.set_initial_amount(species, *amount);
    }
    let compiled = glc_ssa::CompiledModel::new(&model).expect("compiles");
    run_partial_from(
        &compiled,
        || spec.engine.build().expect("engine builds"),
        spec.base_seed,
        replicates,
        spec.t_end,
        spec.sample_dt,
    )
    .expect("reference run")
}

#[test]
fn evicted_sessions_spill_reload_and_extend_bitwise() {
    let dir = spill_dir("evict");
    let mut store = SessionStore::new(1, ExtendBackend::InProcess)
        .unwrap()
        .with_spill_dir(&dir);
    let a = catalog_spec("book_and", EngineSpec::Direct, 7);
    let b = catalog_spec("book_and", EngineSpec::Direct, 1000);

    let a_key = store.submit(&a).unwrap().session;
    store.extend(&a_key, 4).unwrap();
    assert!(
        session::spill_path_glcb(&dir, &a_key).exists(),
        "extend write-through-snapshots the session (GLCB layout)"
    );

    // Submitting B evicts A (capacity 1) — to disk, not to oblivion.
    let b_key = store.submit(&b).unwrap().session;
    store.extend(&b_key, 2).unwrap();
    assert!(store.partial(&a_key).is_none(), "A is no longer resident");

    // Touching A transparently reloads it with its 4 replicates and
    // keeps extending where it left off.
    store.extend(&a_key, 3).unwrap();
    assert_eq!(store.partial(&a_key).unwrap(), &fresh_reference(&a, 7));

    // Query also reloads (B was just evicted by A's reload).
    let queried = store.query(&b_key, &[]).unwrap();
    assert_eq!(queried.replicates, 2);
    assert_eq!(queried.simulated, 0);

    let stats = store.stats();
    assert!(stats.spilled >= 2, "{stats:?}");
    assert_eq!(stats.reloads, 2, "{stats:?}");
    assert!(stats.snapshots >= 3, "{stats:?}");
    assert_eq!(stats.sessions, 1);

    // A warm re-submit of the spilled-then-reloaded session reports
    // its real replicate count.
    let resubmitted = store.submit(&a).unwrap();
    assert!(resubmitted.warm);
    assert_eq!(resubmitted.replicates, 7);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_new_store_resumes_from_snapshots_bitwise() {
    // Store-level restart: drop the store (the "process"), build a new
    // one over the same spill dir, and the session resumes with its
    // replicates instead of recomputing from seed 0 — for Direct and
    // Langevin on both catalog circuits.
    for (circuit, engine) in [
        ("book_and", EngineSpec::Direct),
        ("book_and", EngineSpec::Langevin(0.01)),
        ("cello_0x1C", EngineSpec::Direct),
        ("cello_0x1C", EngineSpec::Langevin(0.1)),
    ] {
        let dir = spill_dir("restart");
        let spec = catalog_spec(circuit, engine, 13);
        let key = {
            let mut store = SessionStore::new(4, ExtendBackend::InProcess)
                .unwrap()
                .with_spill_dir(&dir);
            let key = store.submit(&spec).unwrap().session;
            store.extend(&key, 3).unwrap();
            key
        }; // Store dropped: only the snapshot survives.

        let mut reborn = SessionStore::new(4, ExtendBackend::InProcess)
            .unwrap()
            .with_spill_dir(&dir);
        let resumed = reborn.submit(&spec).unwrap();
        assert!(resumed.warm, "{circuit}: snapshot makes the submit warm");
        assert_eq!(resumed.replicates, 3, "{circuit}");
        assert_eq!(resumed.simulated, 0, "{circuit}: resume simulates nothing");
        let extended = reborn.extend(&key, 2).unwrap();
        assert_eq!(extended.replicates, 5, "{circuit}");
        assert_eq!(extended.simulated, 2, "{circuit}: only the new range runs");
        assert_eq!(
            reborn.partial(&key).unwrap(),
            &fresh_reference(&spec, 5),
            "{circuit}: resume-from-spill ≡ resident"
        );
        assert_eq!(reborn.stats().reloads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupt_snapshots_fail_closed() {
    let dir = spill_dir("corrupt");
    let spec = tiny_spec(3);
    let (key, partial) = {
        let mut store = SessionStore::new(2, ExtendBackend::InProcess)
            .unwrap()
            .with_spill_dir(&dir);
        let key = store.submit(&spec).unwrap().session;
        store.extend(&key, 2).unwrap();
        let partial = store.partial(&key).unwrap().clone();
        (key, partial)
    };
    let binary = session::spill_path_glcb(&dir, &key);
    let clean = std::fs::read(&binary).unwrap();

    // A truncated GLCB snapshot fails closed.
    std::fs::write(&binary, &clean[..clean.len() - 3]).unwrap();
    let mut store = SessionStore::new(2, ExtendBackend::InProcess)
        .unwrap()
        .with_spill_dir(&dir);
    // Extend/Query surface the corruption instead of serving garbage…
    assert!(matches!(store.extend(&key, 1), Err(ServiceError::Spill(_))));
    assert!(matches!(
        store.query(&key, &[]),
        Err(ServiceError::Spill(_))
    ));
    // …and Submit falls back to a cold rebuild that extends correctly
    // (the bad snapshot is superseded at the next write-through).
    let resubmitted = store.submit(&spec).unwrap();
    assert!(!resubmitted.warm, "corrupt snapshot must not resume");
    store.extend(&key, 2).unwrap();
    assert_eq!(store.partial(&key).unwrap(), &fresh_reference(&spec, 2));

    // A legacy JSON snapshot claiming more replicates than its
    // coverage holds fails the same validation on the fallback path.
    std::fs::remove_file(&binary).unwrap();
    let json_path = session::write_spill_json(&dir, &spec, &partial).unwrap();
    let clean_json = std::fs::read_to_string(&json_path).unwrap();
    let lying = clean_json.replace("\"replicates\":2.0", "\"replicates\":5.0");
    assert_ne!(lying, clean_json, "fixture drifted");
    std::fs::write(&json_path, &lying).unwrap();
    let mut store = SessionStore::new(2, ExtendBackend::InProcess)
        .unwrap()
        .with_spill_dir(&dir);
    assert!(matches!(store.extend(&key, 1), Err(ServiceError::Spill(_))));

    // Plain garbage under the binary extension is rejected the same
    // way (and shadows any JSON sibling).
    std::fs::write(&binary, "not a snapshot").unwrap();
    let mut store = SessionStore::new(2, ExtendBackend::InProcess)
        .unwrap()
        .with_spill_dir(&dir);
    assert!(matches!(store.extend(&key, 1), Err(ServiceError::Spill(_))));
    // Unknown keys are still unknown (missing file ≠ corrupt file).
    assert!(matches!(
        store.extend("sess-0000000000000000", 1),
        Err(ServiceError::Order(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// LRU eviction order matches a reference model: for any schedule
    /// of submits/touches over more specs than the store holds, the
    /// sessions resident at the end are exactly the `capacity` most
    /// recently touched distinct specs.
    #[test]
    fn lru_eviction_order_matches_the_model(
        capacity in 1usize..4,
        touches in proptest::collection::vec(0u64..5, 1..14),
    ) {
        let mut store = SessionStore::new(capacity, ExtendBackend::InProcess).unwrap();
        let mut recency: Vec<u64> = Vec::new(); // most recent last
        for &idx in &touches {
            store.submit(&tiny_spec(idx)).unwrap();
            recency.retain(|&i| i != idx);
            recency.push(idx);
        }
        let expected_resident: Vec<u64> =
            recency.iter().rev().take(capacity).copied().collect();
        for idx in 0u64..5 {
            let key = tiny_spec(idx).fingerprint();
            prop_assert_eq!(
                store.partial(&key).is_some(),
                expected_resident.contains(&idx),
                "spec {} residency diverged from the LRU model (schedule {:?})",
                idx,
                &touches
            );
        }
        prop_assert_eq!(store.stats().evictions, expected_evictions(&touches, capacity));
    }

    /// Submit-after-evict: a session evicted and re-submitted rebuilds
    /// and then extends bitwise-identically to one that was never
    /// evicted — cold (no spill: the rebuild re-simulates from seed 0)
    /// and warm (spill: the reload resumes mid-range).
    #[test]
    fn submit_after_evict_extends_bitwise(
        first in 1u64..4,
        growth in 1u64..4,
        seed in 0u64..1000,
    ) {
        let spec = tiny_spec(seed);
        let other = tiny_spec(seed.wrapping_add(7777));

        // Never-evicted reference store.
        let mut reference = SessionStore::new(2, ExtendBackend::InProcess).unwrap();
        let key = reference.submit(&spec).unwrap().session;
        reference.extend(&key, first).unwrap();
        reference.extend(&key, growth).unwrap();

        // Cold rebuild: evict, resubmit (starts at 0), re-extend the
        // whole schedule.
        let mut cold = SessionStore::new(1, ExtendBackend::InProcess).unwrap();
        cold.submit(&spec).unwrap();
        cold.extend(&key, first).unwrap();
        cold.submit(&other).unwrap(); // evicts `spec`
        let resubmitted = cold.submit(&spec).unwrap();
        prop_assert!(!resubmitted.warm);
        prop_assert_eq!(resubmitted.replicates, 0);
        cold.extend(&key, first).unwrap();
        cold.extend(&key, growth).unwrap();
        prop_assert_eq!(cold.partial(&key).unwrap(), reference.partial(&key).unwrap());

        // Warm resume: same eviction, but the spill store preserves the
        // first extend, so only `growth` re-runs.
        let dir = spill_dir("prop-resume");
        let mut warm = SessionStore::new(1, ExtendBackend::InProcess)
            .unwrap()
            .with_spill_dir(&dir);
        warm.submit(&spec).unwrap();
        warm.extend(&key, first).unwrap();
        warm.submit(&other).unwrap(); // spills `spec`
        let resumed = warm.submit(&spec).unwrap();
        prop_assert!(resumed.warm);
        prop_assert_eq!(resumed.replicates, first);
        warm.extend(&key, growth).unwrap();
        prop_assert_eq!(warm.partial(&key).unwrap(), reference.partial(&key).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Replays the LRU model to count evictions: every submit of a
/// non-resident spec while the store is full evicts exactly one
/// session.
fn expected_evictions(touches: &[u64], capacity: usize) -> u64 {
    let mut resident: Vec<u64> = Vec::new(); // most recent last
    let mut evictions = 0u64;
    for &idx in touches {
        if let Some(at) = resident.iter().position(|&i| i == idx) {
            resident.remove(at);
        } else if resident.len() >= capacity {
            resident.remove(0);
            evictions += 1;
        }
        resident.push(idx);
    }
    evictions
}

/// A line-oriented client over a spawned `glc-serve` child.
struct ServeClient {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ServeClient {
    fn spawn(args: &[&str]) -> Self {
        Self::spawn_with(args, &[])
    }

    fn spawn_with(args: &[&str], envs: &[(&str, &str)]) -> Self {
        let mut child = Command::new(serve_bin())
            .args(args)
            .envs(envs.iter().copied())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn glc-serve");
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        ServeClient {
            child,
            stdin,
            stdout,
        }
    }

    fn request(&mut self, request: &Request) -> Response {
        let line = serde_json::to_string(request).expect("encode request");
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut reply = String::new();
        self.stdout.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("decode response")
    }

    /// Hard-kills the service (SIGKILL: no cleanup code runs), as a
    /// crash or OOM kill would.
    fn kill(mut self) {
        self.child.kill().expect("kill glc-serve");
        let _ = self.child.wait();
    }
}

#[test]
fn killed_and_restarted_glc_serve_resumes_extends_bitwise() {
    // The end-to-end durability scenario CI drives: submit + extend
    // against a --spill-dir service, SIGKILL it, restart it on the
    // same directory, extend again — the final Query must be bitwise
    // identical to an uninterrupted run.
    let dir = spill_dir("serve-kill");
    let spec = catalog_spec("book_and", EngineSpec::Direct, 11);
    let dir_arg = dir.to_str().expect("utf-8 temp dir");

    let mut client = ServeClient::spawn(&["--capacity", "4", "--spill-dir", dir_arg]);
    let Response::Submitted(submitted) = client.request(&Request::Submit(spec.clone())) else {
        panic!("expected Submitted");
    };
    assert!(!submitted.warm);
    let session = submitted.session.clone();
    let Response::Extended(extended) = client.request(&Request::Extend(ExtendRequest {
        session: session.clone(),
        replicates: 6,
    })) else {
        panic!("expected Extended");
    };
    assert_eq!(extended.replicates, 6);
    client.kill(); // No shutdown handshake: the snapshot must carry it.

    let mut reborn = ServeClient::spawn(&["--capacity", "4", "--spill-dir", dir_arg]);
    let Response::Submitted(resumed) = reborn.request(&Request::Submit(spec.clone())) else {
        panic!("expected Submitted");
    };
    assert!(resumed.warm, "restart must resume from the snapshot");
    assert_eq!(resumed.replicates, 6);
    assert_eq!(resumed.session, session);
    let Response::Extended(extended) = reborn.request(&Request::Extend(ExtendRequest {
        session: session.clone(),
        replicates: 4,
    })) else {
        panic!("expected Extended");
    };
    assert_eq!(extended.replicates, 10);
    assert_eq!(extended.simulated, 4, "resume extends, not recomputes");

    let Response::Queried(queried) = reborn.request(&Request::Query(QueryRequest {
        session: session.clone(),
        species: vec![],
    })) else {
        panic!("expected Queried");
    };
    assert_eq!(queried.simulated, 0);
    assert_eq!(queried.replicates, 10);
    let reference = fresh_reference(&spec, 10).finalize().expect("finalize");
    for (s, species) in queried.mean.species().iter().enumerate() {
        let refs = reference.mean.series(species).expect("species");
        for (k, (a, b)) in queried.mean.series_at(s).iter().zip(refs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "mean of {species} at {k}");
        }
        let refs = reference.std_dev.series(species).expect("species");
        for (k, (a, b)) in queried.std_dev.series_at(s).iter().zip(refs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "σ of {species} at {k}");
        }
    }

    // The wire-level Stats now carry the durability counters.
    let Response::Stats(stats) = reborn.request(&Request::Stats) else {
        panic!("expected Stats");
    };
    assert_eq!(stats.reloads, 1, "{stats:?}");
    assert!(stats.snapshots >= 1, "{stats:?}");
    assert_eq!(stats.simulated, 4, "only the post-restart extend ran");
    reborn.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sum of the on-disk session-snapshot sizes (both generations) — the
/// `du` the stats counter must agree with.
fn du_session_files(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|entry| {
            entry.file_name().to_str().is_some_and(|name| {
                name.ends_with(".session.json") || name.ends_with(".session.glcb")
            })
        })
        .filter_map(|entry| entry.metadata().ok())
        .map(|meta| meta.len())
        .sum()
}

/// Spill-snapshot mtimes have jiffy granularity; space writes out so
/// "oldest" is well-defined.
fn settle_mtime() {
    std::thread::sleep(std::time::Duration::from_millis(25));
}

#[test]
fn spill_gc_size_bound_evicts_oldest_first_and_tracks_bytes() {
    let dir = spill_dir("gc-size");
    let mut store = SessionStore::new(4, ExtendBackend::InProcess)
        .unwrap()
        .with_spill_dir(&dir);

    // Three snapshots, written oldest → newest.
    let mut keys = Vec::new();
    for seed in 0..3u64 {
        let key = store.submit(&tiny_spec(seed * 100)).unwrap().session;
        store.extend(&key, 2).unwrap();
        keys.push(key);
        settle_mtime();
    }
    for key in &keys {
        assert!(session::spill_path_glcb(&dir, key).exists());
    }
    assert_eq!(
        store.stats().spill_bytes,
        du_session_files(&dir),
        "spill_bytes must match a du over the session files"
    );

    // Bound the directory to one snapshot: the two oldest go, the
    // newest survives, and the accounting follows.
    let keep = std::fs::metadata(session::spill_path_glcb(&dir, &keys[2]))
        .unwrap()
        .len();
    let mut store = store.with_spill_max_bytes(keep);
    assert!(
        !session::spill_path_glcb(&dir, &keys[0]).exists(),
        "oldest first"
    );
    assert!(
        !session::spill_path_glcb(&dir, &keys[1]).exists(),
        "then next"
    );
    assert!(
        session::spill_path_glcb(&dir, &keys[2]).exists(),
        "newest kept"
    );
    let stats = store.stats();
    assert_eq!(stats.spill_gc_evictions, 2, "{stats:?}");
    assert_eq!(stats.spill_bytes, keep, "{stats:?}");
    assert_eq!(stats.spill_bytes, du_session_files(&dir));

    // A fresh write-through is never its own GC victim: re-extending
    // the first session rewrites its snapshot (now the newest), and
    // the previous survivor is the one collected.
    settle_mtime();
    store.extend(&keys[0], 1).unwrap();
    assert!(session::spill_path_glcb(&dir, &keys[0]).exists());
    assert!(!session::spill_path_glcb(&dir, &keys[2]).exists());
    let stats = store.stats();
    assert_eq!(stats.spill_gc_evictions, 3, "{stats:?}");
    assert_eq!(stats.spill_bytes, du_session_files(&dir));

    // GC deletes snapshots, not sessions: the resident partial still
    // extends bitwise.
    store.extend(&keys[1], 2).unwrap();
    assert_eq!(
        store.partial(&keys[1]).unwrap(),
        &fresh_reference(&tiny_spec(100), 4)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_gc_age_bound_collects_stale_snapshots() {
    let dir = spill_dir("gc-age");
    let mut store = SessionStore::new(4, ExtendBackend::InProcess)
        .unwrap()
        .with_spill_dir(&dir);
    let a = store.submit(&tiny_spec(1)).unwrap().session;
    store.extend(&a, 2).unwrap();
    let b = store.submit(&tiny_spec(2)).unwrap().session;
    store.extend(&b, 2).unwrap();
    settle_mtime();

    // A (near-)zero age bound expires everything already on disk.
    let mut store = store.with_spill_max_age(std::time::Duration::from_nanos(1));
    assert!(!session::spill_path_glcb(&dir, &a).exists());
    assert!(!session::spill_path_glcb(&dir, &b).exists());
    let stats = store.stats();
    assert_eq!(stats.spill_gc_evictions, 2, "{stats:?}");
    assert_eq!(stats.spill_bytes, 0, "{stats:?}");

    // …but the snapshot an extend just wrote is protected, even under
    // an age bound it can't possibly satisfy.
    store.extend(&a, 1).unwrap();
    assert!(
        session::spill_path_glcb(&dir, &a).exists(),
        "write-through snapshot must survive the GC pass that follows it"
    );
    assert_eq!(store.stats().spill_bytes, du_session_files(&dir));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fake worker that reads its request and dies — a permanently
/// broken pool slot for the quarantine drill.
#[cfg(unix)]
fn dead_worker_script(label: &str) -> PathBuf {
    use std::os::unix::fs::PermissionsExt;
    let dir = std::env::temp_dir().join(format!("glc-dead-slot-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("script dir");
    let path = dir.join("dead-worker.sh");
    std::fs::write(
        &path,
        "#!/bin/sh\ncat > /dev/null\necho 'slot is dead' >&2\nexit 1\n",
    )
    .expect("write script");
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).expect("chmod");
    path
}

#[cfg(unix)]
#[test]
fn killed_glc_serve_restarts_with_quarantine_intact() {
    // The durability drill's second half: a pool slot quarantined in
    // one service life must stay quarantined in the next. The pool
    // mixes one real worker with a marker script that always dies;
    // `--quarantine-after 1` benches the script on its first failure,
    // the service is SIGKILLed, and the restart must read the benching
    // back out of pool_health.json instead of re-learning it.
    let dir = spill_dir("serve-quarantine");
    let dir_arg = dir.to_str().expect("utf-8 temp dir").to_string();
    let worker = env!("CARGO_BIN_EXE_glc-worker");
    let script = dead_worker_script("serve-drill");
    let script_arg = script.to_str().expect("utf-8 script path").to_string();
    let flags = [
        "--capacity",
        "4",
        "--spill-dir",
        dir_arg.as_str(),
        "--workers",
        "1",
        "--worker-bin",
        worker,
        "--worker-slot",
        script_arg.as_str(),
        "--quarantine-after",
        "1",
    ];
    let spec = catalog_spec("book_and", EngineSpec::Direct, 23);

    // The dead script never answers the frame handshake; a short
    // timeout keeps the drill from idling out the default 5 s wait.
    let envs = [("GLC_FRAME_HANDSHAKE_MS", "500")];
    let mut client = ServeClient::spawn_with(&flags, &envs);
    let Response::Submitted(submitted) = client.request(&Request::Submit(spec.clone())) else {
        panic!("expected Submitted");
    };
    let session = submitted.session.clone();
    // Slot 1 (the script) never completes the frame handshake, so its
    // connection breaks, its queued chunks are stolen by the healthy
    // worker, and the script is quarantined.
    let Response::Extended(extended) = client.request(&Request::Extend(ExtendRequest {
        session: session.clone(),
        replicates: 4,
    })) else {
        panic!("expected Extended");
    };
    assert_eq!(extended.replicates, 4);
    let Response::Stats(stats) = client.request(&Request::Stats) else {
        panic!("expected Stats");
    };
    assert_eq!(stats.slots.len(), 2);
    assert!(stats.slots[1].quarantined, "{stats:?}");
    assert_eq!(stats.slots[1].failures, 1, "{stats:?}");
    assert!(stats.pool_steals >= 1, "{stats:?}");
    assert!(
        session::pool_health_path(&dir).exists(),
        "extend persists pool health beside the snapshots"
    );
    client.kill();

    // Restart on the same spill dir: the quarantine is already in
    // place before any request runs a shard.
    let mut reborn = ServeClient::spawn_with(&flags, &envs);
    let Response::Stats(stats) = reborn.request(&Request::Stats) else {
        panic!("expected Stats");
    };
    assert!(
        stats.slots[1].quarantined,
        "restart forgot the quarantine: {stats:?}"
    );
    assert_eq!(stats.slots[1].failures, 1, "{stats:?}");
    // Steals are a per-life throughput counter, not durable health:
    // the reborn pool starts from zero, and nothing needed a one-shot
    // retry in either life (the lost chunks were stolen instead).
    assert_eq!(stats.pool_steals, 0, "{stats:?}");
    assert_eq!(stats.pool_retries, 0, "{stats:?}");

    // The reborn service keeps serving from the healthy slot, the dead
    // script never sees another shard, and the result is still exact.
    let Response::Extended(extended) = reborn.request(&Request::Extend(ExtendRequest {
        session: session.clone(),
        replicates: 3,
    })) else {
        panic!("expected Extended");
    };
    assert_eq!(extended.replicates, 7);
    let Response::Stats(stats) = reborn.request(&Request::Stats) else {
        panic!("expected Stats");
    };
    assert_eq!(
        stats.slots[1].failures, 1,
        "quarantined slot must not be retried: {stats:?}"
    );
    let Response::Queried(queried) = reborn.request(&Request::Query(QueryRequest {
        session: session.clone(),
        species: vec![],
    })) else {
        panic!("expected Queried");
    };
    assert_eq!(queried.replicates, 7);
    let reference = fresh_reference(&spec, 7);
    assert_eq!(
        serde_json::to_string(&queried.mean).unwrap(),
        serde_json::to_string(&reference.finalize().expect("finalize").mean).unwrap(),
        "pool failover + restart must not move a bit"
    );
    reborn.kill();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(script.parent().unwrap());
}
