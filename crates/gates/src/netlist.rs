//! NOT/NOR netlists over input sensors.
//!
//! The gate model mirrors what Cello synthesizes to, with signals being
//! *promoter activities*:
//!
//! * an **input sensor** is a promoter whose activity follows the input
//!   species (high input ⇒ active promoter);
//! * every logic gate is a **NOR**: the gate's repressor gene is
//!   transcribed from tandem copies of its input promoters (free OR),
//!   and the repressor shuts its own cognate promoter (inversion), so
//!   the gate's output promoter activity is `NOR(inputs)`; fan-in 1 is a
//!   NOT;
//! * the circuit **output gene** is transcribed from tandem copies of
//!   one promoter per output drive (free wired-OR), optionally plus a
//!   constitutive promoter. A drive is a plain signal, so the output
//!   stage adds no gate.

use glc_core::TruthTable;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A signal source: an input sensor or a gate's output promoter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Input sensor `j` (promoter activity follows input species `j`).
    Input(usize),
    /// Cognate promoter of gate `g`.
    Gate(usize),
}

/// One NOR gate (fan-in 1 behaves as NOT).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Library repressor assigned to this gate.
    pub repressor: String,
    /// Signals OR-ed at the gate's tandem input promoters.
    pub inputs: Vec<Signal>,
}

impl Gate {
    /// Whether this gate is an inverter (fan-in 1).
    pub fn is_not(&self) -> bool {
        self.inputs.len() == 1
    }
}

/// A validated NOT/NOR netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    input_names: Vec<String>,
    output_name: String,
    gates: Vec<Gate>,
    /// Promoters transcribing the output gene (wired-OR of signals).
    outputs: Vec<Signal>,
    /// Whether a constitutive promoter additionally drives the output
    /// (used only for the constant-true function).
    constitutive: bool,
}

/// Error constructing a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate or output drive references an input index out of range.
    BadInput {
        /// Index of the referencing gate (`None` = an output drive).
        gate: Option<usize>,
        /// The out-of-range input index.
        input: usize,
    },
    /// A gate references itself or a later gate (must be feed-forward).
    NotFeedForward {
        /// Index of the offending gate.
        gate: usize,
        /// The referenced gate index.
        referenced: usize,
    },
    /// An output drive references a gate that does not exist.
    BadOutputRef(usize),
    /// A gate has no inputs.
    EmptyGate(usize),
    /// No inputs were declared.
    NoInputs,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadInput { gate, input } => match gate {
                Some(g) => write!(f, "gate {g} references unknown input {input}"),
                None => write!(f, "output drive references unknown input {input}"),
            },
            NetlistError::NotFeedForward { gate, referenced } => write!(
                f,
                "gate {gate} references gate {referenced}; netlists must be feed-forward"
            ),
            NetlistError::BadOutputRef(g) => {
                write!(f, "output drive references unknown gate {g}")
            }
            NetlistError::EmptyGate(g) => write!(f, "gate {g} has no inputs"),
            NetlistError::NoInputs => f.write_str("netlist has no inputs"),
        }
    }
}

impl std::error::Error for NetlistError {}

impl Netlist {
    /// Builds and validates a netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if signal references are out of range,
    /// the gate graph is not feed-forward, or a gate is empty.
    pub fn new(
        input_names: Vec<String>,
        output_name: impl Into<String>,
        gates: Vec<Gate>,
        outputs: Vec<Signal>,
        constitutive: bool,
    ) -> Result<Self, NetlistError> {
        if input_names.is_empty() {
            return Err(NetlistError::NoInputs);
        }
        let n = input_names.len();
        for (g, gate) in gates.iter().enumerate() {
            if gate.inputs.is_empty() {
                return Err(NetlistError::EmptyGate(g));
            }
            for signal in &gate.inputs {
                match *signal {
                    Signal::Input(j) if j >= n => {
                        return Err(NetlistError::BadInput {
                            gate: Some(g),
                            input: j,
                        })
                    }
                    Signal::Gate(h) if h >= g => {
                        return Err(NetlistError::NotFeedForward {
                            gate: g,
                            referenced: h,
                        })
                    }
                    _ => {}
                }
            }
        }
        for signal in &outputs {
            match *signal {
                Signal::Input(j) if j >= n => {
                    return Err(NetlistError::BadInput {
                        gate: None,
                        input: j,
                    })
                }
                Signal::Gate(h) if h >= gates.len() => return Err(NetlistError::BadOutputRef(h)),
                _ => {}
            }
        }
        Ok(Netlist {
            input_names,
            output_name: output_name.into(),
            gates,
            outputs,
            constitutive,
        })
    }

    /// Input species names (combination MSB first).
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output species name.
    pub fn output_name(&self) -> &str {
        &self.output_name
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.input_names.len()
    }

    /// The logic gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Signals whose promoters drive the output gene.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Whether a constitutive promoter drives the output.
    pub fn is_constitutive(&self) -> bool {
        self.constitutive
    }

    /// Number of logic gates (the count the paper reports as "1–7
    /// genetic logic gates"; sensors and the output stage are free).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Evaluates the netlist at input combination `m` (paper convention:
    /// input 0 is the MSB of `m`).
    pub fn eval_combo(&self, m: usize) -> bool {
        let n = self.inputs();
        let mut gate_values: Vec<bool> = Vec::with_capacity(self.gates.len());
        let value_of = |signal: &Signal, gate_values: &[bool]| -> bool {
            match *signal {
                Signal::Input(j) => (m >> (n - 1 - j)) & 1 == 1,
                Signal::Gate(g) => gate_values[g],
            }
        };
        for gate in &self.gates {
            let any_high = gate
                .inputs
                .iter()
                .any(|signal| value_of(signal, &gate_values));
            gate_values.push(!any_high); // NOR
        }
        self.constitutive
            || self
                .outputs
                .iter()
                .any(|signal| value_of(signal, &gate_values))
    }

    /// The complete Boolean function of the netlist.
    pub fn truth_table(&self) -> TruthTable {
        TruthTable::from_fn(self.inputs(), |m| self.eval_combo(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Hand-built Figure 1 AND gate: two inverters feeding a NOR whose
    /// promoter drives GFP.
    fn and_gate() -> Netlist {
        Netlist::new(
            names(&["LacI", "TetR"]),
            "GFP",
            vec![
                Gate {
                    repressor: "PhlF".into(),
                    inputs: vec![Signal::Input(0)],
                },
                Gate {
                    repressor: "SrpR".into(),
                    inputs: vec![Signal::Input(1)],
                },
                Gate {
                    repressor: "BM3R1".into(),
                    inputs: vec![Signal::Gate(0), Signal::Gate(1)],
                },
            ],
            vec![Signal::Gate(2)],
            false,
        )
        .unwrap()
    }

    #[test]
    fn and_gate_truth_table_and_count() {
        let netlist = and_gate();
        assert_eq!(netlist.truth_table().to_hex(), 0x8);
        assert_eq!(netlist.gate_count(), 3); // matches the paper's Fig. 1
        assert!(netlist.gates()[0].is_not());
        assert!(!netlist.gates()[2].is_not());
    }

    #[test]
    fn single_nor_gate() {
        let netlist = Netlist::new(
            names(&["A", "B"]),
            "Y",
            vec![Gate {
                repressor: "PhlF".into(),
                inputs: vec![Signal::Input(0), Signal::Input(1)],
            }],
            vec![Signal::Gate(0)],
            false,
        )
        .unwrap();
        assert_eq!(netlist.truth_table().to_hex(), 0x1);
        assert_eq!(netlist.gate_count(), 1);
    }

    #[test]
    fn nand_is_wired_or_of_two_inverters() {
        let netlist = Netlist::new(
            names(&["A", "B"]),
            "Y",
            vec![
                Gate {
                    repressor: "PhlF".into(),
                    inputs: vec![Signal::Input(0)],
                },
                Gate {
                    repressor: "SrpR".into(),
                    inputs: vec![Signal::Input(1)],
                },
            ],
            vec![Signal::Gate(0), Signal::Gate(1)],
            false,
        )
        .unwrap();
        assert_eq!(netlist.truth_table().to_hex(), 0x7);
        assert_eq!(netlist.gate_count(), 2);
    }

    #[test]
    fn buffer_is_a_zero_gate_wire() {
        let netlist =
            Netlist::new(names(&["A"]), "Y", vec![], vec![Signal::Input(0)], false).unwrap();
        assert_eq!(netlist.truth_table().to_hex(), 0x2);
        assert_eq!(netlist.gate_count(), 0);
    }

    #[test]
    fn constitutive_output_is_tautology() {
        let netlist = Netlist::new(names(&["A"]), "Y", vec![], vec![], true).unwrap();
        assert!(netlist.truth_table().is_tautology());
    }

    #[test]
    fn no_drive_is_contradiction() {
        let netlist = Netlist::new(names(&["A"]), "Y", vec![], vec![], false).unwrap();
        assert!(netlist.truth_table().is_contradiction());
    }

    #[test]
    fn validation_catches_bad_references() {
        assert_eq!(
            Netlist::new(vec![], "Y", vec![], vec![], false),
            Err(NetlistError::NoInputs)
        );
        assert!(matches!(
            Netlist::new(
                names(&["A"]),
                "Y",
                vec![Gate {
                    repressor: "X".into(),
                    inputs: vec![Signal::Input(1)],
                }],
                vec![],
                false,
            ),
            Err(NetlistError::BadInput { .. })
        ));
        assert!(matches!(
            Netlist::new(
                names(&["A"]),
                "Y",
                vec![Gate {
                    repressor: "X".into(),
                    inputs: vec![Signal::Gate(0)],
                }],
                vec![],
                false,
            ),
            Err(NetlistError::NotFeedForward { .. })
        ));
        assert!(matches!(
            Netlist::new(names(&["A"]), "Y", vec![], vec![Signal::Gate(3)], false),
            Err(NetlistError::BadOutputRef(3))
        ));
        assert!(matches!(
            Netlist::new(
                names(&["A"]),
                "Y",
                vec![Gate {
                    repressor: "X".into(),
                    inputs: vec![],
                }],
                vec![],
                false,
            ),
            Err(NetlistError::EmptyGate(0))
        ));
    }

    #[test]
    fn cascaded_inverters_make_a_buffer() {
        let netlist = Netlist::new(
            names(&["A"]),
            "Y",
            vec![
                Gate {
                    repressor: "PhlF".into(),
                    inputs: vec![Signal::Input(0)],
                },
                Gate {
                    repressor: "SrpR".into(),
                    inputs: vec![Signal::Gate(0)],
                },
            ],
            vec![Signal::Gate(1)],
            false,
        )
        .unwrap();
        assert_eq!(netlist.truth_table().to_hex(), 0x2);
    }

    #[test]
    fn error_display() {
        assert!(NetlistError::NoInputs.to_string().contains("no inputs"));
        assert!(NetlistError::BadOutputRef(7).to_string().contains('7'));
    }
}
