//! Textbook mass-action circuits (Myers, *Engineering Genetic Circuits*).
//!
//! The paper's eval set includes five circuits from [12]. Unlike the
//! Cello-style models (lumped Hill kinetics), these model regulation
//! mechanistically: a single-copy promoter is bound and blocked by a
//! repressor *multimer* (three molecules bind cooperatively, LacI-tetramer
//! style) via explicit mass-action binding/unbinding, and
//! transcription+translation are lumped into one production step from
//! the free promoter (with a small leak from the bound one). This
//! exercises a different region of the simulator — species with counts
//! of 0/1 (promoters) and genuinely bursty output.
//!
//! Circuits: NOT, NOR, NAND, OR, and the Figure 1 AND gate (two
//! repressible promoters wired-OR onto `CI`, which represses the GFP
//! promoter).

use glc_core::TruthTable;
use glc_model::{Model, ModelBuilder, ModelError};

/// Multimer association rate (per molecule-triple per t.u.).
pub const K_ON: f64 = 0.005;
/// Complex dissociation rate.
pub const K_OFF: f64 = 0.1;
/// Production rate from a free promoter (transcription + translation).
pub const K_TX: f64 = 3.0;
/// Leak production rate from a bound promoter.
pub const K_LEAK: f64 = 0.01;
/// Protein degradation/dilution rate.
pub const K_DEG: f64 = 0.05;

/// A book circuit plus its metadata.
#[derive(Debug, Clone)]
pub struct BookCircuit {
    /// Short identifier (`book_not`, ...).
    pub id: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// Input species names, combination MSB first.
    pub inputs: Vec<String>,
    /// Output species name.
    pub output: String,
    /// The intended Boolean function.
    pub expected: TruthTable,
    /// Logic gate count (repressible promoter stages).
    pub gate_count: usize,
    /// Genetic component count (promoters + RBS + CDS + terminators).
    pub component_count: usize,
    /// The behavioural model.
    pub model: Model,
}

/// Adds the reactions of one repressible promoter stage to `builder`.
///
/// Declares species `{promoter}` (count 1) and `{promoter}_bound`, binds
/// the dimer of `repressor`, and produces `product` from the free
/// promoter (plus leak). The caller declares `repressor` and `product`.
fn promoter_stage(
    builder: ModelBuilder,
    promoter: &str,
    repressor: &str,
    product: &str,
) -> Result<ModelBuilder, ModelError> {
    let bound = format!("{promoter}_bound");
    builder
        .species(promoter.to_string(), 1.0)
        .species(bound.clone(), 0.0)
        .reaction_full(
            format!("bind_{promoter}"),
            vec![(promoter.to_string(), 1), (repressor.to_string(), 3)],
            vec![(bound.clone(), 1)],
            vec![],
            &format!(
                "kon * {promoter} * {repressor} * max({repressor} - 1, 0) * max({repressor} - 2, 0) / 6"
            ),
        )?
        .reaction_full(
            format!("unbind_{promoter}"),
            vec![(bound.clone(), 1)],
            vec![(promoter.to_string(), 1), (repressor.to_string(), 3)],
            vec![],
            &format!("koff * {bound}"),
        )?
        .reaction_full(
            format!("tx_{promoter}"),
            vec![],
            vec![(product.to_string(), 1)],
            vec![promoter.to_string(), bound.clone()],
            &format!("ktx * {promoter} + kleak * {bound}"),
        )
}

fn base_builder(id: &str) -> ModelBuilder {
    ModelBuilder::new(id)
        .parameter("kon", K_ON)
        .parameter("koff", K_OFF)
        .parameter("ktx", K_TX)
        .parameter("kleak", K_LEAK)
        .parameter("kdeg", K_DEG)
}

fn degradation(builder: ModelBuilder, species: &str) -> Result<ModelBuilder, ModelError> {
    builder.reaction(
        format!("deg_{species}"),
        &[species],
        &[],
        &format!("kdeg * {species}"),
    )
}

/// `GFP = NOT LacI`: one repressible promoter.
pub fn not_gate() -> BookCircuit {
    let builder = base_builder("book_not").boundary_species("LacI", 0.0);
    let builder = promoter_stage(builder, "P1", "LacI", "GFP").unwrap();
    let builder = builder.species("GFP", 0.0);
    let builder = degradation(builder, "GFP").unwrap();
    BookCircuit {
        id: "book_not",
        description: "mass-action inverter: LacI dimer blocks the GFP promoter",
        inputs: vec!["LacI".into()],
        output: "GFP".into(),
        expected: TruthTable::from_hex(1, 0x1),
        gate_count: 1,
        component_count: 4,
        model: builder.build().unwrap(),
    }
}

/// `GFP = LacI NOR TetR`: one promoter with two operators.
pub fn nor_gate() -> BookCircuit {
    let builder = base_builder("book_nor")
        .boundary_species("LacI", 0.0)
        .boundary_species("TetR", 0.0)
        .species("GFP", 0.0);
    // Either repressor dimer blocks the same promoter: two bound states.
    let builder = builder
        .species("P1", 1.0)
        .species("P1_boundL", 0.0)
        .species("P1_boundT", 0.0)
        .reaction_full(
            "bind_P1_LacI",
            vec![("P1".into(), 1), ("LacI".into(), 3)],
            vec![("P1_boundL".into(), 1)],
            vec![],
            "kon * P1 * LacI * max(LacI - 1, 0) * max(LacI - 2, 0) / 6",
        )
        .unwrap()
        .reaction_full(
            "unbind_P1_LacI",
            vec![("P1_boundL".into(), 1)],
            vec![("P1".into(), 1), ("LacI".into(), 3)],
            vec![],
            "koff * P1_boundL",
        )
        .unwrap()
        .reaction_full(
            "bind_P1_TetR",
            vec![("P1".into(), 1), ("TetR".into(), 3)],
            vec![("P1_boundT".into(), 1)],
            vec![],
            "kon * P1 * TetR * max(TetR - 1, 0) * max(TetR - 2, 0) / 6",
        )
        .unwrap()
        .reaction_full(
            "unbind_P1_TetR",
            vec![("P1_boundT".into(), 1)],
            vec![("P1".into(), 1), ("TetR".into(), 3)],
            vec![],
            "koff * P1_boundT",
        )
        .unwrap()
        .reaction_full(
            "tx_P1",
            vec![],
            vec![("GFP".into(), 1)],
            vec!["P1".into(), "P1_boundL".into(), "P1_boundT".into()],
            "ktx * P1 + kleak * (P1_boundL + P1_boundT)",
        )
        .unwrap();
    let builder = degradation(builder, "GFP").unwrap();
    BookCircuit {
        id: "book_nor",
        description: "mass-action NOR: either repressor dimer blocks the GFP promoter",
        inputs: vec!["LacI".into(), "TetR".into()],
        output: "GFP".into(),
        expected: TruthTable::from_hex(2, 0x1),
        gate_count: 1,
        component_count: 5,
        model: builder.build().unwrap(),
    }
}

/// `GFP = LacI NAND TetR`: two promoters wired-OR onto GFP.
pub fn nand_gate() -> BookCircuit {
    let builder = base_builder("book_nand")
        .boundary_species("LacI", 0.0)
        .boundary_species("TetR", 0.0)
        .species("GFP", 0.0);
    let builder = promoter_stage(builder, "P1", "LacI", "GFP").unwrap();
    let builder = promoter_stage(builder, "P2", "TetR", "GFP").unwrap();
    let builder = degradation(builder, "GFP").unwrap();
    BookCircuit {
        id: "book_nand",
        description: "mass-action NAND: two independently repressed promoters wired-OR onto GFP",
        inputs: vec!["LacI".into(), "TetR".into()],
        output: "GFP".into(),
        expected: TruthTable::from_hex(2, 0x7),
        gate_count: 2,
        component_count: 8,
        model: builder.build().unwrap(),
    }
}

/// `GFP = LacI OR TetR`: a NOR stage into an inverter stage.
pub fn or_gate() -> BookCircuit {
    // Stage 1 (NOR): CI produced unless LacI or TetR is present — reuse
    // the NOR topology with CI as the product.
    let builder = base_builder("book_or")
        .boundary_species("LacI", 0.0)
        .boundary_species("TetR", 0.0)
        .species("CI", 0.0)
        .species("GFP", 0.0)
        .species("P1", 1.0)
        .species("P1_boundL", 0.0)
        .species("P1_boundT", 0.0)
        .reaction_full(
            "bind_P1_LacI",
            vec![("P1".into(), 1), ("LacI".into(), 3)],
            vec![("P1_boundL".into(), 1)],
            vec![],
            "kon * P1 * LacI * max(LacI - 1, 0) * max(LacI - 2, 0) / 6",
        )
        .unwrap()
        .reaction_full(
            "unbind_P1_LacI",
            vec![("P1_boundL".into(), 1)],
            vec![("P1".into(), 1), ("LacI".into(), 3)],
            vec![],
            "koff * P1_boundL",
        )
        .unwrap()
        .reaction_full(
            "bind_P1_TetR",
            vec![("P1".into(), 1), ("TetR".into(), 3)],
            vec![("P1_boundT".into(), 1)],
            vec![],
            "kon * P1 * TetR * max(TetR - 1, 0) * max(TetR - 2, 0) / 6",
        )
        .unwrap()
        .reaction_full(
            "unbind_P1_TetR",
            vec![("P1_boundT".into(), 1)],
            vec![("P1".into(), 1), ("TetR".into(), 3)],
            vec![],
            "koff * P1_boundT",
        )
        .unwrap()
        .reaction_full(
            "tx_P1",
            vec![],
            vec![("CI".into(), 1)],
            vec!["P1".into(), "P1_boundL".into(), "P1_boundT".into()],
            "ktx * P1 + kleak * (P1_boundL + P1_boundT)",
        )
        .unwrap();
    let builder = degradation(builder, "CI").unwrap();
    // Stage 2: CI represses the GFP promoter.
    let builder = promoter_stage(builder, "P2", "CI", "GFP").unwrap();
    let builder = degradation(builder, "GFP").unwrap();
    BookCircuit {
        id: "book_or",
        description: "mass-action OR: NOR stage producing CI, inverted by a CI-repressed promoter",
        inputs: vec!["LacI".into(), "TetR".into()],
        output: "GFP".into(),
        expected: TruthTable::from_hex(2, 0xE),
        gate_count: 2,
        component_count: 9,
        model: builder.build().unwrap(),
    }
}

/// The paper's Figure 1 AND gate.
///
/// Promoters `P1` (blocked by LacI) and `P2` (blocked by TetR) both
/// produce `CI`; `P3` (blocked by CI) produces GFP. GFP is high only
/// when both inputs are present: `GFP = LacI AND TetR`.
pub fn and_gate() -> BookCircuit {
    let builder = base_builder("book_and")
        .boundary_species("LacI", 0.0)
        .boundary_species("TetR", 0.0)
        .species("CI", 0.0)
        .species("GFP", 0.0);
    let builder = promoter_stage(builder, "P1", "LacI", "CI").unwrap();
    let builder = promoter_stage(builder, "P2", "TetR", "CI").unwrap();
    let builder = degradation(builder, "CI").unwrap();
    let builder = promoter_stage(builder, "P3", "CI", "GFP").unwrap();
    let builder = degradation(builder, "GFP").unwrap();
    BookCircuit {
        id: "book_and",
        description: "Figure 1 AND gate: LacI and TetR each block a CI promoter; CI blocks GFP",
        inputs: vec!["LacI".into(), "TetR".into()],
        output: "GFP".into(),
        expected: TruthTable::from_hex(2, 0x8),
        gate_count: 3,
        component_count: 12,
        model: builder.build().unwrap(),
    }
}

/// All five book circuits.
pub fn all() -> Vec<BookCircuit> {
    vec![not_gate(), nor_gate(), nand_gate(), or_gate(), and_gate()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use glc_ssa::CompiledModel;

    /// Stochastic mean output at a combination with inputs at `level`
    /// (time-averaged over the second half of the run; the exact SSA
    /// sidesteps the stiffness of the binding reactions that would force
    /// a tiny ODE step).
    fn ssa_output(circuit: &BookCircuit, combo: usize, level: f64) -> f64 {
        let n = circuit.inputs.len();
        let mut model = circuit.model.clone();
        for (j, input) in circuit.inputs.iter().enumerate() {
            let high = (combo >> (n - 1 - j)) & 1 == 1;
            assert!(model.set_initial_amount(input, if high { level } else { 0.0 }));
        }
        let compiled = CompiledModel::new(&model).unwrap();
        let trace =
            glc_ssa::simulate(&compiled, &mut glc_ssa::Direct::new(), 1200.0, 1.0, 42).unwrap();
        trace.mean(&circuit.output, 600, trace.len())
    }

    #[test]
    fn all_five_circuits_build_and_validate() {
        let circuits = all();
        assert_eq!(circuits.len(), 5);
        for circuit in &circuits {
            assert!(circuit.model.validate().is_ok(), "{}", circuit.id);
            assert!(circuit.gate_count >= 1 && circuit.gate_count <= 7);
            assert!(circuit.component_count >= 3 && circuit.component_count <= 26);
            assert_eq!(circuit.expected.inputs(), circuit.inputs.len());
        }
    }

    #[test]
    fn deterministic_steady_states_match_expected_logic() {
        // Each circuit's mean behaviour must separate around the
        // 15-molecule threshold at 15-molecule inputs.
        for circuit in all() {
            let n = circuit.inputs.len();
            for m in 0..1usize << n {
                let out = ssa_output(&circuit, m, 15.0);
                if circuit.expected.value(m) {
                    assert!(out > 25.0, "{} combo {m}: {out} should be high", circuit.id);
                } else {
                    assert!(out < 12.0, "{} combo {m}: {out} should be low", circuit.id);
                }
            }
        }
    }

    #[test]
    fn promoter_copy_number_is_conserved() {
        // Free + bound promoter copies always sum to 1 in the AND model.
        use glc_ssa::{Direct, Engine, Observer};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let circuit = and_gate();
        let mut model = circuit.model.clone();
        model.set_initial_amount("LacI", 15.0);
        let compiled = CompiledModel::new(&model).unwrap();
        let p1 = compiled.species_slot("P1").unwrap();
        let p1b = compiled.species_slot("P1_bound").unwrap();
        struct Conserve {
            p1: usize,
            p1b: usize,
        }
        impl Observer for Conserve {
            fn on_advance(&mut self, _t: f64, values: &[f64]) {
                assert_eq!(values[self.p1] + values[self.p1b], 1.0);
            }
        }
        let mut state = compiled.initial_state();
        let mut rng = StdRng::seed_from_u64(3);
        Direct::new()
            .run(
                &compiled,
                &mut state,
                300.0,
                &mut rng,
                &mut Conserve { p1, p1b },
            )
            .unwrap();
    }

    #[test]
    fn sbml_round_trip_of_book_models() {
        for circuit in all() {
            let doc = glc_model::sbml::write(&circuit.model);
            let back = glc_model::sbml::read(&doc).unwrap();
            assert_eq!(back, circuit.model, "{}", circuit.id);
        }
    }

    #[test]
    fn weak_input_fails_to_repress() {
        // Figure 5 regime: 3-molecule input barely represses the NOT
        // gate, leaving the output (wrongly) high.
        let circuit = not_gate();
        let out = ssa_output(&circuit, 1, 3.0);
        assert!(out > 25.0, "weak input should leak: {out}");
    }
}
