//! Compilation of a [`Netlist`] into a behavioural reaction model.
//!
//! This is the role the SBOL→SBML converter [14] plays in the paper's
//! toolchain: turn the structural circuit into reaction kinetics. For
//! each gate `g` with repressor `R_g`:
//!
//! * production `∅ → R_g` at rate `Σ activity(input promoter)` — the
//!   tandem input promoters transcribe the repressor gene independently
//!   (free OR), with each promoter's activity given by its Hill
//!   response;
//! * degradation `R_g → ∅` at rate `kdeg · R_g`.
//!
//! The output protein is produced at the summed activity of the output
//! drive promoters and degrades the same way. Input species are
//! boundary species (clamped by the experiment runner).

use crate::library::{self, SensorParams, DEGRADATION_RATE};
use crate::netlist::{Netlist, Signal};
use glc_model::{Model, ModelBuilder, ModelError};

/// Species name of gate `g`'s repressor in compiled models.
pub fn repressor_species(netlist: &Netlist, g: usize) -> String {
    format!("R_{}", netlist.gates()[g].repressor)
}

/// Compiles `netlist` into a validated [`Model`].
///
/// # Errors
///
/// Returns [`ModelError`] if a gate references a repressor missing from
/// the library (hand-built netlists only; synthesized ones are always
/// valid).
pub fn compile(netlist: &Netlist) -> Result<Model, ModelError> {
    compile_with_sensor(netlist, &SensorParams::default())
}

/// Compiles with custom input-sensor parameters.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with_sensor(netlist: &Netlist, sensor: &SensorParams) -> Result<Model, ModelError> {
    let mut builder = ModelBuilder::new(format!("netlist_{}", netlist.output_name()));

    for name in netlist.input_names() {
        builder = builder.boundary_species(name.clone(), 0.0);
    }
    for g in 0..netlist.gates().len() {
        builder = builder.species(repressor_species(netlist, g), 0.0);
    }
    builder = builder.species(netlist.output_name().to_string(), 0.0);
    builder = builder.parameter("kdeg", DEGRADATION_RATE);

    // The promoter-activity expression of a signal.
    let activity = |signal: &Signal| -> Result<String, ModelError> {
        Ok(match *signal {
            Signal::Input(j) => sensor.response.law(&netlist.input_names()[j]),
            Signal::Gate(g) => {
                let gate = &netlist.gates()[g];
                let params = library::repressor(&gate.repressor).ok_or_else(|| {
                    ModelError::Sbml(format!(
                        "repressor `{}` not found in the gate library",
                        gate.repressor
                    ))
                })?;
                params.response.law(&repressor_species(netlist, g))
            }
        })
    };

    for (g, gate) in netlist.gates().iter().enumerate() {
        let species = repressor_species(netlist, g);
        let law = gate
            .inputs
            .iter()
            .map(&activity)
            .collect::<Result<Vec<_>, _>>()?
            .join(" + ");
        let modifiers: Vec<String> = gate
            .inputs
            .iter()
            .map(|signal| match *signal {
                Signal::Input(j) => netlist.input_names()[j].clone(),
                Signal::Gate(h) => repressor_species(netlist, h),
            })
            .collect();
        builder = builder
            .reaction_full(
                format!("prod_{species}"),
                vec![],
                vec![(species.clone(), 1)],
                modifiers,
                &law,
            )?
            .reaction(
                format!("deg_{species}"),
                &[species.as_str()],
                &[],
                &format!("kdeg * {species}"),
            )?;
    }

    // Output gene: wired-OR of the drive promoters.
    let output = netlist.output_name().to_string();
    let mut drive_laws: Vec<String> = Vec::new();
    let mut modifiers: Vec<String> = Vec::new();
    if netlist.is_constitutive() {
        // A constitutive promoter at a typical fully-on activity.
        drive_laws.push("3.0".to_string());
    }
    for signal in netlist.outputs() {
        drive_laws.push(activity(signal)?);
        modifiers.push(match *signal {
            Signal::Input(j) => netlist.input_names()[j].clone(),
            Signal::Gate(g) => repressor_species(netlist, g),
        });
    }
    if !drive_laws.is_empty() {
        builder = builder.reaction_full(
            format!("prod_{output}"),
            vec![],
            vec![(output.clone(), 1)],
            modifiers,
            &drive_laws.join(" + "),
        )?;
    }
    builder = builder.reaction(
        format!("deg_{output}"),
        &[output.as_str()],
        &[],
        &format!("kdeg * {output}"),
    )?;

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;
    use glc_core::TruthTable;
    use glc_ssa::ode;
    use glc_ssa::CompiledModel;

    fn compile_hex(n: usize, hex: u64) -> (Netlist, Model) {
        let table = TruthTable::from_hex(n, hex);
        let names: Vec<String> = (0..n).map(|j| format!("I{j}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let netlist = synthesize(&table, &name_refs, "OUT");
        let model = compile(&netlist).unwrap();
        (netlist, model)
    }

    /// Deterministic steady-state output amount at a given input combo.
    fn ode_output(model: &Model, n: usize, combo: usize, level: f64) -> f64 {
        let mut model = model.clone();
        for j in 0..n {
            let high = (combo >> (n - 1 - j)) & 1 == 1;
            assert!(model.set_initial_amount(&format!("I{j}"), if high { level } else { 0.0 }));
        }
        let compiled = CompiledModel::new(&model).unwrap();
        let trace = ode::integrate(&compiled, 600.0, 0.1, 50.0).unwrap();
        *trace.series("OUT").unwrap().last().unwrap()
    }

    #[test]
    fn compiled_model_structure() {
        let (netlist, model) = compile_hex(2, 0x8); // AND
                                                    // Species: 2 inputs + 3 repressors + OUT.
        assert_eq!(model.species().len(), 2 + netlist.gate_count() + 1);
        assert!(model.species()[0].boundary);
        assert!(!model.species()[2].boundary);
        // Reactions: 2 per gate + production + degradation of OUT.
        assert_eq!(model.reactions().len(), 2 * netlist.gate_count() + 2);
    }

    #[test]
    fn and_gate_steady_states_separate_cleanly() {
        let (_, model) = compile_hex(2, 0x8);
        // Inputs applied at the paper's 15-molecule level.
        let low_combos = [0b00, 0b01, 0b10];
        for combo in low_combos {
            let out = ode_output(&model, 2, combo, 15.0);
            assert!(out < 10.0, "combo {combo:02b}: OUT = {out} should be low");
        }
        let out = ode_output(&model, 2, 0b11, 15.0);
        assert!(out > 30.0, "combo 11: OUT = {out} should be high");
    }

    #[test]
    fn all_paper_hexes_separate_at_threshold_inputs() {
        // Deterministic check that every catalog function's compiled
        // model puts highs above and lows below the 15-molecule
        // threshold with margin.
        for (n, hex) in [
            (3usize, 0x0Bu64),
            (3, 0x04),
            (3, 0x1C),
            (3, 0x41),
            (3, 0x70),
            (2, 0x6),
            (2, 0x8),
        ] {
            let table = TruthTable::from_hex(n, hex);
            let (_, model) = compile_hex(n, hex);
            for m in 0..1usize << n {
                let out = ode_output(&model, n, m, 15.0);
                if table.value(m) {
                    assert!(out > 25.0, "0x{hex:X} combo {m}: {out} should be high");
                } else {
                    assert!(out < 10.0, "0x{hex:X} combo {m}: {out} should be low");
                }
            }
        }
    }

    #[test]
    fn weak_inputs_fail_to_actuate() {
        // The Figure 5 threshold-3 regime: inputs too weak to trigger.
        let (_, model) = compile_hex(1, 0x1); // NOT gate
        let out_high_input = ode_output(&model, 1, 1, 3.0);
        // With a 3-molecule input the sensor barely activates, the
        // inverter stays open, and the output remains high — the wrong
        // answer, as the paper observes.
        assert!(
            out_high_input > 15.0,
            "OUT = {out_high_input}: weak input should fail to repress"
        );
    }

    #[test]
    fn unknown_repressor_is_reported() {
        use crate::netlist::{Gate, Netlist, Signal};
        let netlist = Netlist::new(
            vec!["A".into()],
            "Y",
            vec![Gate {
                repressor: "Mystery".into(),
                inputs: vec![Signal::Input(0)],
            }],
            vec![Signal::Gate(0)],
            false,
        )
        .unwrap();
        let err = compile(&netlist).unwrap_err();
        assert!(err.to_string().contains("Mystery"));
    }

    #[test]
    fn constitutive_netlist_produces_constantly() {
        let (_, model) = compile_hex(1, 0x3); // constant true
        let out = ode_output(&model, 1, 0, 15.0);
        assert!(out > 30.0, "constitutive OUT = {out}");
    }

    #[test]
    fn contradiction_netlist_produces_nothing() {
        let (_, model) = compile_hex(1, 0x0);
        let out = ode_output(&model, 1, 1, 15.0);
        assert!(out < 1.0, "silent OUT = {out}");
    }

    #[test]
    fn sbml_round_trip_of_compiled_model() {
        let (_, model) = compile_hex(3, 0x0B);
        let doc = glc_model::sbml::write(&model);
        let back = glc_model::sbml::read(&doc).unwrap();
        assert_eq!(back, model);
    }
}
