//! SBOL-subset structural interchange and the SBOL→model converter.
//!
//! The paper's circuits arrive as SBOL files from Cello: SBOL describes
//! *structure* (components and their regulatory interactions) but not
//! behaviour, so the authors run them through the SBOL→SBML converter of
//! Roehner et al. [14] before simulation. This module reproduces that
//! leg of the toolchain with an SBOL-flavoured subset:
//!
//! * a `moduleDefinition` lists `functionalComponent`s with roles
//!   (`input`, `repressor`, `output`) and the regulatory `interaction`s
//!   between them — `inhibition` (a repressor represses a promoter
//!   transcribing the target) and `stimulation` (an input sensor
//!   promoter transcribes the target);
//! * [`write`] serializes a [`Netlist`]; [`read`] reconstructs the
//!   netlist (re-deriving gate topological order from the interaction
//!   graph); [`convert`] goes straight to a behavioural
//!   [`glc_model::Model`], the exact role of [14].

use crate::netlist::{Gate, Netlist, Signal};
use glc_model::sbml::xml::{self, Element};
use glc_model::Model;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

const SBOL_NS: &str = "http://sbols.org/v2#";

/// Error reading an SBOL-subset document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SbolError {
    /// Malformed XML or missing required structure.
    Malformed(String),
    /// An interaction references an undeclared component.
    UnknownComponent(String),
    /// The repression graph has a cycle — only feed-forward circuits
    /// are supported (matching [`Netlist`] semantics).
    Cyclic,
    /// The netlist failed validation after reconstruction.
    Invalid(String),
}

impl fmt::Display for SbolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbolError::Malformed(msg) => write!(f, "malformed SBOL document: {msg}"),
            SbolError::UnknownComponent(name) => {
                write!(f, "interaction references undeclared component `{name}`")
            }
            SbolError::Cyclic => f.write_str("repression graph is cyclic (not feed-forward)"),
            SbolError::Invalid(msg) => write!(f, "reconstructed netlist invalid: {msg}"),
        }
    }
}

impl std::error::Error for SbolError {}

/// Serializes a netlist as an SBOL-subset document.
///
/// # Panics
///
/// Panics if two gates share a repressor name (library-synthesized
/// netlists never do).
pub fn write(netlist: &Netlist) -> String {
    let mut repressors = BTreeSet::new();
    for gate in netlist.gates() {
        assert!(
            repressors.insert(gate.repressor.as_str()),
            "duplicate repressor `{}` cannot be serialized",
            gate.repressor
        );
    }

    let mut module =
        Element::new("moduleDefinition").attr("id", format!("circuit_{}", netlist.output_name()));

    for name in netlist.input_names() {
        module.children.push(
            Element::new("functionalComponent")
                .attr("id", name.clone())
                .attr("role", "input"),
        );
    }
    for gate in netlist.gates() {
        module.children.push(
            Element::new("functionalComponent")
                .attr("id", gate.repressor.clone())
                .attr("role", "repressor"),
        );
    }
    let mut output = Element::new("functionalComponent")
        .attr("id", netlist.output_name())
        .attr("role", "output");
    if netlist.is_constitutive() {
        output = output.attr("constitutive", "true");
    }
    module.children.push(output);

    let push_interaction = |module: &mut Element, signal: &Signal, target: &str| {
        let (kind, source) = match *signal {
            Signal::Input(j) => ("stimulation", netlist.input_names()[j].clone()),
            Signal::Gate(g) => ("inhibition", netlist.gates()[g].repressor.clone()),
        };
        module.children.push(
            Element::new("interaction")
                .attr("type", kind)
                .attr("participant", source)
                .attr("target", target),
        );
    };

    for gate in netlist.gates() {
        for signal in &gate.inputs {
            push_interaction(&mut module, signal, &gate.repressor);
        }
    }
    for signal in netlist.outputs() {
        push_interaction(&mut module, signal, netlist.output_name());
    }

    let root = Element::new("sbol").attr("xmlns", SBOL_NS).child(module);
    format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}",
        root.to_xml()
    )
}

/// Parses an SBOL-subset document back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`SbolError`] for malformed documents, dangling component
/// references, or cyclic repression graphs.
pub fn read(document: &str) -> Result<Netlist, SbolError> {
    let root = xml::parse(document).map_err(|e| SbolError::Malformed(e.to_string()))?;
    if root.name != "sbol" {
        return Err(SbolError::Malformed(format!(
            "expected root `sbol`, found `{}`",
            root.name
        )));
    }
    let module = root
        .find("moduleDefinition")
        .ok_or_else(|| SbolError::Malformed("missing `moduleDefinition`".into()))?;

    let mut input_names: Vec<String> = Vec::new();
    let mut repressor_names: Vec<String> = Vec::new();
    let mut output_name: Option<String> = None;
    let mut constitutive = false;
    for component in module.find_all("functionalComponent") {
        let id = component
            .attribute("id")
            .ok_or_else(|| SbolError::Malformed("component without id".into()))?
            .to_string();
        match component.attribute("role") {
            Some("input") => input_names.push(id),
            Some("repressor") => repressor_names.push(id),
            Some("output") => {
                constitutive = component.attribute("constitutive") == Some("true");
                if output_name.replace(id).is_some() {
                    return Err(SbolError::Malformed("multiple outputs".into()));
                }
            }
            other => {
                return Err(SbolError::Malformed(format!(
                    "component `{id}` has unsupported role {other:?}"
                )))
            }
        }
    }
    let output_name =
        output_name.ok_or_else(|| SbolError::Malformed("no output component".into()))?;

    // Collect incoming signals per target.
    #[derive(Debug, Clone, Copy)]
    enum Source {
        Input(usize),
        Repressor(usize),
    }
    let input_index: BTreeMap<&str, usize> = input_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let repressor_index: BTreeMap<&str, usize> = repressor_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    let mut incoming: Vec<Vec<Source>> = vec![Vec::new(); repressor_names.len()];
    let mut output_sources: Vec<Source> = Vec::new();
    for interaction in module.find_all("interaction") {
        let kind = interaction
            .attribute("type")
            .ok_or_else(|| SbolError::Malformed("interaction without type".into()))?;
        let participant = interaction
            .attribute("participant")
            .ok_or_else(|| SbolError::Malformed("interaction without participant".into()))?;
        let target = interaction
            .attribute("target")
            .ok_or_else(|| SbolError::Malformed("interaction without target".into()))?;
        let source = match kind {
            "stimulation" => Source::Input(
                *input_index
                    .get(participant)
                    .ok_or_else(|| SbolError::UnknownComponent(participant.to_string()))?,
            ),
            "inhibition" => Source::Repressor(
                *repressor_index
                    .get(participant)
                    .ok_or_else(|| SbolError::UnknownComponent(participant.to_string()))?,
            ),
            other => {
                return Err(SbolError::Malformed(format!(
                    "unsupported interaction type `{other}`"
                )))
            }
        };
        if target == output_name {
            output_sources.push(source);
        } else if let Some(&r) = repressor_index.get(target) {
            incoming[r].push(source);
        } else {
            return Err(SbolError::UnknownComponent(target.to_string()));
        }
    }

    // Topological order of repressors over repression edges.
    let count = repressor_names.len();
    let mut order: Vec<usize> = Vec::with_capacity(count);
    let mut placed = vec![false; count];
    while order.len() < count {
        let mut progressed = false;
        for r in 0..count {
            if placed[r] {
                continue;
            }
            let ready = incoming[r].iter().all(|source| match source {
                Source::Input(_) => true,
                Source::Repressor(h) => placed[*h],
            });
            if ready {
                placed[r] = true;
                order.push(r);
                progressed = true;
            }
        }
        if !progressed {
            return Err(SbolError::Cyclic);
        }
    }
    let position: BTreeMap<usize, usize> =
        order.iter().enumerate().map(|(pos, &r)| (r, pos)).collect();

    let to_signal = |source: &Source| -> Signal {
        match source {
            Source::Input(j) => Signal::Input(*j),
            Source::Repressor(r) => Signal::Gate(position[r]),
        }
    };
    let gates: Vec<Gate> = order
        .iter()
        .map(|&r| Gate {
            repressor: repressor_names[r].clone(),
            inputs: incoming[r].iter().map(&to_signal).collect(),
        })
        .collect();
    let outputs: Vec<Signal> = output_sources.iter().map(&to_signal).collect();

    Netlist::new(input_names, output_name, gates, outputs, constitutive)
        .map_err(|e| SbolError::Invalid(e.to_string()))
}

/// The SBOL→model converter: parses the structural document and compiles
/// it to a behavioural reaction model — the role reference [14] plays in
/// the paper's toolchain.
///
/// # Errors
///
/// Returns [`SbolError`] for structural problems; compilation failures
/// (unknown repressors) surface as [`SbolError::Invalid`].
pub fn convert(document: &str) -> Result<Model, SbolError> {
    let netlist = read(document)?;
    crate::compile::compile(&netlist).map_err(|e| SbolError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;
    use glc_core::TruthTable;

    fn netlist_of(hex: u64) -> Netlist {
        synthesize(
            &TruthTable::from_hex(3, hex),
            &["IPTG", "aTc", "Ara"],
            "YFP",
        )
    }

    #[test]
    fn write_read_round_trip_preserves_function() {
        for hex in [0x0Bu64, 0x04, 0x1C, 0x96, 0xE8, 0x01, 0xFE] {
            let original = netlist_of(hex);
            let document = write(&original);
            let back = read(&document).unwrap_or_else(|e| panic!("0x{hex:X}: {e}"));
            assert_eq!(
                back.truth_table().to_hex(),
                hex,
                "0x{hex:X} function changed"
            );
            assert_eq!(back.gate_count(), original.gate_count(), "0x{hex:X}");
            assert_eq!(back.input_names(), original.input_names());
            assert_eq!(back.output_name(), original.output_name());
        }
    }

    #[test]
    fn document_is_sbol_flavoured() {
        let document = write(&netlist_of(0x0B));
        assert!(document.contains("<sbol"));
        assert!(document.contains("moduleDefinition"));
        assert!(document.contains("functionalComponent"));
        assert!(document.contains("role=\"repressor\""));
        assert!(document.contains("type=\"inhibition\""));
        assert!(document.contains("type=\"stimulation\""));
    }

    #[test]
    fn convert_produces_a_simulatable_model() {
        let document = write(&netlist_of(0x04));
        let model = convert(&document).unwrap();
        assert!(model.validate().is_ok());
        // Same behavioural model as compiling the netlist directly.
        let direct = crate::compile::compile(&netlist_of(0x04)).unwrap();
        assert_eq!(model, direct);
    }

    #[test]
    fn constitutive_flag_round_trips() {
        let netlist = synthesize(&TruthTable::from_hex(1, 0x3), &["A"], "Y");
        assert!(netlist.is_constitutive());
        let back = read(&write(&netlist)).unwrap();
        assert!(back.is_constitutive());
        assert!(back.truth_table().is_tautology());
    }

    #[test]
    fn gate_order_is_rederived_from_topology() {
        // Hand-build a netlist whose serialization order differs from a
        // valid topological order after the reader's reconstruction.
        let netlist = Netlist::new(
            vec!["A".into()],
            "Y",
            vec![
                Gate {
                    repressor: "PhlF".into(),
                    inputs: vec![Signal::Input(0)],
                },
                Gate {
                    repressor: "SrpR".into(),
                    inputs: vec![Signal::Gate(0)],
                },
                Gate {
                    repressor: "BM3R1".into(),
                    inputs: vec![Signal::Gate(1), Signal::Input(0)],
                },
            ],
            vec![Signal::Gate(2)],
            false,
        )
        .unwrap();
        let back = read(&write(&netlist)).unwrap();
        assert_eq!(back.truth_table(), netlist.truth_table());
    }

    #[test]
    fn cyclic_document_is_rejected() {
        let document = r#"<sbol><moduleDefinition id="c">
            <functionalComponent id="A" role="input"/>
            <functionalComponent id="R1" role="repressor"/>
            <functionalComponent id="R2" role="repressor"/>
            <functionalComponent id="Y" role="output"/>
            <interaction type="inhibition" participant="R1" target="R2"/>
            <interaction type="inhibition" participant="R2" target="R1"/>
            <interaction type="inhibition" participant="R1" target="Y"/>
        </moduleDefinition></sbol>"#;
        assert_eq!(read(document), Err(SbolError::Cyclic));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(matches!(read("<nope/>"), Err(SbolError::Malformed(_))));
        assert!(matches!(read("<sbol/>"), Err(SbolError::Malformed(_))));
        assert!(matches!(read("not xml"), Err(SbolError::Malformed(_))));
        // Unknown participant.
        let document = r#"<sbol><moduleDefinition id="c">
            <functionalComponent id="A" role="input"/>
            <functionalComponent id="Y" role="output"/>
            <interaction type="stimulation" participant="ghost" target="Y"/>
        </moduleDefinition></sbol>"#;
        assert!(matches!(
            read(document),
            Err(SbolError::UnknownComponent(_))
        ));
        // Unknown target.
        let document = r#"<sbol><moduleDefinition id="c">
            <functionalComponent id="A" role="input"/>
            <functionalComponent id="Y" role="output"/>
            <interaction type="stimulation" participant="A" target="ghost"/>
        </moduleDefinition></sbol>"#;
        assert!(matches!(
            read(document),
            Err(SbolError::UnknownComponent(_))
        ));
        // Unsupported role / interaction type.
        let document = r#"<sbol><moduleDefinition id="c">
            <functionalComponent id="A" role="wizard"/>
        </moduleDefinition></sbol>"#;
        assert!(matches!(read(document), Err(SbolError::Malformed(_))));
    }

    #[test]
    fn error_display() {
        assert!(SbolError::Cyclic.to_string().contains("cyclic"));
        assert!(SbolError::UnknownComponent("x".into())
            .to_string()
            .contains('x'));
        assert!(SbolError::Invalid("y".into()).to_string().contains('y'));
    }

    #[test]
    #[should_panic(expected = "duplicate repressor")]
    fn duplicate_repressors_cannot_serialize() {
        let netlist = Netlist::new(
            vec!["A".into()],
            "Y",
            vec![
                Gate {
                    repressor: "PhlF".into(),
                    inputs: vec![Signal::Input(0)],
                },
                Gate {
                    repressor: "PhlF".into(),
                    inputs: vec![Signal::Gate(0)],
                },
            ],
            vec![Signal::Gate(1)],
            false,
        )
        .unwrap();
        let _ = write(&netlist);
    }
}
