//! The repressor gate library.
//!
//! Twelve repressors modelled on the Cello gate library (Nielsen et al.
//! 2016, Table S5): PhlF, SrpR, BM3R1, … Each has a distinct Hill
//! response. The published parameters are in RPU (relative promoter
//! units); this reproduction rescales them to molecule-count units such
//! that a fully-on promoter sustains a steady state of ~50–75 molecules
//! against the shared degradation rate — comfortably above the paper's
//! 15-molecule threshold — while a fully-repressed one sustains ~1–3.
//! The rescaling is a documented substitution (`DESIGN.md` §7).

use crate::response::{Activation, Repression};
use serde::{Deserialize, Serialize};

/// Shared first-order degradation rate of every protein (1/t.u.).
///
/// With production rates `ymax ∈ [2.4, 3.8]` this puts fully-on steady
/// states at `ymax / DEGRADATION_RATE ∈ [48, 76]` molecules.
pub const DEGRADATION_RATE: f64 = 0.05;

/// A library repressor gate: name plus response parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateParams {
    /// Repressor name (also used to derive species identifiers).
    pub name: String,
    /// Response of the gate's cognate promoter to the repressor.
    pub response: Repression,
}

/// An input sensor: promoter activity rises with the input amount
/// (e.g. pTac responding to IPTG).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorParams {
    /// Response of the sensor promoter to the input species.
    pub response: Activation,
}

impl Default for SensorParams {
    fn default() -> Self {
        SensorParams {
            response: Activation {
                ymax: 3.0,
                ymin: 0.03,
                k: 7.0,
                n: 2.8,
            },
        }
    }
}

/// The twelve library repressors, in assignment order.
///
/// Parameters are distinct per repressor (as in the real library) so
/// cascaded gates don't behave identically.
pub fn repressors() -> Vec<GateParams> {
    let raw: [(&str, f64, f64, f64, f64); 12] = [
        // (name, ymax, ymin, K, n)
        ("PhlF", 3.8, 0.06, 8.0, 3.9),
        ("SrpR", 2.9, 0.07, 7.0, 2.9),
        ("BM3R1", 2.6, 0.10, 6.5, 3.4),
        ("QacR", 3.2, 0.15, 9.0, 2.7),
        ("AmtR", 2.8, 0.08, 7.5, 2.8),
        ("LitR", 3.0, 0.12, 8.5, 2.6),
        ("BetI", 2.7, 0.09, 7.8, 3.1),
        ("HlyIIR", 2.5, 0.07, 6.8, 3.2),
        ("IcaRA", 2.4, 0.10, 7.2, 2.5),
        ("PsrA", 3.1, 0.11, 8.2, 2.9),
        ("LmrA", 2.6, 0.08, 7.0, 3.0),
        ("AmeR", 2.9, 0.13, 8.8, 2.7),
    ];
    raw.iter()
        .map(|&(name, ymax, ymin, k, n)| GateParams {
            name: name.to_string(),
            response: Repression { ymax, ymin, k, n },
        })
        .collect()
}

/// Looks up a repressor by name.
pub fn repressor(name: &str) -> Option<GateParams> {
    repressors().into_iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_distinct_repressors() {
        let lib = repressors();
        assert_eq!(lib.len(), 12);
        let mut names: Vec<&str> = lib.iter().map(|g| g.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "names must be unique");
    }

    #[test]
    fn steady_states_bracket_the_threshold() {
        // Every gate's fully-on steady state must sit well above the
        // paper's 15-molecule threshold and the fully-repressed state
        // well below it.
        for gate in repressors() {
            let on = gate.response.ymax / DEGRADATION_RATE;
            let off = gate.response.ymin / DEGRADATION_RATE;
            assert!(on > 40.0, "{}: on state {on} too low", gate.name);
            assert!(off < 5.0, "{}: off state {off} too high", gate.name);
        }
    }

    #[test]
    fn gates_switch_decisively_at_upstream_levels() {
        // Driven by another gate's fully-on steady state (~50+), each
        // promoter must be nearly fully repressed; at an off state (~3)
        // nearly fully open.
        for gate in repressors() {
            let repressed = gate.response.activity(50.0);
            let open = gate.response.activity(3.0);
            assert!(
                repressed < 0.2 * gate.response.ymax,
                "{} not repressed at 50 molecules",
                gate.name
            );
            assert!(
                open > 0.7 * gate.response.ymax,
                "{} not open at 3 molecules",
                gate.name
            );
        }
    }

    #[test]
    fn sensor_discriminates_threshold_inputs() {
        // At the paper's applied input of 15 molecules the sensor should
        // be mostly on; at 3 molecules mostly off (the Figure 5
        // "too weak to trigger" regime).
        let sensor = SensorParams::default();
        let at_15 = sensor.response.activity(15.0);
        let at_3 = sensor.response.activity(3.0);
        assert!(at_15 > 0.8 * sensor.response.ymax, "at 15: {at_15}");
        assert!(at_3 < 0.15 * sensor.response.ymax, "at 3: {at_3}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(repressor("PhlF").is_some());
        assert!(repressor("SrpR").is_some());
        assert!(repressor("NoSuchGate").is_none());
    }
}
