//! Genetic gate library, netlists, synthesis and the evaluation-circuit
//! catalog.
//!
//! The paper evaluates its algorithm on 15 genetic circuits: 10 real
//! circuits from Cello (Nielsen et al., *Science* 2016 [11], named by the
//! hex id of their truth table, e.g. `0x0B`) and 5 textbook circuits from
//! Myers' *Engineering Genetic Circuits* [12]. The original SBOL/SBML
//! files are not redistributable, so this crate rebuilds the circuits
//! from their specifications (see `DESIGN.md` for the substitution
//! argument):
//!
//! * [`response`] — Hill response functions of repressor gates and input
//!   sensors;
//! * [`library`] — a Cello-style repressor library (PhlF, SrpR, …) with
//!   distinct response parameters;
//! * [`netlist`] — NOT/NOR netlists over input sensors, with free
//!   wired-OR at the output (tandem promoters), exactly the gate model
//!   Cello synthesizes to;
//! * [`synth`] — truth table → minimized SOP (Quine–McCluskey from
//!   `glc-core`) → NOR/NOT netlist;
//! * [`compile`] — netlist → behavioural [`glc_model::Model`]
//!   (production with Hill propensities, first-order degradation);
//! * [`parts`] — SBOL-like structural view (promoters, RBS, CDS,
//!   terminators) used for the paper's "3–26 genetic components" counts;
//! * [`book`] — the 5 mass-action textbook circuits (explicit
//!   promoter–repressor binding), including Figure 1's AND gate;
//! * [`catalog`] — the full 15-circuit evaluation set with metadata.
//!
//! # Example
//!
//! ```
//! use glc_gates::synth::synthesize;
//! use glc_gates::compile::compile;
//! use glc_core::TruthTable;
//!
//! // Rebuild Cello circuit 0x0B and compile it to a reaction model.
//! let table = TruthTable::from_hex(3, 0x0B);
//! let netlist = synthesize(&table, &["A", "B", "C"], "YFP");
//! assert!(netlist.gate_count() <= 7);
//! let model = compile(&netlist).unwrap();
//! assert!(!model.reactions().is_empty());
//! ```

#![warn(missing_docs)]

pub mod assign;
pub mod book;
pub mod catalog;
pub mod compile;
pub mod library;
pub mod netlist;
pub mod parts;
pub mod response;
pub mod sbol;
pub mod synth;

pub use catalog::{CircuitEntry, CircuitKind};
pub use library::{GateParams, SensorParams, DEGRADATION_RATE};
pub use netlist::{Netlist, Signal};
