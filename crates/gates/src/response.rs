//! Hill response functions of genetic gates and input sensors.
//!
//! A repressor gate's steady-state behaviour is captured by the Hill
//! repression response
//!
//! ```text
//! y(x) = ymin + (ymax − ymin) · K^n / (K^n + x^n)
//! ```
//!
//! where `x` is the repressor amount, `ymax`/`ymin` the un-/fully
//! repressed promoter activity (production rate), `K` the switch point
//! and `n` the cooperativity (Nielsen et al. 2016, Fig. 2). An input
//! sensor uses the activation form: promoter activity rises with the
//! input amount.

use serde::{Deserialize, Serialize};

/// Hill *repression* response of a gate's cognate promoter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Repression {
    /// Activity with no repressor bound (production rate, molecules/t.u.).
    pub ymax: f64,
    /// Activity at full repression (the leak).
    pub ymin: f64,
    /// Repressor amount at half-repression (molecules).
    pub k: f64,
    /// Hill coefficient (cooperativity).
    pub n: f64,
}

impl Repression {
    /// Steady-state activity at repressor amount `x`.
    pub fn activity(&self, x: f64) -> f64 {
        let kn = self.k.powf(self.n);
        self.ymin + (self.ymax - self.ymin) * kn / (kn + x.max(0.0).powf(self.n))
    }

    /// The kinetic-law fragment for this response applied to species
    /// `species` (parsable by `glc-model`).
    pub fn law(&self, species: &str) -> String {
        format!(
            "{} + {} * hillr({species}, {}, {})",
            fmt(self.ymin),
            fmt(self.ymax - self.ymin),
            fmt(self.k),
            fmt(self.n)
        )
    }

    /// Like [`Repression::law`] but for a promoter repressed by the *sum*
    /// of several species (a multi-input NOR promoter).
    ///
    /// # Panics
    ///
    /// Panics if `species` is empty.
    pub fn law_sum(&self, species: &[&str]) -> String {
        assert!(!species.is_empty(), "at least one repressor required");
        if species.len() == 1 {
            return self.law(species[0]);
        }
        format!(
            "{} + {} * hillr({}, {}, {})",
            fmt(self.ymin),
            fmt(self.ymax - self.ymin),
            species.join(" + "),
            fmt(self.k),
            fmt(self.n)
        )
    }
}

/// Hill *activation* response of an input sensor promoter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Activation {
    /// Activity at saturating input.
    pub ymax: f64,
    /// Activity with no input (the leak).
    pub ymin: f64,
    /// Input amount at half-activation (molecules).
    pub k: f64,
    /// Hill coefficient.
    pub n: f64,
}

impl Activation {
    /// Steady-state activity at input amount `x`.
    pub fn activity(&self, x: f64) -> f64 {
        let xn = x.max(0.0).powf(self.n);
        self.ymin + (self.ymax - self.ymin) * xn / (self.k.powf(self.n) + xn)
    }

    /// The kinetic-law fragment for this response applied to `species`.
    pub fn law(&self, species: &str) -> String {
        format!(
            "{} + {} * hilla({species}, {}, {})",
            fmt(self.ymin),
            fmt(self.ymax - self.ymin),
            fmt(self.k),
            fmt(self.n)
        )
    }
}

/// Formats a parameter without trailing zeros (keeps kinetic laws
/// readable and round-trippable).
fn fmt(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glc_model::Expr;
    use std::collections::HashMap;

    const REP: Repression = Repression {
        ymax: 3.8,
        ymin: 0.06,
        k: 8.0,
        n: 3.9,
    };

    const ACT: Activation = Activation {
        ymax: 3.0,
        ymin: 0.03,
        k: 7.0,
        n: 2.8,
    };

    #[test]
    fn repression_limits() {
        assert!((REP.activity(0.0) - REP.ymax).abs() < 1e-9);
        assert!((REP.activity(1e6) - REP.ymin).abs() < 1e-6);
        let half = REP.activity(REP.k);
        assert!((half - (REP.ymax + REP.ymin) / 2.0).abs() < 1e-9);
        // Monotone decreasing.
        assert!(REP.activity(5.0) > REP.activity(10.0));
    }

    #[test]
    fn activation_limits() {
        assert!((ACT.activity(0.0) - ACT.ymin).abs() < 1e-9);
        assert!((ACT.activity(1e6) - ACT.ymax).abs() < 1e-4);
        assert!(ACT.activity(10.0) > ACT.activity(5.0));
    }

    #[test]
    fn laws_parse_and_match_activity() {
        let law = Expr::parse(&REP.law("R")).unwrap();
        for x in [0.0, 2.0, 8.0, 30.0, 100.0] {
            let mut env = HashMap::new();
            env.insert("R".to_string(), x);
            let from_law = law.eval(&env).unwrap();
            assert!(
                (from_law - REP.activity(x)).abs() < 1e-9,
                "x = {x}: law {from_law} vs activity {}",
                REP.activity(x)
            );
        }
        let law = Expr::parse(&ACT.law("I")).unwrap();
        let mut env = HashMap::new();
        env.insert("I".to_string(), 15.0);
        assert!((law.eval(&env).unwrap() - ACT.activity(15.0)).abs() < 1e-9);
    }

    #[test]
    fn law_sum_adds_repressors() {
        let law = Expr::parse(&REP.law_sum(&["R1", "R2"])).unwrap();
        let mut env = HashMap::new();
        env.insert("R1".to_string(), 4.0);
        env.insert("R2".to_string(), 4.0);
        assert!((law.eval(&env).unwrap() - REP.activity(8.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one repressor")]
    fn law_sum_rejects_empty() {
        let _ = REP.law_sum(&[]);
    }

    #[test]
    fn negative_amounts_clamp() {
        assert_eq!(REP.activity(-5.0), REP.activity(0.0));
        assert_eq!(ACT.activity(-5.0), ACT.activity(0.0));
    }
}
