//! The 15-circuit evaluation catalog.
//!
//! Mirrors the paper's eval set: 5 textbook circuits from Myers [12]
//! (mass-action models, [`crate::book`]) and 10 Cello circuits from
//! Nielsen et al. [11] rebuilt from their truth-table hex ids
//! (Hill-kinetics models synthesized by [`crate::synth`] and compiled by
//! [`crate::compile`]). The set spans 1–3 inputs, 1–7 logic gates and
//! roughly 3–26 genetic components, as the paper reports.

use crate::book;
use crate::compile::compile;
use crate::netlist::Netlist;
use crate::parts::structure;
use crate::synth::synthesize;
use glc_core::TruthTable;
use glc_model::Model;

/// Provenance of a catalog circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitKind {
    /// Mass-action model in the style of Myers' book [12].
    Book,
    /// Cello circuit rebuilt from its truth-table hex id [11].
    Cello {
        /// The truth-table id (e.g. `0x0B`).
        hex: u64,
    },
}

/// One evaluation circuit with its metadata.
#[derive(Debug, Clone)]
pub struct CircuitEntry {
    /// Unique identifier (`book_and`, `cello_0x0B`, ...).
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// Provenance.
    pub kind: CircuitKind,
    /// Input species names, combination MSB first.
    pub inputs: Vec<String>,
    /// Output species name.
    pub output: String,
    /// The intended Boolean function.
    pub expected: TruthTable,
    /// Logic gate count.
    pub gate_count: usize,
    /// Genetic component count.
    pub component_count: usize,
    /// The behavioural model.
    pub model: Model,
}

/// Cello sensor/input species names by input count.
fn cello_inputs(n: usize) -> Vec<&'static str> {
    match n {
        1 => vec!["IPTG"],
        2 => vec!["IPTG", "aTc"],
        3 => vec!["IPTG", "aTc", "Ara"],
        _ => panic!("Cello circuits have 1..=3 inputs, got {n}"),
    }
}

/// Builds a Cello-style circuit from its hex id.
///
/// # Panics
///
/// Panics if `n` is outside `1..=3`.
pub fn cello(n: usize, hex: u64) -> CircuitEntry {
    let table = TruthTable::from_hex(n, hex);
    let inputs = cello_inputs(n);
    let netlist: Netlist = synthesize(&table, &inputs, "YFP");
    let model = compile(&netlist).expect("library netlists always compile");
    let components = structure(&netlist).component_count();
    CircuitEntry {
        id: format!("cello_0x{hex:02X}"),
        description: format!(
            "Cello circuit 0x{hex:02X}: {n}-input NOR/NOT circuit ({} gates)",
            netlist.gate_count()
        ),
        kind: CircuitKind::Cello { hex },
        inputs: inputs.iter().map(|s| s.to_string()).collect(),
        output: "YFP".to_string(),
        expected: table,
        gate_count: netlist.gate_count(),
        component_count: components,
        model,
    }
}

impl From<book::BookCircuit> for CircuitEntry {
    fn from(circuit: book::BookCircuit) -> Self {
        CircuitEntry {
            id: circuit.id.to_string(),
            description: circuit.description.to_string(),
            kind: CircuitKind::Book,
            inputs: circuit.inputs,
            output: circuit.output,
            expected: circuit.expected,
            gate_count: circuit.gate_count,
            component_count: circuit.component_count,
            model: circuit.model,
        }
    }
}

/// The hex ids of the ten Cello circuits in the catalog (the three the
/// paper plots — 0x0B, 0x04, 0x1C — first).
pub const CELLO_HEXES: [(usize, u64); 10] = [
    (3, 0x0B),
    (3, 0x04),
    (3, 0x1C),
    (3, 0x41),
    (3, 0x70),
    (3, 0x07),
    (3, 0xB3),
    (3, 0xF4),
    (2, 0x6),
    (2, 0x8),
];

/// The full 15-circuit evaluation set (5 book + 10 Cello).
pub fn all() -> Vec<CircuitEntry> {
    let mut entries: Vec<CircuitEntry> = book::all().into_iter().map(CircuitEntry::from).collect();
    entries.extend(CELLO_HEXES.iter().map(|&(n, hex)| cello(n, hex)));
    entries
}

/// Looks a circuit up by id.
pub fn by_id(id: &str) -> Option<CircuitEntry> {
    all().into_iter().find(|entry| entry.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_fifteen_circuits() {
        let entries = all();
        assert_eq!(entries.len(), 15);
        let books = entries
            .iter()
            .filter(|e| e.kind == CircuitKind::Book)
            .count();
        assert_eq!(books, 5);
    }

    #[test]
    fn ids_are_unique() {
        let entries = all();
        let mut ids: Vec<&str> = entries.iter().map(|e| e.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn metadata_matches_paper_ranges() {
        for entry in all() {
            assert!(
                (1..=3).contains(&entry.inputs.len()),
                "{}: {} inputs",
                entry.id,
                entry.inputs.len()
            );
            assert!(
                (1..=7).contains(&entry.gate_count),
                "{}: {} gates",
                entry.id,
                entry.gate_count
            );
            assert!(
                (3..=26).contains(&entry.component_count),
                "{}: {} components",
                entry.id,
                entry.component_count
            );
            assert_eq!(entry.expected.inputs(), entry.inputs.len(), "{}", entry.id);
            assert!(entry.model.validate().is_ok(), "{}", entry.id);
        }
    }

    #[test]
    fn cello_entries_expose_their_hex() {
        let entry = by_id("cello_0x0B").unwrap();
        assert_eq!(entry.kind, CircuitKind::Cello { hex: 0x0B });
        assert_eq!(entry.expected.to_hex(), 0x0B);
        assert_eq!(entry.inputs, vec!["IPTG", "aTc", "Ara"]);
        assert_eq!(entry.output, "YFP");
    }

    #[test]
    fn paper_plotted_circuits_lead_the_cello_list() {
        assert_eq!(CELLO_HEXES[0], (3, 0x0B));
        assert_eq!(CELLO_HEXES[1], (3, 0x04));
        assert_eq!(CELLO_HEXES[2], (3, 0x1C));
    }

    #[test]
    fn by_id_misses_gracefully() {
        assert!(by_id("nonexistent").is_none());
        assert!(by_id("book_and").is_some());
    }

    #[test]
    fn models_have_boundary_inputs() {
        for entry in all() {
            for input in &entry.inputs {
                let idx = entry.model.species_id(input).expect("input declared");
                assert!(
                    entry.model.species_at(idx).boundary,
                    "{}: input {input} must be a boundary species",
                    entry.id
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "1..=3 inputs")]
    fn cello_rejects_wide_inputs() {
        let _ = cello(4, 0x0);
    }
}
