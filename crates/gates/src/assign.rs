//! Gate assignment optimization (the Cello assignment problem).
//!
//! A netlist fixes *topology*; which library repressor implements each
//! gate is a free choice, and a bad choice wrecks the noise margin —
//! Cello's core search is exactly this assignment (Nielsen et al. 2016
//! optimize a circuit score by simulated annealing over assignments).
//! This module reproduces a deterministic version: deterministic
//! steady-state propagation through the Hill responses scores an
//! assignment by its worst-case output separation, and a greedy
//! hill-climbing search (swap two gates / retarget one gate to an
//! unused repressor) improves it.
//!
//! The score is
//! `margin = min(ON outputs) / max(OFF outputs)` over all input
//! combinations (∞ when the circuit is constant); larger is better, and
//! anything below ~3 digitizes unreliably at molecule-count noise.

use crate::library::{self, SensorParams, DEGRADATION_RATE};
use crate::netlist::{Gate, Netlist, Signal};

/// Deterministic steady-state score of one assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentScore {
    /// Smallest steady-state output among logic-ON combinations.
    pub on_min: f64,
    /// Largest steady-state output among logic-OFF combinations.
    pub off_max: f64,
    /// `on_min / off_max`; `f64::INFINITY` for constant circuits.
    pub margin: f64,
}

/// Computes the steady-state output level of `netlist` at input
/// combination `m` with inputs applied at `input_level`, propagating
/// mean behaviour through the Hill responses.
pub fn steady_state_output(netlist: &Netlist, m: usize, input_level: f64) -> f64 {
    let sensor = SensorParams::default();
    let n = netlist.inputs();
    let signal_activity = |signal: &Signal, gate_levels: &[f64]| -> f64 {
        match *signal {
            Signal::Input(j) => {
                let high = (m >> (n - 1 - j)) & 1 == 1;
                let amount = if high { input_level } else { 0.0 };
                sensor.response.activity(amount)
            }
            Signal::Gate(g) => gate_levels[g],
        }
    };

    // Feed-forward: each gate's repressor settles at (input activity
    // sum)/kdeg; its promoter activity follows its response curve.
    let mut gate_activity: Vec<f64> = Vec::with_capacity(netlist.gates().len());
    for gate in netlist.gates() {
        let drive: f64 = gate
            .inputs
            .iter()
            .map(|s| signal_activity(s, &gate_activity))
            .sum();
        let repressor_ss = drive / DEGRADATION_RATE;
        let params = library::repressor(&gate.repressor)
            .unwrap_or_else(|| panic!("unknown repressor `{}`", gate.repressor));
        gate_activity.push(params.response.activity(repressor_ss));
    }

    let mut production: f64 = netlist
        .outputs()
        .iter()
        .map(|s| signal_activity(s, &gate_activity))
        .sum();
    if netlist.is_constitutive() {
        production += 3.0; // matches compile.rs's constitutive promoter
    }
    production / DEGRADATION_RATE
}

/// Scores the current assignment of `netlist` at the given applied input
/// level (the analysis threshold, in the paper's protocol).
pub fn evaluate(netlist: &Netlist, input_level: f64) -> AssignmentScore {
    let table = netlist.truth_table();
    let mut on_min = f64::INFINITY;
    let mut off_max: f64 = 0.0;
    for m in 0..table.rows() {
        let level = steady_state_output(netlist, m, input_level);
        if table.value(m) {
            on_min = on_min.min(level);
        } else {
            off_max = off_max.max(level);
        }
    }
    let margin = if on_min.is_infinite() || off_max == 0.0 {
        f64::INFINITY
    } else {
        on_min / off_max
    };
    AssignmentScore {
        on_min: if on_min.is_finite() { on_min } else { 0.0 },
        off_max,
        margin,
    }
}

/// Reassigns library repressors to the gates of `netlist` by greedy
/// hill-climbing on [`evaluate`]'s margin. Deterministic: moves are
/// tried in a fixed order and accepted only on strict improvement.
///
/// Returns the (possibly identical) improved netlist and its score.
///
/// # Panics
///
/// Panics if the netlist has more gates than the library has repressors.
pub fn optimize(netlist: &Netlist, input_level: f64) -> (Netlist, AssignmentScore) {
    let library_names: Vec<String> = library::repressors().into_iter().map(|g| g.name).collect();
    assert!(
        netlist.gates().len() <= library_names.len(),
        "netlist needs more repressors than the library provides"
    );

    let rebuild = |assignment: &[String], base: &Netlist| -> Netlist {
        let gates: Vec<Gate> = base
            .gates()
            .iter()
            .zip(assignment)
            .map(|(gate, name)| Gate {
                repressor: name.clone(),
                inputs: gate.inputs.clone(),
            })
            .collect();
        Netlist::new(
            base.input_names().to_vec(),
            base.output_name(),
            gates,
            base.outputs().to_vec(),
            base.is_constitutive(),
        )
        .expect("reassignment preserves structure")
    };

    let mut assignment: Vec<String> = netlist
        .gates()
        .iter()
        .map(|g| g.repressor.clone())
        .collect();
    let mut best = evaluate(netlist, input_level);

    loop {
        let mut improved = false;

        // Move 1: swap the repressors of two gates.
        for a in 0..assignment.len() {
            for b in (a + 1)..assignment.len() {
                let mut candidate = assignment.clone();
                candidate.swap(a, b);
                let net = rebuild(&candidate, netlist);
                let score = evaluate(&net, input_level);
                if score.margin > best.margin {
                    assignment = candidate;
                    best = score;
                    improved = true;
                }
            }
        }

        // Move 2: retarget one gate to an unused library repressor.
        for slot in 0..assignment.len() {
            for name in &library_names {
                if assignment.contains(name) {
                    continue;
                }
                let mut candidate = assignment.clone();
                candidate[slot] = name.clone();
                let net = rebuild(&candidate, netlist);
                let score = evaluate(&net, input_level);
                if score.margin > best.margin {
                    assignment = candidate;
                    best = score;
                    improved = true;
                }
            }
        }

        if !improved {
            break;
        }
    }
    (rebuild(&assignment, netlist), best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;
    use glc_core::TruthTable;

    fn netlist_of(hex: u64) -> Netlist {
        synthesize(&TruthTable::from_hex(3, hex), &["A", "B", "C"], "Y")
    }

    #[test]
    fn steady_state_matches_logic_for_library_circuits() {
        for hex in [0x0Bu64, 0x04, 0x1C, 0x70] {
            let netlist = netlist_of(hex);
            let table = netlist.truth_table();
            for m in 0..8 {
                let level = steady_state_output(&netlist, m, 15.0);
                if table.value(m) {
                    assert!(level > 25.0, "0x{hex:X} combo {m}: {level}");
                } else {
                    assert!(level < 10.0, "0x{hex:X} combo {m}: {level}");
                }
            }
        }
    }

    #[test]
    fn evaluate_reports_sane_margins() {
        let score = evaluate(&netlist_of(0x0B), 15.0);
        assert!(score.margin > 3.0, "margin {}", score.margin);
        assert!(score.on_min > score.off_max);
    }

    #[test]
    fn constant_circuit_has_infinite_margin() {
        let score = evaluate(&netlist_of(0x00), 15.0);
        assert!(score.margin.is_infinite());
        let score = evaluate(&netlist_of(0xFF), 15.0);
        assert!(score.margin.is_infinite());
    }

    #[test]
    fn optimize_never_worsens_and_preserves_function() {
        for hex in [0x0Bu64, 0x1C, 0x96, 0xE8] {
            let netlist = netlist_of(hex);
            let before = evaluate(&netlist, 15.0);
            let (optimized, after) = optimize(&netlist, 15.0);
            assert!(
                after.margin >= before.margin,
                "0x{hex:X}: {} -> {}",
                before.margin,
                after.margin
            );
            assert_eq!(optimized.truth_table().to_hex(), hex, "function changed");
        }
    }

    #[test]
    fn optimize_recovers_a_deliberately_bad_assignment() {
        // Reverse the default assignment (pairs weak/strong gates badly)
        // and check the optimizer recovers at least the default margin.
        let netlist = netlist_of(0x1C);
        let reversed: Vec<Gate> = {
            let names: Vec<String> = netlist
                .gates()
                .iter()
                .rev()
                .map(|g| g.repressor.clone())
                .collect();
            netlist
                .gates()
                .iter()
                .zip(names)
                .map(|(g, repressor)| Gate {
                    repressor,
                    inputs: g.inputs.clone(),
                })
                .collect()
        };
        let bad = Netlist::new(
            netlist.input_names().to_vec(),
            netlist.output_name(),
            reversed,
            netlist.outputs().to_vec(),
            netlist.is_constitutive(),
        )
        .unwrap();
        let default_score = evaluate(&netlist, 15.0);
        let (_, recovered) = optimize(&bad, 15.0);
        assert!(
            recovered.margin >= default_score.margin * 0.99,
            "optimizer stuck below default: {} vs {}",
            recovered.margin,
            default_score.margin
        );
    }

    #[test]
    fn optimization_is_deterministic() {
        let netlist = netlist_of(0x96);
        let (a, sa) = optimize(&netlist, 15.0);
        let (b, sb) = optimize(&netlist, 15.0);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }
}
