//! SBOL-like structural view of a circuit.
//!
//! Cello emits circuits as SBOL part compositions — promoters, ribosome
//! binding sites, coding sequences and terminators arranged into
//! transcriptional units. The paper characterizes its eval circuits by
//! their *genetic component* counts (3–26 components). This module
//! derives that structural view from a [`Netlist`]: the logic itself
//! lives in the behavioural model, the parts list is the wet-lab
//! bill of materials.

use crate::netlist::{Netlist, Signal};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A DNA part.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Part {
    /// A promoter, named after the signal that controls it (e.g.
    /// `pPhlF`, or `pSensor_A` for an input sensor).
    Promoter(String),
    /// A ribosome binding site for the named gene.
    Rbs(String),
    /// The coding sequence of the named protein.
    Cds(String),
    /// A transcription terminator for the named unit.
    Terminator(String),
}

impl Part {
    /// The part's display name.
    pub fn name(&self) -> &str {
        match self {
            Part::Promoter(n) | Part::Rbs(n) | Part::Cds(n) | Part::Terminator(n) => n,
        }
    }
}

impl fmt::Display for Part {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Part::Promoter(n) => write!(f, "promoter {n}"),
            Part::Rbs(n) => write!(f, "RBS {n}"),
            Part::Cds(n) => write!(f, "CDS {n}"),
            Part::Terminator(n) => write!(f, "terminator {n}"),
        }
    }
}

/// One transcriptional unit: promoters (tandem for OR), RBS, CDS,
/// terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranscriptionalUnit {
    /// The protein this unit expresses.
    pub product: String,
    /// Parts in 5'→3' order.
    pub parts: Vec<Part>,
}

impl TranscriptionalUnit {
    /// Number of parts in the unit.
    pub fn component_count(&self) -> usize {
        self.parts.len()
    }
}

/// The structural circuit: an ordered list of transcriptional units.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructuralCircuit {
    /// Transcriptional units, gates first, output unit last.
    pub units: Vec<TranscriptionalUnit>,
}

impl StructuralCircuit {
    /// Total genetic component count (the paper's 3–26 metric).
    pub fn component_count(&self) -> usize {
        self.units
            .iter()
            .map(TranscriptionalUnit::component_count)
            .sum()
    }
}

/// Name of the promoter carrying `signal`.
fn promoter_name(netlist: &Netlist, signal: &Signal) -> String {
    match *signal {
        Signal::Input(j) => format!("pSensor_{}", netlist.input_names()[j]),
        Signal::Gate(g) => format!("p{}", netlist.gates()[g].repressor),
    }
}

/// Derives the structural circuit of a netlist.
pub fn structure(netlist: &Netlist) -> StructuralCircuit {
    let mut units = Vec::new();
    for gate in netlist.gates() {
        let mut parts = Vec::new();
        for signal in &gate.inputs {
            parts.push(Part::Promoter(promoter_name(netlist, signal)));
        }
        parts.push(Part::Rbs(gate.repressor.clone()));
        parts.push(Part::Cds(gate.repressor.clone()));
        parts.push(Part::Terminator(gate.repressor.clone()));
        units.push(TranscriptionalUnit {
            product: gate.repressor.clone(),
            parts,
        });
    }
    let output = netlist.output_name().to_string();
    let mut parts = Vec::new();
    if netlist.is_constitutive() {
        parts.push(Part::Promoter("pConst".to_string()));
    }
    for signal in netlist.outputs() {
        parts.push(Part::Promoter(promoter_name(netlist, signal)));
    }
    parts.push(Part::Rbs(output.clone()));
    parts.push(Part::Cds(output.clone()));
    parts.push(Part::Terminator(output.clone()));
    units.push(TranscriptionalUnit {
        product: output,
        parts,
    });
    StructuralCircuit { units }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;
    use glc_core::TruthTable;

    fn structure_of(n: usize, hex: u64) -> StructuralCircuit {
        let table = TruthTable::from_hex(n, hex);
        let names: Vec<String> = (0..n).map(|j| format!("I{j}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        structure(&synthesize(&table, &refs, "OUT"))
    }

    #[test]
    fn not_gate_has_the_minimal_unit_structure() {
        let circuit = structure_of(1, 0x1);
        // NOT gate unit (promoter+RBS+CDS+term) + output unit
        // (promoter+RBS+CDS+term) = 8 components.
        assert_eq!(circuit.units.len(), 2);
        assert_eq!(circuit.component_count(), 8);
    }

    #[test]
    fn and_gate_component_count() {
        let circuit = structure_of(2, 0x8);
        // 2 inverters (4 parts each) + NOR gate (2 promoters + 3) +
        // output unit (1 promoter + 3) = 4+4+5+4 = 17.
        assert_eq!(circuit.component_count(), 17);
        assert_eq!(circuit.units.len(), 4);
    }

    #[test]
    fn catalog_range_matches_paper() {
        // The paper's circuits span 3–26 components; ours must land in a
        // comparable band (buffer wire is the 4-component floor).
        for (n, hex) in [
            (1usize, 0x1u64),
            (1, 0x2),
            (2, 0x1),
            (2, 0x6),
            (2, 0x8),
            (3, 0x0B),
            (3, 0x04),
            (3, 0x1C),
            (3, 0x07),
            (3, 0x8E),
        ] {
            let count = structure_of(n, hex).component_count();
            assert!(
                (4..=30).contains(&count),
                "0x{hex:X}: {count} components out of range"
            );
        }
    }

    #[test]
    fn tandem_promoters_appear_per_input() {
        let circuit = structure_of(2, 0x1); // single NOR gate
        let gate_unit = &circuit.units[0];
        let promoters = gate_unit
            .parts
            .iter()
            .filter(|p| matches!(p, Part::Promoter(_)))
            .count();
        assert_eq!(promoters, 2, "NOR gate carries two tandem promoters");
    }

    #[test]
    fn output_unit_lists_drive_promoters() {
        let circuit = structure_of(2, 0x7); // NAND: two inverter drives
        let output_unit = circuit.units.last().unwrap();
        let promoters: Vec<&Part> = output_unit
            .parts
            .iter()
            .filter(|p| matches!(p, Part::Promoter(_)))
            .collect();
        assert_eq!(promoters.len(), 2);
        assert!(promoters[0].name().starts_with('p'));
    }

    #[test]
    fn part_display_names() {
        assert_eq!(Part::Promoter("pPhlF".into()).to_string(), "promoter pPhlF");
        assert_eq!(Part::Rbs("x".into()).to_string(), "RBS x");
        assert_eq!(Part::Cds("x".into()).to_string(), "CDS x");
        assert_eq!(Part::Terminator("x".into()).to_string(), "terminator x");
        assert_eq!(Part::Cds("GFP".into()).name(), "GFP");
    }

    #[test]
    fn constitutive_output_gets_a_const_promoter() {
        let circuit = structure_of(1, 0x3);
        let output_unit = circuit.units.last().unwrap();
        assert!(output_unit
            .parts
            .iter()
            .any(|p| matches!(p, Part::Promoter(name) if name == "pConst")));
    }
}
