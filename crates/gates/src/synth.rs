//! Logic synthesis: truth table → NOR/NOT netlist.
//!
//! The strategy mirrors Cello's output. Minimize the function to a
//! sum-of-products (Quine–McCluskey from `glc-core`), then map
//!
//! * each product term to one **NOR gate** whose inputs are the
//!   *complements* of the term's literals — the gate's promoter is
//!   active only when none of those complements are high, i.e. exactly
//!   when every literal holds;
//! * the complement of a *positive* literal to a shared **NOT gate** on
//!   that input's sensor (negative literals feed the sensor directly);
//! * the sum of terms to the free wired-OR of the term-gate promoters at
//!   the output gene.
//!
//! Special cases keep circuits minimal: a term that is a single positive
//! literal becomes a direct sensor→output wire (no gate), and the
//! constant-true function becomes a constitutive output promoter.
//! Gate repressors are assigned from the library in a fixed order, so
//! synthesis is deterministic.

use crate::library;
use crate::netlist::{Gate, Netlist, Signal};
use glc_core::boolexpr::Cube;
use glc_core::qmc;
use glc_core::TruthTable;

/// Synthesizes a netlist computing `table` over the given input names.
///
/// # Panics
///
/// Panics if `input_names.len() != table.inputs()` or if the circuit
/// needs more gates than the library has repressors (12).
pub fn synthesize(table: &TruthTable, input_names: &[&str], output_name: &str) -> Netlist {
    let n = table.inputs();
    assert_eq!(input_names.len(), n, "one name per input required");

    let cubes: Vec<Cube> = qmc::minimize(n, &table.minterms(), &[]);
    let library = library::repressors();
    let mut next_repressor = 0usize;
    let mut gates: Vec<Gate> = Vec::new();
    // Shared inverter per input that appears positively in some
    // multi-literal cube.
    let mut inverter_of: Vec<Option<usize>> = vec![None; n];
    let mut outputs: Vec<Signal> = Vec::new();
    let mut constitutive = false;

    let mut push_gate = |gates: &mut Vec<Gate>, inputs: Vec<Signal>| -> usize {
        assert!(
            next_repressor < library.len(),
            "circuit needs more than {} gates",
            library.len()
        );
        let repressor = library[next_repressor].name.clone();
        next_repressor += 1;
        gates.push(Gate { repressor, inputs });
        gates.len() - 1
    };

    for cube in &cubes {
        let literals: Vec<(usize, bool)> = (0..n)
            .filter_map(|j| {
                let k = n - 1 - j; // minterm-index bit of input j
                if cube.care >> k & 1 == 1 {
                    Some((j, cube.value >> k & 1 == 1))
                } else {
                    None
                }
            })
            .collect();

        match literals.as_slice() {
            [] => {
                // Empty cube: the constant-true function.
                constitutive = true;
            }
            [(j, true)] => {
                // Single positive literal: sensor drives the output
                // directly (a wire, no gate).
                outputs.push(Signal::Input(*j));
            }
            _ => {
                // General product: NOR of the complements.
                let mut term_inputs: Vec<Signal> = Vec::with_capacity(literals.len());
                for &(j, positive) in &literals {
                    if positive {
                        let inv = match inverter_of[j] {
                            Some(g) => g,
                            None => {
                                let g = push_gate(&mut gates, vec![Signal::Input(j)]);
                                inverter_of[j] = Some(g);
                                g
                            }
                        };
                        term_inputs.push(Signal::Gate(inv));
                    } else {
                        term_inputs.push(Signal::Input(j));
                    }
                }
                let term = push_gate(&mut gates, term_inputs);
                outputs.push(Signal::Gate(term));
            }
        }
    }

    Netlist::new(
        input_names.iter().map(|s| s.to_string()).collect(),
        output_name,
        gates,
        outputs,
        constitutive,
    )
    .expect("synthesized netlists are well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_hex(n: usize, hex: u64) -> Netlist {
        let table = TruthTable::from_hex(n, hex);
        let names: Vec<String> = (0..n).map(|j| format!("I{j}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        synthesize(&table, &name_refs, "OUT")
    }

    #[test]
    fn synthesized_netlists_compute_their_spec() {
        for hex in 0u64..16 {
            let netlist = synth_hex(2, hex);
            assert_eq!(netlist.truth_table().to_hex(), hex, "2-input 0x{hex:X}");
        }
        for hex in [
            0x0Bu64, 0x04, 0x1C, 0x41, 0x70, 0x8E, 0xB3, 0xF4, 0x96, 0x69,
        ] {
            let netlist = synth_hex(3, hex);
            assert_eq!(netlist.truth_table().to_hex(), hex, "3-input 0x{hex:X}");
        }
    }

    #[test]
    fn gate_counts_match_known_circuits() {
        assert_eq!(synth_hex(2, 0x8).gate_count(), 3); // AND (paper Fig. 1)
        assert_eq!(synth_hex(2, 0x1).gate_count(), 1); // NOR
        assert_eq!(synth_hex(2, 0x7).gate_count(), 2); // NAND
        assert_eq!(synth_hex(2, 0x6).gate_count(), 4); // XOR
        assert_eq!(synth_hex(1, 0x1).gate_count(), 1); // NOT
        assert_eq!(synth_hex(1, 0x2).gate_count(), 0); // BUF: a wire
    }

    #[test]
    fn every_three_input_function_fits_the_library() {
        for hex in 0u64..256 {
            let netlist = synth_hex(3, hex);
            assert_eq!(netlist.truth_table().to_hex(), hex, "0x{hex:X}");
            assert!(
                netlist.gate_count() <= 12,
                "0x{hex:X} used {} gates",
                netlist.gate_count()
            );
        }
    }

    #[test]
    fn paper_circuits_fit_the_reported_gate_range() {
        // The paper's eval circuits use 1–7 gates.
        for hex in [0x0Bu64, 0x04, 0x1C, 0x41, 0x70, 0x8E, 0xB3, 0xF4] {
            let count = synth_hex(3, hex).gate_count();
            assert!(
                (1..=7).contains(&count),
                "0x{hex:X}: {count} gates outside 1–7"
            );
        }
    }

    #[test]
    fn inverters_are_shared_between_cubes() {
        // 0x88 = A * B... take 0xE8 = AB + AC + BC (majority): A, B, C all
        // appear positively in two cubes each; inverters must be shared.
        let netlist = synth_hex(3, 0xE8);
        let inverters = netlist.gates().iter().filter(|g| g.is_not()).count();
        assert_eq!(inverters, 3, "one shared inverter per input");
        assert_eq!(netlist.gate_count(), 6); // 3 INV + 3 term NORs
    }

    #[test]
    fn distinct_repressors_per_gate() {
        let netlist = synth_hex(3, 0x96); // 3-input XOR-ish: many gates
        let mut repressors: Vec<&str> = netlist
            .gates()
            .iter()
            .map(|g| g.repressor.as_str())
            .collect();
        let before = repressors.len();
        repressors.sort_unstable();
        repressors.dedup();
        assert_eq!(repressors.len(), before, "repressor reused");
    }

    #[test]
    fn constant_functions() {
        let zero = synth_hex(2, 0x0);
        assert!(zero.truth_table().is_contradiction());
        assert_eq!(zero.gate_count(), 0);
        let one = synth_hex(2, 0xF);
        assert!(one.truth_table().is_tautology());
        assert!(one.is_constitutive());
    }

    #[test]
    #[should_panic(expected = "one name per input")]
    fn name_count_mismatch_panics() {
        let table = TruthTable::from_hex(2, 0x8);
        let _ = synthesize(&table, &["A"], "Y");
    }
}
