//! Simulation error type.

use std::fmt;

/// Error raised during stochastic or deterministic simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A kinetic law evaluated to a negative value. Propensities must be
    /// non-negative; a negative value indicates a modelling error (e.g. a
    /// mass-action law referencing a species that went negative).
    NegativePropensity {
        /// Reaction whose propensity went negative.
        reaction: String,
        /// Simulation time at which it happened.
        time: f64,
        /// The offending value.
        value: f64,
    },
    /// A kinetic law evaluated to NaN or infinity.
    NonFinitePropensity {
        /// Reaction whose propensity was non-finite.
        reaction: String,
        /// Simulation time at which it happened.
        time: f64,
    },
    /// The step budget was exhausted before reaching the end time,
    /// indicating a runaway model (propensities growing without bound).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Simulation time reached when the limit hit.
        time: f64,
    },
    /// Invalid configuration (non-positive sampling interval, zero leap
    /// length, end time before start time, ...).
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NegativePropensity {
                reaction,
                time,
                value,
            } => write!(
                f,
                "reaction `{reaction}` has negative propensity {value} at t = {time}"
            ),
            SimError::NonFinitePropensity { reaction, time } => write!(
                f,
                "reaction `{reaction}` has non-finite propensity at t = {time}"
            ),
            SimError::StepLimitExceeded { limit, time } => write!(
                f,
                "step limit of {limit} reactions exceeded at t = {time} (runaway model?)"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SimError::NegativePropensity {
            reaction: "deg".into(),
            time: 1.5,
            value: -2.0,
        };
        let text = err.to_string();
        assert!(text.contains("deg") && text.contains("-2") && text.contains("1.5"));

        let err = SimError::StepLimitExceeded {
            limit: 10,
            time: 0.1,
        };
        assert!(err.to_string().contains("10"));

        let err = SimError::InvalidConfig("dt must be positive".into());
        assert!(err.to_string().contains("dt must be positive"));

        let err = SimError::NonFinitePropensity {
            reaction: "r".into(),
            time: 2.0,
        };
        assert!(err.to_string().contains("non-finite"));
    }
}
