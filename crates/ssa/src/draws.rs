//! Batched Gaussian draw engine: the paired, block-refilled normal
//! source behind the Langevin engine and tau-leap's large-λ branch.
//!
//! The scalar Box–Muller sampler the engines used through PR 9 paid one
//! libm `ln`, one `sqrt`, one libm `cos` and two uniform draws *per
//! normal* — and threw the sine half of every pair away. On the
//! reference circuits that transform was the last scalar per-element
//! transcendental loop left in the simulation tier, and it pinned
//! Langevin near 1.6M steps/s on both circuits while every other hot
//! path had already been batched. This module replaces it with:
//!
//! * **pairing** — the full Box–Muller transform: two uniforms become
//!   *two* normals (`r·cos θ`, `r·sin θ`), halving both RNG consumption
//!   and the `ln`/`sqrt`/trig budget per draw. The odd half of an
//!   odd-length request waits in a carry slot and is the first value of
//!   the next request, so any interleaving of request sizes consumes
//!   the identical draw stream;
//! * **block refill** — [`NormalBlock::fill`] draws the raw `u64`s for
//!   up to [`BLOCK_PAIRS`] pairs in one tight loop and deinterleaves
//!   them into contiguous per-pair `u₁`/`u₂` arrays, instead of
//!   round-tripping through the RNG call per draw;
//! * **lane-width transform passes** — the `u → z` transform runs as
//!   split passes over contiguous arrays (`bits → (u₁, u₂)`, `u₁ → r`,
//!   `u₂ → (sin, cos) → (z_even, z_odd)`), built on the inline
//!   branch-free polynomial kernels in [`glc_model::fastmath`] rather
//!   than opaque libm calls — so every pass, transcendentals included,
//!   is open to the autovectorizer. (An explicit-SIMD variant was
//!   benched against these autovectorized passes and rejected: with the
//!   kernels inlined, hand-rolled lanes were within noise.)
//!
//! # The determinism contract
//!
//! [`standard_normal`] is the *scalar reference*: the published
//! definition of the draw scheme, consuming one [`NormalCarry`].
//! [`NormalBlock::fill`] promises bitwise-identical output values *and*
//! the identical RNG draw-stream position for any sequence of request
//! lengths — property-tested in `tests/draws.rs` and pinned against
//! whole engine trajectories in `crates/bench/tests/bitwise.rs`. Both
//! paths evaluate the *same* [`glc_model::fastmath`] kernels, so the
//! equivalence is structural, not a numerical accident.
//!
//! # RNG-stream versioning
//!
//! Adopting the paired scheme changed the per-seed draw stream of the
//! Langevin engine (every normal) and of tau-leap's `λ ≥ 30` branch
//! relative to PR 9, and the `fastmath` kernels changed the transformed
//! *values* relative to libm (by ≲2 ulp). That is deliberate and
//! allowed: the repo's bitwise contract is **engine ≡ published
//! reference** (values and stream position) plus per-seed determinism —
//! never stream identity across PRs. PR 1 set the precedent when the
//! vendored xoshiro replaced upstream `StdRng`; baselines were
//! regenerated alongside this change exactly as they were then.

use glc_model::fastmath;
use rand::rngs::StdRng;
use rand::RngCore;

/// Pairs per block refill: 256 uniforms → 256 normals per refill keeps
/// the whole working set (raw bits, split uniforms, radii, pair halves)
/// inside L1 while amortizing loop setup over enough lanes for the
/// vector passes to pay. Langevin requests (one normal per active
/// reaction per step) are far below this, so a refill is one pass in
/// practice.
pub const BLOCK_PAIRS: usize = 128;

/// Fresh-pair cap of the fixed-width small-request path inside
/// [`NormalBlock::fill`]: one vector batch of the fused transform.
const SMALL_PAIRS: usize = 8;

/// `2^-53`: converts the top 53 bits of a raw draw to `[0, 1)` exactly
/// as the vendored `rand`'s `Standard` impl for `f64` does — the block
/// path must reproduce `rng.gen::<f64>()` bit for bit.
const U53: f64 = 1.0 / (1u64 << 53) as f64;

/// One raw draw, mapped to `[0, 1)` — bitwise `rng.gen::<f64>()`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * U53
}

/// The carry slot of the paired Box–Muller scheme: holds the sine half
/// of the last pair when a request consumed an odd number of normals.
///
/// A fresh carry is empty; engines reset theirs at the start of every
/// [`Engine::run`](crate::engine::Engine::run) call so runs stay
/// independent of what a reused engine drew before (the discarded half,
/// being a *transformed* value, costs no RNG stream position).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NormalCarry(pub Option<f64>);

impl NormalCarry {
    /// An empty carry slot.
    pub fn new() -> Self {
        NormalCarry(None)
    }

    /// Empties the slot (run-start reset).
    pub fn reset(&mut self) {
        self.0 = None;
    }
}

/// Standard normal sample — the **scalar reference** of the paired
/// Box–Muller scheme.
///
/// With an empty carry this consumes two uniforms and computes the full
/// pair `(r·cos θ, r·sin θ)` through the [`glc_model::fastmath`]
/// kernels (`1 − u₁` keeps the log argument in `(0, 1]`), returning the
/// cosine half and parking the sine half in `carry`; the next call
/// returns the parked half without touching the RNG. Public so benches
/// and the bitwise-equivalence tests can replay the engines' exact draw
/// sequence against a reference loop.
#[inline]
pub fn standard_normal(rng: &mut StdRng, carry: &mut NormalCarry) -> f64 {
    if let Some(z) = carry.0.take() {
        return z;
    }
    let u1: f64 = 1.0 - unit_f64(rng.next_u64());
    let u2: f64 = unit_f64(rng.next_u64());
    let r = (-2.0 * fastmath::ln(u1)).sqrt();
    let (sin, cos) = fastmath::sincos_unit(u2);
    carry.0 = Some(r * sin);
    r * cos
}

/// The batched draw engine: block uniform refill + lane-width paired
/// Box–Muller transform, bitwise ≡ repeated [`standard_normal`] calls
/// on one shared [`NormalCarry`].
///
/// All scratch is owned by the block, so steady-state filling allocates
/// nothing. `Clone` keeps engines (`Langevin` holds one) cheaply
/// clonable.
#[derive(Debug, Clone)]
pub struct NormalBlock {
    carry: NormalCarry,
    /// Raw RNG output for the current refill, one `u64` per uniform.
    bits: [u64; 2 * BLOCK_PAIRS],
    /// Per-pair `1 − u₁` (log arguments), deinterleaved from `bits`.
    u1: [f64; BLOCK_PAIRS],
    /// Per-pair `u₂` (unit angles), deinterleaved from `bits`.
    u2: [f64; BLOCK_PAIRS],
    /// Per-pair radii `√(−2 ln(1 − u₁))`.
    radii: [f64; BLOCK_PAIRS],
    /// Per-pair cosine halves `r·cos θ` (even output positions).
    even: [f64; BLOCK_PAIRS],
    /// Per-pair sine halves `r·sin θ` (odd output positions).
    odd: [f64; BLOCK_PAIRS],
}

impl Default for NormalBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl NormalBlock {
    /// A block with an empty carry slot.
    pub fn new() -> Self {
        NormalBlock {
            carry: NormalCarry::new(),
            bits: [0; 2 * BLOCK_PAIRS],
            u1: [0.0; BLOCK_PAIRS],
            u2: [0.0; BLOCK_PAIRS],
            radii: [0.0; BLOCK_PAIRS],
            even: [0.0; BLOCK_PAIRS],
            odd: [0.0; BLOCK_PAIRS],
        }
    }

    /// Empties the carry slot (run-start reset; see [`NormalCarry`]).
    pub fn reset(&mut self) {
        self.carry.reset();
    }

    /// Whether a sine half is parked in the carry slot.
    pub fn has_carry(&self) -> bool {
        self.carry.0.is_some()
    }

    /// One draw through the block's carry — the scalar path, for
    /// callers (tau-leap's large-λ branch) whose draws interleave with
    /// other RNG consumption and so cannot batch ahead.
    #[inline]
    pub fn next(&mut self, rng: &mut StdRng) -> f64 {
        standard_normal(rng, &mut self.carry)
    }

    /// Fills `out` with standard normals, bitwise-identical — values
    /// and final RNG stream position — to `out.len()` calls of
    /// [`standard_normal`] on this block's carry.
    ///
    /// The refill loop draws exactly the raw `u64`s the reference would
    /// (two per fresh pair, none for the carried half), so stream
    /// position stays in lockstep at every request boundary, not just
    /// in aggregate. Every transform pass below iterates contiguous
    /// fixed-stride arrays of pure inline arithmetic — no libm calls,
    /// no data-dependent branches — so the autovectorizer unrolls them
    /// to full register width; the only scalar work left is the RNG
    /// recurrence itself and the final odd-tail fix-up, hoisted out of
    /// the loops.
    pub fn fill(&mut self, rng: &mut StdRng, out: &mut [f64]) {
        let mut at = 0usize;
        if let Some(z) = self.carry.0.take() {
            let Some(first) = out.first_mut() else {
                self.carry.0 = Some(z);
                return;
            };
            *first = z;
            at = 1;
        }
        // Small requests — the per-step Langevin shape, one normal per
        // active reaction — take the fixed-width path: at a handful of
        // pairs the runtime-bound passes below never fill a vector, so
        // the transform would fall back to scalar epilogues.
        if at < out.len() && out.len() - at <= 2 * SMALL_PAIRS {
            self.fill_small(rng, out, at);
            return;
        }
        while at < out.len() {
            let pairs = (out.len() - at).div_ceil(2).min(BLOCK_PAIRS);
            // Block refill: one tight raw-draw loop…
            for slot in &mut self.bits[..2 * pairs] {
                *slot = rng.next_u64();
            }
            // …then deinterleave and convert to the transform inputs:
            // log arguments `1 − u₁ ∈ (0, 1]` and unit angles `u₂`.
            for pair in 0..pairs {
                self.u1[pair] = 1.0 - unit_f64(self.bits[2 * pair]);
                self.u2[pair] = unit_f64(self.bits[2 * pair + 1]);
            }
            // Radius pass: inline polynomial `ln` + hardware `sqrt`.
            for (radius, &u1) in self.radii[..pairs].iter_mut().zip(&self.u1[..pairs]) {
                *radius = (-2.0 * fastmath::ln(u1)).sqrt();
            }
            // Angle pass: one branch-free `sincos_unit` per pair yields
            // both halves, scaled into their output-parity arrays.
            for pair in 0..pairs {
                let (sin, cos) = fastmath::sincos_unit(self.u2[pair]);
                let radius = self.radii[pair];
                self.even[pair] = radius * cos;
                self.odd[pair] = radius * sin;
            }
            // Interleave into the caller's buffer; the possibly-odd
            // final pair is handled once, outside the loop.
            let whole = if at + 2 * pairs > out.len() {
                pairs - 1
            } else {
                pairs
            };
            for pair in 0..whole {
                out[at + 2 * pair] = self.even[pair];
                out[at + 2 * pair + 1] = self.odd[pair];
            }
            if whole < pairs {
                out[at + 2 * whole] = self.even[whole];
                self.carry.0 = Some(self.odd[whole]);
            }
            at += 2 * pairs;
        }
    }

    /// Fixed-width transform for requests of at most [`SMALL_PAIRS`]
    /// fresh pairs: draws exactly the raw `u64`s the request consumes,
    /// then runs one compile-time-width fused pass (`ln`, `sqrt`,
    /// `sincos`) over the full scratch width so the kernel chain
    /// vectorizes regardless of the request length. Pad pairs transform
    /// `(u₁, u₂) = (1, 0)` — every kernel is finite there — and are
    /// never written back, so values and stream position stay bitwise
    /// identical to the reference (the per-pair operation sequence is
    /// unchanged; only the loop bound differs).
    fn fill_small(&mut self, rng: &mut StdRng, out: &mut [f64], at: usize) {
        let pairs = (out.len() - at).div_ceil(2);
        for slot in &mut self.bits[..2 * pairs] {
            *slot = rng.next_u64();
        }
        let mut u1 = [1.0f64; SMALL_PAIRS];
        let mut u2 = [0.0f64; SMALL_PAIRS];
        for pair in 0..pairs {
            u1[pair] = 1.0 - unit_f64(self.bits[2 * pair]);
            u2[pair] = unit_f64(self.bits[2 * pair + 1]);
        }
        let mut even = [0.0f64; SMALL_PAIRS];
        let mut odd = [0.0f64; SMALL_PAIRS];
        for pair in 0..SMALL_PAIRS {
            let radius = (-2.0 * fastmath::ln(u1[pair])).sqrt();
            let (sin, cos) = fastmath::sincos_unit(u2[pair]);
            even[pair] = radius * cos;
            odd[pair] = radius * sin;
        }
        let whole = if at + 2 * pairs > out.len() {
            pairs - 1
        } else {
            pairs
        };
        for pair in 0..whole {
            out[at + 2 * pair] = even[pair];
            out[at + 2 * pair + 1] = odd[pair];
        }
        if whole < pairs {
            out[at + 2 * whole] = even[whole];
            self.carry.0 = Some(odd[whole]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pairing_returns_cosine_then_sine_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut carry = NormalCarry::new();
        let z0 = standard_normal(&mut rng, &mut carry);
        assert!(carry.0.is_some(), "sine half must be parked");
        let parked = carry.0.unwrap();
        let z1 = standard_normal(&mut rng, &mut carry);
        assert_eq!(z1.to_bits(), parked.to_bits());
        assert!(carry.0.is_none());
        // The pair comes from one (u1, u2): replay it by hand through
        // the same fastmath kernels.
        let mut replay = StdRng::seed_from_u64(7);
        let u1: f64 = 1.0 - replay.gen::<f64>();
        let u2: f64 = replay.gen();
        let r = (-2.0 * fastmath::ln(u1)).sqrt();
        let (sin, cos) = fastmath::sincos_unit(u2);
        assert_eq!(z0.to_bits(), (r * cos).to_bits());
        assert_eq!(z1.to_bits(), (r * sin).to_bits());
    }

    #[test]
    fn fill_matches_scalar_reference_across_request_shapes() {
        // A mix of odd, even, zero-length and block-crossing requests.
        let shapes = [3usize, 0, 1, 8, 2 * BLOCK_PAIRS + 5, 1, 2, 7];
        let mut block_rng = StdRng::seed_from_u64(99);
        let mut scalar_rng = StdRng::seed_from_u64(99);
        let mut block = NormalBlock::new();
        let mut carry = NormalCarry::new();
        for &len in &shapes {
            let mut batched = vec![0.0f64; len];
            block.fill(&mut block_rng, &mut batched);
            for (i, z) in batched.iter().enumerate() {
                let reference = standard_normal(&mut scalar_rng, &mut carry);
                assert_eq!(z.to_bits(), reference.to_bits(), "len {len} index {i}");
            }
            assert_eq!(
                block.has_carry(),
                carry.0.is_some(),
                "carry occupancy after len {len}"
            );
        }
        // Identical stream position: the next raw draw must agree.
        assert_eq!(block_rng.gen::<u64>(), scalar_rng.gen::<u64>());
    }

    #[test]
    fn empty_fill_preserves_carry_and_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut block = NormalBlock::new();
        let mut one = [0.0f64; 1];
        block.fill(&mut rng, &mut one);
        assert!(block.has_carry());
        let stream_probe = rng.clone();
        block.fill(&mut rng, &mut []);
        assert!(block.has_carry(), "empty request must not consume carry");
        assert_eq!(rng, stream_probe, "empty request must not touch the RNG");
    }

    #[test]
    fn reset_discards_carry_without_stream_cost() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut block = NormalBlock::new();
        let mut one = [0.0f64; 1];
        block.fill(&mut rng, &mut one);
        assert!(block.has_carry());
        block.reset();
        assert!(!block.has_carry());
        // A fresh run from the same stream position draws a new pair.
        let mut reference_rng = rng.clone();
        let mut carry = NormalCarry::new();
        let reference = standard_normal(&mut reference_rng, &mut carry);
        block.fill(&mut rng, &mut one);
        assert_eq!(one[0].to_bits(), reference.to_bits());
    }

    #[test]
    fn moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut block = NormalBlock::new();
        let mut z = vec![0.0f64; 200_000];
        block.fill(&mut rng, &mut z);
        let n = z.len() as f64;
        let mean = z.iter().sum::<f64>() / n;
        let var = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }
}
