//! Ensemble simulation: many stochastic replicates, aggregated.
//!
//! A single SSA trajectory is one sample of a distribution; circuit
//! noise analyses (and the mean-vs-ODE cross-checks) need the ensemble
//! mean and spread. [`run_ensemble`] runs independent replicates on
//! worker threads (crossbeam scoped threads, one RNG stream per
//! replicate derived from a base seed) and aggregates them into
//! mean/standard-deviation traces on the common sampling grid.

use crate::compiled::CompiledModel;
use crate::engine::Engine;
use crate::error::SimError;
use crate::simulate;
use crate::trace::Trace;
use parking_lot::Mutex;

/// Aggregated result of an ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    /// Point-wise ensemble mean of every species.
    pub mean: Trace,
    /// Point-wise ensemble standard deviation (population).
    pub std_dev: Trace,
    /// Number of replicates aggregated.
    pub replicates: usize,
}

/// Runs `replicates` independent simulations of `model` until `t_end`
/// (sampled every `sample_dt`), seeding replicate `i` with
/// `base_seed + i`, spread across `threads` workers.
///
/// `make_engine` is called once per worker to create that worker's
/// engine (engines are stateful scratch, not shareable).
///
/// # Errors
///
/// Returns the first [`SimError`] any replicate produced, and
/// [`SimError::InvalidConfig`] for zero `replicates`/`threads`.
pub fn run_ensemble<F>(
    model: &CompiledModel,
    make_engine: F,
    replicates: usize,
    t_end: f64,
    sample_dt: f64,
    base_seed: u64,
    threads: usize,
) -> Result<Ensemble, SimError>
where
    F: Fn() -> Box<dyn Engine> + Sync,
{
    if replicates == 0 {
        return Err(SimError::InvalidConfig("replicates must be >= 1".into()));
    }
    if threads == 0 {
        return Err(SimError::InvalidConfig("threads must be >= 1".into()));
    }

    let next: Mutex<usize> = Mutex::new(0);
    let failure: Mutex<Option<SimError>> = Mutex::new(None);
    // Accumulate sum and sum-of-squares per species per sample.
    let accum: Mutex<Option<(Vec<Vec<f64>>, Vec<Vec<f64>>, usize)>> = Mutex::new(None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(replicates) {
            scope.spawn(|_| {
                let mut engine = make_engine();
                loop {
                    let replicate = {
                        let mut guard = next.lock();
                        if *guard >= replicates || failure.lock().is_some() {
                            return;
                        }
                        let r = *guard;
                        *guard += 1;
                        r
                    };
                    let seed = base_seed.wrapping_add(replicate as u64);
                    match simulate(model, engine.as_mut(), t_end, sample_dt, seed) {
                        Ok(trace) => {
                            let mut guard = accum.lock();
                            let species = model.species_count();
                            let samples = trace.len();
                            let (sums, squares, count) = guard.get_or_insert_with(|| {
                                (
                                    vec![vec![0.0; samples]; species],
                                    vec![vec![0.0; samples]; species],
                                    0,
                                )
                            });
                            for s in 0..species {
                                let series = trace.series_at(s);
                                for (k, &v) in series.iter().enumerate() {
                                    sums[s][k] += v;
                                    squares[s][k] += v * v;
                                }
                            }
                            *count += 1;
                        }
                        Err(err) => {
                            failure.lock().get_or_insert(err);
                            return;
                        }
                    }
                }
            });
        }
    })
    .expect("ensemble worker panicked");

    if let Some(err) = failure.into_inner() {
        return Err(err);
    }
    let (sums, squares, count) = accum
        .into_inner()
        .expect("at least one replicate completed");
    debug_assert_eq!(count, replicates);

    let names = model.species_names().to_vec();
    let mut mean = Trace::new(names.clone(), sample_dt, 0.0);
    let mut std_dev = Trace::new(names, sample_dt, 0.0);
    let samples = sums[0].len();
    let n = count as f64;
    for k in 0..samples {
        let mean_row: Vec<f64> = (0..sums.len()).map(|s| sums[s][k] / n).collect();
        let std_row: Vec<f64> = (0..sums.len())
            .map(|s| {
                let m = sums[s][k] / n;
                (squares[s][k] / n - m * m).max(0.0).sqrt()
            })
            .collect();
        mean.push_row(&mean_row);
        std_dev.push_row(&std_row);
    }
    Ok(Ensemble {
        mean,
        std_dev,
        replicates: count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::Direct;
    use crate::ode;
    use glc_model::ModelBuilder;

    fn birth_death() -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", 0.0)
            .parameter("kp", 5.0)
            .parameter("kd", 0.1)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn ensemble_mean_tracks_the_ode_solution() {
        let model = birth_death();
        let ensemble = run_ensemble(
            &model,
            || Box::new(Direct::new()),
            64,
            60.0,
            5.0,
            7,
            4,
        )
        .unwrap();
        assert_eq!(ensemble.replicates, 64);
        let ode_trace = ode::integrate(&model, 60.0, 0.01, 5.0).unwrap();
        let mean = ensemble.mean.series("X").unwrap();
        let expected = ode_trace.series("X").unwrap();
        assert_eq!(mean.len(), expected.len());
        for (k, (&m, &e)) in mean.iter().zip(expected).enumerate().skip(1) {
            // Standard error of 64 replicates around Poisson-ish spread.
            assert!(
                (m - e).abs() < 4.0,
                "sample {k}: ensemble {m} vs ODE {e}"
            );
        }
    }

    #[test]
    fn ensemble_std_matches_poisson_at_stationarity() {
        let model = birth_death();
        let ensemble = run_ensemble(
            &model,
            || Box::new(Direct::new()),
            128,
            120.0,
            10.0,
            3,
            4,
        )
        .unwrap();
        let std = ensemble.std_dev.series("X").unwrap();
        // Stationary distribution is Poisson(50): σ = √50 ≈ 7.07.
        let last = *std.last().unwrap();
        assert!((last - 50.0f64.sqrt()).abs() < 2.0, "σ = {last}");
        // Initial condition is deterministic: σ(0) = 0.
        assert_eq!(std[0], 0.0);
    }

    #[test]
    fn deterministic_given_base_seed() {
        let model = birth_death();
        let run = |threads| {
            run_ensemble(
                &model,
                || Box::new(Direct::new()),
                16,
                30.0,
                5.0,
                11,
                threads,
            )
            .unwrap()
        };
        // Seeds are assigned per replicate index, so thread count must
        // not change the aggregate.
        assert_eq!(run(1).mean, run(4).mean);
    }

    #[test]
    fn config_validation() {
        let model = birth_death();
        assert!(run_ensemble(&model, || Box::new(Direct::new()), 0, 1.0, 1.0, 0, 1).is_err());
        assert!(run_ensemble(&model, || Box::new(Direct::new()), 1, 1.0, 1.0, 0, 0).is_err());
    }

    #[test]
    fn replicate_failures_propagate() {
        let model = ModelBuilder::new("bad")
            .species("X", 0.0)
            .reaction("boom", &[], &["X"], "1 / X")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let err = run_ensemble(&compiled, || Box::new(Direct::new()), 4, 1.0, 1.0, 0, 2)
            .unwrap_err();
        assert!(matches!(err, SimError::NonFinitePropensity { .. }));
    }
}
