//! Ensemble simulation: many stochastic replicates, aggregated through
//! mergeable partials.
//!
//! A single SSA trajectory is one sample of a distribution; circuit
//! noise analyses (and the mean-vs-ODE cross-checks) need the ensemble
//! mean and spread. The aggregation is built from one primitive:
//!
//! * [`EnsemblePartial`] — per-species / per-sample sum and
//!   sum-of-squares plus a replicate count, carried in exact
//!   order-independent accumulators ([`crate::exact::ExactSum`]) and
//!   stamped with a model/grid fingerprint. Partials from disjoint
//!   replicate ranges [`EnsemblePartial::merge`] associatively and
//!   [`EnsemblePartial::finalize`] into an [`Ensemble`];
//! * [`run_partial`] — simulates one contiguous seed range on the
//!   calling thread and returns its partial. This is the unit of work
//!   the process-level `glc-worker` protocol ships across machines;
//! * [`run_ensemble`] — a thin shard-then-merge over [`run_partial`]:
//!   worker threads claim contiguous replicate chunks and the chunk
//!   partials merge into the final aggregate. The in-process path and
//!   the distributed coordinator therefore share one implementation.
//!
//! # Determinism contract
//!
//! Replicate `i` is always seeded `base_seed + i`, so a replicate's
//! trajectory depends only on its index. Accumulation is *exact* (see
//! [`crate::exact`]), so the aggregate is bitwise independent of thread
//! count, chunk size, process boundaries, and merge order — any
//! contiguous sharding of `0..replicates` finalizes to exactly the
//! bits of the unsharded run, even for engines with non-integral
//! traces (Langevin). No ordered-merge machinery is needed for
//! determinism; on failure, the error of the lowest observed failing
//! replicate is preferred (deterministic whenever a single replicate
//! fails).

use crate::compiled::CompiledModel;
use crate::engine::Engine;
use crate::error::SimError;
use crate::exact::ExactSum;
use crate::simulate;
use crate::trace::Trace;
use crate::wire::{put_f64_bits, put_string, put_varint, Reader, WireError};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Aggregated result of an ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    /// Point-wise ensemble mean of every species.
    pub mean: Trace,
    /// Point-wise ensemble standard deviation (population).
    pub std_dev: Trace,
    /// Number of replicates aggregated.
    pub replicates: usize,
}

/// Identity of the model and sampling grid a partial was built on.
///
/// Two partials may only merge when their fingerprints match exactly:
/// a mismatch means the shards simulated different systems or sampled
/// different grids, and merging them would silently produce garbage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialFingerprint {
    /// Model identifier.
    pub model_id: String,
    /// Species names in slot order.
    pub species: Vec<String>,
    /// Sampling interval of every replicate trace.
    pub sample_dt: f64,
    /// Simulation horizon of every replicate.
    pub t_end: f64,
    /// Samples per series on the `[0, t_end]` grid.
    pub samples: u64,
}

/// A mergeable, serializable shard of an ensemble aggregate.
///
/// Holds the per-species / per-sample sum and sum-of-squares over some
/// set of replicates, in exact accumulators, plus the replicate count,
/// the covered seed ranges, and the [`PartialFingerprint`] of the
/// model/grid. `merge` is associative and commutative **bitwise**
/// (exact arithmetic), which is what lets the process-level worker
/// protocol shard a replicate range arbitrarily and still reproduce
/// the single-process aggregate bit for bit.
///
/// # Seed-range accounting
///
/// Every accumulated replicate records its absolute seed, kept as a
/// sorted, disjoint, coalesced list of `(first_seed, count)` ranges
/// (ranges that would cross the top of the `u64` seed space are split
/// there). Accumulating an already-covered seed or merging partials
/// with overlapping coverage is rejected (`InvalidConfig`) instead of
/// silently double-counting — the resident query service extends
/// cached partials incrementally, and this is what turns "the shards
/// were disjoint" from an assumption into a checked invariant. Because
/// adjacent ranges coalesce, a partial extended `0..R` then `R..R+N`
/// is *equal* (including its coverage) to one accumulated `0..R+N`
/// fresh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsemblePartial {
    fingerprint: PartialFingerprint,
    /// `sums[s * samples + k]` = Σ over replicates of species `s` at
    /// sample `k`.
    sums: Vec<ExactSum>,
    squares: Vec<ExactSum>,
    replicates: u64,
    /// Covered absolute seed ranges: sorted by start, pairwise
    /// disjoint, adjacent runs coalesced, never wrapping (a wrapping
    /// run is stored as its two non-wrapping halves).
    seed_ranges: Vec<(u64, u64)>,
}

impl EnsemblePartial {
    /// An empty partial for `model` on the `[0, t_end]` grid sampled
    /// every `sample_dt`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for a non-positive/non-finite grid
    /// or a model with no species (there would be nothing to
    /// aggregate).
    pub fn new(model: &CompiledModel, t_end: f64, sample_dt: f64) -> Result<Self, SimError> {
        if model.species_count() == 0 {
            return Err(SimError::InvalidConfig(
                "model has no species to aggregate".into(),
            ));
        }
        if !(sample_dt.is_finite() && sample_dt > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "sample_dt must be positive, got {sample_dt}"
            )));
        }
        if !(t_end.is_finite() && t_end >= 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "t_end must be non-negative, got {t_end}"
            )));
        }
        // Replicates the recorder's sampling loop exactly (same float
        // additions), so the expected count matches what `simulate`
        // produces for this grid.
        let mut samples = 0u64;
        let mut t = 0.0f64;
        while t <= t_end + 1e-9 {
            samples += 1;
            t += sample_dt;
        }
        let slots = model.species_count() * samples as usize;
        Ok(EnsemblePartial {
            fingerprint: PartialFingerprint {
                model_id: model.id().to_string(),
                species: model.species_names().to_vec(),
                sample_dt,
                t_end,
                samples,
            },
            sums: vec![ExactSum::new(); slots],
            squares: vec![ExactSum::new(); slots],
            replicates: 0,
            seed_ranges: Vec::new(),
        })
    }

    /// The covered absolute seed ranges, as sorted, disjoint,
    /// coalesced `(first_seed, count)` runs (wrapping runs split at
    /// the top of the seed space).
    pub fn covered_seeds(&self) -> &[(u64, u64)] {
        &self.seed_ranges
    }

    /// Whether the coverage is exactly the contiguous run of
    /// `self.replicates()` seeds starting at `first` (wrapping) — the
    /// shape a resident session extends from.
    pub fn covers_contiguous_from(&self, first: u64) -> bool {
        if self.replicates == 0 {
            return self.seed_ranges.is_empty();
        }
        match self.seed_ranges.as_slice() {
            [(s, c)] => *s == first && *c == self.replicates,
            // A wrapped run splits into its top half and a
            // zero-based remainder.
            [(0, low), (s, c)] => {
                *s == first
                    && first != 0 // guards the capacity arithmetic below
                    && *c == u64::MAX - first + 1
                    && low.checked_add(*c) == Some(self.replicates)
            }
            _ => false,
        }
    }

    /// The model/grid identity this partial aggregates over.
    pub fn fingerprint(&self) -> &PartialFingerprint {
        &self.fingerprint
    }

    /// Number of replicates folded in so far.
    pub fn replicates(&self) -> u64 {
        self.replicates
    }

    /// Folds one replicate trace in, recording `seed` (the replicate's
    /// absolute seed) in the coverage accounting.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the trace's species list,
    /// sampling interval or length disagree with the fingerprint —
    /// aggregating a mismatched trace would silently corrupt every
    /// moment, so the mismatch is rejected instead — or when `seed` is
    /// already covered (double-counting a replicate would skew every
    /// moment just as silently).
    pub fn accumulate(&mut self, trace: &Trace, seed: u64) -> Result<(), SimError> {
        if trace.species() != self.fingerprint.species.as_slice() {
            return Err(SimError::InvalidConfig(format!(
                "trace species {:?} do not match partial species {:?}",
                trace.species(),
                self.fingerprint.species
            )));
        }
        if trace.sample_dt() != self.fingerprint.sample_dt {
            return Err(SimError::InvalidConfig(format!(
                "trace sample_dt {} does not match partial sample_dt {}",
                trace.sample_dt(),
                self.fingerprint.sample_dt
            )));
        }
        if trace.len() as u64 != self.fingerprint.samples {
            return Err(SimError::InvalidConfig(format!(
                "trace has {} samples, partial grid expects {}",
                trace.len(),
                self.fingerprint.samples
            )));
        }
        // Record coverage before touching the accumulators so a
        // rejected duplicate leaves the moments untouched.
        insert_seed_run(&mut self.seed_ranges, seed, 1)?;
        let samples = self.fingerprint.samples as usize;
        for s in 0..self.fingerprint.species.len() {
            let series = trace.series_at(s);
            let base = s * samples;
            for (k, &v) in series.iter().enumerate() {
                self.sums[base + k].add(v);
                self.squares[base + k].add(v * v);
            }
        }
        self.replicates += 1;
        Ok(())
    }

    /// Re-checks every structural invariant a well-formed partial
    /// holds: a non-degenerate fingerprint, accumulator grids sized
    /// `species × samples` on both sides, canonical seed coverage
    /// (sorted, disjoint, coalesced, non-wrapping runs), and a
    /// replicate count that equals the covered seed total.
    ///
    /// Derived deserialization accepts whatever shape the bytes spell,
    /// so every trust boundary — worker replies, relay replies,
    /// file-backed session snapshots — funnels through this before the
    /// partial is merged or finalized. (A short accumulator grid would
    /// otherwise truncate a zip-merge silently or panic `finalize`.)
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), SimError> {
        let fp = &self.fingerprint;
        if fp.species.is_empty() {
            return Err(SimError::InvalidConfig(
                "partial fingerprint lists no species".into(),
            ));
        }
        if fp.samples == 0 {
            return Err(SimError::InvalidConfig(
                "partial fingerprint has a zero-sample grid".into(),
            ));
        }
        let slots = (fp.samples as usize).checked_mul(fp.species.len());
        if slots != Some(self.sums.len()) || slots != Some(self.squares.len()) {
            return Err(SimError::InvalidConfig(format!(
                "partial grid expects {} × {} accumulator cells, found {} sums / {} squares",
                fp.species.len(),
                fp.samples,
                self.sums.len(),
                self.squares.len()
            )));
        }
        // Re-inserting every run into a scratch list validates shape
        // (non-empty, non-wrapping) and disjointness; equality with the
        // stored list additionally pins the canonical sorted/coalesced
        // form, so two equal coverages are structurally identical.
        let mut coverage = Vec::with_capacity(self.seed_ranges.len());
        for &(start, count) in &self.seed_ranges {
            insert_seed_run(&mut coverage, start, count)?;
        }
        if coverage != self.seed_ranges {
            return Err(SimError::InvalidConfig(
                "partial seed coverage is not in canonical sorted/coalesced form".into(),
            ));
        }
        let covered: u128 = self.seed_ranges.iter().map(|&(_, c)| u128::from(c)).sum();
        if covered != u128::from(self.replicates) {
            return Err(SimError::InvalidConfig(format!(
                "partial claims {} replicates but its coverage holds {covered}",
                self.replicates
            )));
        }
        Ok(())
    }

    /// Merges `other` in. Associative and commutative bitwise; see the
    /// type docs.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] on a fingerprint mismatch, when the
    /// two coverages overlap (the shards double-counted at least one
    /// replicate), or when either side fails [`EnsemblePartial::
    /// validate`] — partials arrive deserialized from worker replies,
    /// so the invariants are re-checked rather than trusted. Validation
    /// happens before any accumulator is touched, so a rejected merge
    /// leaves `self` unchanged.
    pub fn merge(&mut self, other: &EnsemblePartial) -> Result<(), SimError> {
        if self.fingerprint != other.fingerprint {
            return Err(SimError::InvalidConfig(format!(
                "partial fingerprint mismatch: {:?} vs {:?}",
                self.fingerprint, other.fingerprint
            )));
        }
        self.validate()?;
        other.validate()?;
        // Rebuild the combined coverage from scratch on a scratch
        // list: per-side runs were just validated, so any rejection
        // here is a genuine cross-side overlap — and the scratch copy
        // keeps merge all-or-nothing.
        let mut coverage = Vec::with_capacity(self.seed_ranges.len() + other.seed_ranges.len());
        for &(start, count) in self.seed_ranges.iter().chain(&other.seed_ranges) {
            insert_seed_run(&mut coverage, start, count)?;
        }
        for (mine, theirs) in self.sums.iter_mut().zip(&other.sums) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.squares.iter_mut().zip(&other.squares) {
            mine.merge(theirs);
        }
        self.replicates += other.replicates;
        self.seed_ranges = coverage;
        Ok(())
    }

    /// `(t, mean, population σ)` of `species` at every sample instant,
    /// read directly off the exact accumulators without materializing
    /// the full mean/σ traces — the borrowed-partial path the resident
    /// query service answers per-species noise queries from. The
    /// figures are bitwise-identical to the corresponding samples of
    /// the [`EnsemblePartial::finalize`] traces.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for an unknown species, an empty
    /// partial, or a cell poisoned by non-finite trace values (the
    /// same conditions `finalize` rejects).
    pub fn species_moments(&self, species: &str) -> Result<Vec<(f64, f64, f64)>, SimError> {
        let Some(s) = self
            .fingerprint
            .species
            .iter()
            .position(|name| name == species)
        else {
            return Err(SimError::InvalidConfig(format!(
                "partial does not aggregate species `{species}`"
            )));
        };
        if self.replicates == 0 {
            return Err(SimError::InvalidConfig(
                "cannot read moments off a partial with zero replicates".into(),
            ));
        }
        self.validate()?;
        let samples = self.fingerprint.samples as usize;
        let n = self.replicates as f64;
        let base = s * samples;
        (0..samples)
            .map(|k| {
                let sum = self.sums[base + k].value();
                let square = self.squares[base + k].value();
                if !(sum.is_finite() && square.is_finite()) {
                    return Err(SimError::InvalidConfig(format!(
                        "partial poisoned by non-finite values (species `{species}`, sample {k})"
                    )));
                }
                // Exactly the finalize arithmetic, so the borrowed
                // path reproduces the materialized traces bitwise.
                let m = sum / n;
                let sd = (square / n - m * m).max(0.0).sqrt();
                Ok((k as f64 * self.fingerprint.sample_dt, m, sd))
            })
            .collect()
    }

    /// Resident memory of this partial in bytes: both accumulator
    /// grids (struct + digit-window heap per cell) plus the range and
    /// fingerprint bookkeeping. Feeds the bench's bytes-per-cached-cell
    /// footprint metric for the resident session store.
    pub fn footprint_bytes(&self) -> usize {
        let cells: usize = self
            .sums
            .iter()
            .chain(&self.squares)
            .map(ExactSum::footprint_bytes)
            .sum();
        cells
            + std::mem::size_of::<Self>()
            + self.seed_ranges.capacity() * std::mem::size_of::<(u64, u64)>()
            + self
                .fingerprint
                .species
                .iter()
                .map(String::len)
                .sum::<usize>()
    }

    /// Number of accumulator cells (`species × samples` each for sums
    /// and sums-of-squares).
    pub fn cells(&self) -> usize {
        self.sums.len() + self.squares.len()
    }

    /// Appends the GLCB binary form: the fingerprint (model id, species
    /// names, grid as `f64` bit patterns, sample count), the replicate
    /// count, the covered seed ranges as varint pairs, and both
    /// accumulator grids in the dense [`ExactSum::encode_binary`]
    /// layout. Equal partials encode to identical bytes (the `ExactSum`
    /// layer canonicalizes), which is what lets the binary wire/spill
    /// paths be compared bitwise against the JSON ones.
    pub fn encode_binary(&self, buf: &mut Vec<u8>) {
        put_string(buf, &self.fingerprint.model_id);
        put_varint(buf, self.fingerprint.species.len() as u64);
        for name in &self.fingerprint.species {
            put_string(buf, name);
        }
        put_f64_bits(buf, self.fingerprint.sample_dt);
        put_f64_bits(buf, self.fingerprint.t_end);
        put_varint(buf, self.fingerprint.samples);
        put_varint(buf, self.replicates);
        put_varint(buf, self.seed_ranges.len() as u64);
        for &(start, count) in &self.seed_ranges {
            put_varint(buf, start);
            put_varint(buf, count);
        }
        put_varint(buf, self.sums.len() as u64);
        for sum in &self.sums {
            sum.encode_binary(buf);
        }
        put_varint(buf, self.squares.len() as u64);
        for square in &self.squares {
            square.encode_binary(buf);
        }
    }

    /// The GLCB binary form as an owned buffer (see
    /// [`EnsemblePartial::encode_binary`]).
    pub fn to_binary(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 24 * self.cells());
        self.encode_binary(&mut buf);
        buf
    }

    /// Decodes the [`EnsemblePartial::encode_binary`] form off
    /// `reader` and re-runs [`EnsemblePartial::validate`] — binary
    /// payloads arrive from the same trust boundaries JSON ones do
    /// (worker replies, spill files), so nothing decoded is trusted
    /// unchecked. Fail-closed on truncation and corrupt counts.
    pub fn decode_binary(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let model_id = reader.string("partial model id")?;
        let species_count = reader.length("partial species", 1 << 20)?;
        let mut species = Vec::with_capacity(species_count);
        for _ in 0..species_count {
            species.push(reader.string("partial species name")?);
        }
        let sample_dt = reader.f64_bits("partial sample_dt")?;
        let t_end = reader.f64_bits("partial t_end")?;
        let samples = reader.varint("partial samples")?;
        let replicates = reader.varint("partial replicates")?;
        let range_count = reader.length("partial seed ranges", 1 << 20)?;
        let mut seed_ranges = Vec::with_capacity(range_count);
        for _ in 0..range_count {
            let start = reader.varint("seed range start")?;
            let count = reader.varint("seed range count")?;
            seed_ranges.push((start, count));
        }
        let cell_cap = 1 << 26;
        let sum_count = reader.length("partial sums", cell_cap)?;
        let mut sums = Vec::with_capacity(sum_count);
        for _ in 0..sum_count {
            sums.push(ExactSum::decode_binary(reader)?);
        }
        let square_count = reader.length("partial squares", cell_cap)?;
        let mut squares = Vec::with_capacity(square_count);
        for _ in 0..square_count {
            squares.push(ExactSum::decode_binary(reader)?);
        }
        let partial = EnsemblePartial {
            fingerprint: PartialFingerprint {
                model_id,
                species,
                sample_dt,
                t_end,
                samples,
            },
            sums,
            squares,
            replicates,
            seed_ranges,
        };
        partial
            .validate()
            .map_err(|err| WireError(format!("invalid partial payload: {err}")))?;
        Ok(partial)
    }

    /// Decodes a standalone [`EnsemblePartial::to_binary`] buffer,
    /// rejecting trailing bytes.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, WireError> {
        let mut reader = Reader::new(bytes);
        let partial = Self::decode_binary(&mut reader)?;
        reader.expect_end("EnsemblePartial")?;
        Ok(partial)
    }

    /// Rounds the exact moments into mean / standard-deviation traces.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for an empty partial (no replicates)
    /// or a partial poisoned by non-finite trace values.
    pub fn finalize(&self) -> Result<Ensemble, SimError> {
        if self.replicates == 0 {
            return Err(SimError::InvalidConfig(
                "cannot finalize a partial with zero replicates".into(),
            ));
        }
        self.validate()?;
        let species = self.fingerprint.species.len();
        let samples = self.fingerprint.samples as usize;
        let n = self.replicates as f64;
        let mut mean = Trace::new(
            self.fingerprint.species.clone(),
            self.fingerprint.sample_dt,
            0.0,
        );
        let mut std_dev = Trace::new(
            self.fingerprint.species.clone(),
            self.fingerprint.sample_dt,
            0.0,
        );
        let mut mean_row = vec![0.0; species];
        let mut std_row = vec![0.0; species];
        for k in 0..samples {
            for s in 0..species {
                let sum = self.sums[s * samples + k].value();
                let square = self.squares[s * samples + k].value();
                if !(sum.is_finite() && square.is_finite()) {
                    return Err(SimError::InvalidConfig(format!(
                        "partial poisoned by non-finite values (species `{}`, sample {k})",
                        self.fingerprint.species[s]
                    )));
                }
                let m = sum / n;
                mean_row[s] = m;
                std_row[s] = (square / n - m * m).max(0.0).sqrt();
            }
            mean.push_row(&mean_row);
            std_dev.push_row(&std_row);
        }
        Ok(Ensemble {
            mean,
            std_dev,
            replicates: self.replicates as usize,
        })
    }
}

/// Inserts the non-wrapping seed run `start .. start + count` into a
/// coverage list (sorted, disjoint, coalesced `(first_seed, count)`
/// runs), rejecting any overlap and coalescing with adjacent runs.
/// Runs never wrap: per-replicate accounting inserts one seed at a
/// time, so a shard straddling the top of the seed space naturally
/// records as its two non-wrapping halves (which keeps fresh and
/// extended coverage of the same seeds structurally identical).
///
/// Rejects malformed runs (`count == 0`, or a run crossing the top of
/// the seed space) rather than assuming them away: merge feeds this
/// with ranges deserialized from worker replies, which are untrusted.
fn insert_seed_run(ranges: &mut Vec<(u64, u64)>, start: u64, count: u64) -> Result<(), SimError> {
    if count == 0 {
        return Err(SimError::InvalidConfig(format!(
            "empty seed range at {start} (count must be >= 1)"
        )));
    }
    // Inclusive end: avoids overflow at u64::MAX for valid runs, and
    // catches runs that would wrap (only a corrupt payload makes one).
    let Some(end) = start.checked_add(count - 1) else {
        return Err(SimError::InvalidConfig(format!(
            "seed range {start}+{count} wraps the seed space"
        )));
    };
    // Inclusive end of an *existing* run. Existing entries normally
    // came through this function, but `accumulate` trusts whatever a
    // derived Deserialize produced — so malformed neighbours are
    // errors here too, not unchecked arithmetic.
    let run_end = |s: u64, c: u64| {
        c.checked_sub(1)
            .and_then(|span| s.checked_add(span))
            .ok_or_else(|| {
                SimError::InvalidConfig(format!("malformed covered range {s}+{c} in coverage list"))
            })
    };
    // Index of the first covered run starting after `start`.
    let at = ranges.partition_point(|&(s, _)| s <= start);
    if let Some(&(s, c)) = at.checked_sub(1).and_then(|i| ranges.get(i)) {
        // Predecessor starts at or before `start`: overlap iff it
        // reaches `start`.
        if run_end(s, c)? >= start {
            return Err(SimError::InvalidConfig(format!(
                "seed range {start}+{count} overlaps covered range {s}+{c}"
            )));
        }
    }
    if let Some(&(s, c)) = ranges.get(at) {
        run_end(s, c)?; // Reject a malformed successor before touching it.
        if s <= end {
            return Err(SimError::InvalidConfig(format!(
                "seed range {start}+{count} overlaps covered range {s}+{c}"
            )));
        }
    }
    ranges.insert(at, (start, count));
    // Coalesce with the successor, then the predecessor. A count sum
    // that would overflow u64 (coverage spanning the whole seed
    // space) skips coalescing — two adjacent runs are still correct.
    if let Some(&(s, c)) = ranges.get(at + 1) {
        if end.checked_add(1) == Some(s) {
            if let Some(combined) = ranges[at].1.checked_add(c) {
                ranges[at].1 = combined;
                ranges.remove(at + 1);
            }
        }
    }
    if at > 0 {
        let (ps, pc) = ranges[at - 1];
        // Predecessor was validated non-overlapping above, so its end
        // is < start <= u64::MAX and the +1 cannot overflow.
        if ps + (pc - 1) + 1 == start {
            if let Some(combined) = ranges[at - 1].1.checked_add(ranges[at].1) {
                ranges[at - 1].1 = combined;
                ranges.remove(at);
            }
        }
    }
    Ok(())
}

/// Runs the contiguous seed range `seeds` of replicates sequentially on
/// the calling thread and returns their partial aggregate.
///
/// This is the shard primitive shared by the in-process
/// [`run_ensemble`] and the process-level `glc-worker` protocol:
/// replicate seeds are absolute (`base_seed + replicate_index`), so a
/// worker handed `base_seed + first .. base_seed + first + count` and
/// the in-process path produce interchangeable partials.
///
/// # Errors
///
/// Propagates the first (lowest-index) [`SimError`] a replicate
/// produces, and [`SimError::InvalidConfig`] for an invalid grid/model
/// (see [`EnsemblePartial::new`]).
pub fn run_partial<F>(
    model: &CompiledModel,
    make_engine: F,
    seeds: Range<u64>,
    t_end: f64,
    sample_dt: f64,
) -> Result<EnsemblePartial, SimError>
where
    F: Fn() -> Box<dyn Engine>,
{
    let count = seeds.end.saturating_sub(seeds.start);
    run_partial_from(model, make_engine, seeds.start, count, t_end, sample_dt)
}

/// Like [`run_partial`], but with the shard given as a first seed and a
/// replicate count. Seeds advance with wrapping arithmetic, so shards
/// whose range crosses the top of the `u64` seed space still simulate
/// every replicate (a `Range<u64>` would be empty there) — the
/// convention `run_ensemble` and the worker protocol both follow for
/// `base_seed + i`.
///
/// # Errors
///
/// See [`run_partial`].
pub fn run_partial_from<F>(
    model: &CompiledModel,
    make_engine: F,
    first_seed: u64,
    count: u64,
    t_end: f64,
    sample_dt: f64,
) -> Result<EnsemblePartial, SimError>
where
    F: Fn() -> Box<dyn Engine>,
{
    let mut partial = EnsemblePartial::new(model, t_end, sample_dt)?;
    let mut engine = make_engine();
    accumulate_range(model, engine.as_mut(), &mut partial, first_seed, count)
        .map_err(|(_, err)| err)?;
    Ok(partial)
}

/// Simulates `count` replicates seeded `first_seed`, `first_seed + 1`,
/// … (wrapping) into `partial`, reporting the zero-based offset of a
/// failing replicate alongside its error so callers can order failures
/// across shards.
fn accumulate_range(
    model: &CompiledModel,
    engine: &mut dyn Engine,
    partial: &mut EnsemblePartial,
    first_seed: u64,
    count: u64,
) -> Result<(), (u64, SimError)> {
    let (t_end, sample_dt) = (partial.fingerprint.t_end, partial.fingerprint.sample_dt);
    for offset in 0..count {
        let seed = first_seed.wrapping_add(offset);
        let trace = simulate(model, engine, t_end, sample_dt, seed).map_err(|e| (offset, e))?;
        partial.accumulate(&trace, seed).map_err(|e| (offset, e))?;
    }
    Ok(())
}

/// Runs `replicates` independent simulations of `model` until `t_end`
/// (sampled every `sample_dt`), seeding replicate `i` with
/// `base_seed + i`, spread across `threads` workers.
///
/// `make_engine` is called once per worker to create that worker's
/// engine (engines are stateful scratch, not shareable).
///
/// Implemented as a thin shard-then-merge over [`run_partial`]'s
/// accumulation: workers claim contiguous replicate chunks from an
/// atomic counter and fold them into per-worker [`EnsemblePartial`]s,
/// which merge into the final aggregate. Exact accumulation makes the
/// result bitwise independent of `threads` and of the chunking — the
/// same property the distributed coordinator relies on.
///
/// # Errors
///
/// Returns the [`SimError`] of the lowest failing replicate index
/// among the failures observed before the early-abort took effect
/// (with a single failing replicate this is deterministic; with
/// several failing concurrently, which error wins can depend on
/// scheduling), and [`SimError::InvalidConfig`] for zero
/// `replicates`/`threads` or a model with no species.
pub fn run_ensemble<F>(
    model: &CompiledModel,
    make_engine: F,
    replicates: usize,
    t_end: f64,
    sample_dt: f64,
    base_seed: u64,
    threads: usize,
) -> Result<Ensemble, SimError>
where
    F: Fn() -> Box<dyn Engine> + Sync,
{
    if replicates == 0 {
        return Err(SimError::InvalidConfig("replicates must be >= 1".into()));
    }
    if threads == 0 {
        return Err(SimError::InvalidConfig("threads must be >= 1".into()));
    }
    // Validate the grid/model up front (and on the error path below).
    let template = EnsemblePartial::new(model, t_end, sample_dt)?;

    let worker_count = threads.min(replicates);
    // Contiguous chunks, claimed dynamically for load balance. The
    // aggregate is chunking-independent (exact accumulation), so the
    // chunk size is purely a scheduling knob: a few chunks per worker
    // amortizes engine setup while still smoothing uneven replicates.
    let chunk_size = replicates.div_ceil(worker_count * 4).max(1);
    let chunk_count = replicates.div_ceil(chunk_size);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let make_engine = &make_engine;
    let template = &template;

    type WorkerOutcome = (Option<EnsemblePartial>, Option<(usize, SimError)>);
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_count)
            .map(|_| {
                let next = &next;
                let abort = &abort;
                scope.spawn(move || -> WorkerOutcome {
                    let mut engine = make_engine();
                    let mut local: Option<EnsemblePartial> = None;
                    let mut failure: Option<(usize, SimError)> = None;
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let chunk = next.fetch_add(1, Ordering::Relaxed);
                        if chunk >= chunk_count {
                            break;
                        }
                        let first = chunk * chunk_size;
                        let count = chunk_size.min(replicates - first);
                        let partial = local.get_or_insert_with(|| template.clone());
                        // Seeds advance with wrapping arithmetic so an
                        // ensemble whose seeds straddle u64::MAX still
                        // runs every replicate.
                        if let Err((offset, err)) = accumulate_range(
                            model,
                            engine.as_mut(),
                            partial,
                            base_seed.wrapping_add(first as u64),
                            count as u64,
                        ) {
                            // Chunks are claimed in ascending order per
                            // worker, so the first failure is this
                            // worker's lowest replicate.
                            failure = Some((first + offset as usize, err));
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    (local, failure)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("ensemble worker panicked"))
            .collect()
    });

    // Deterministic preference, best effort: the lowest failing
    // replicate among the failures observed before the abort landed.
    // (A worker that aborts before reaching its own failing chunk
    // records nothing, so with multiple concurrent failures the winner
    // can still depend on scheduling.)
    if let Some((_, err)) = outcomes
        .iter()
        .filter_map(|(_, failure)| failure.as_ref())
        .min_by_key(|(replicate, _)| *replicate)
    {
        return Err(err.clone());
    }

    let mut merged: Option<EnsemblePartial> = None;
    for (partial, _) in outcomes {
        let Some(partial) = partial else { continue };
        match &mut merged {
            None => merged = Some(partial),
            Some(total) => total.merge(&partial)?,
        }
    }
    let merged = merged.expect("replicates >= 1 and no error");
    debug_assert_eq!(merged.replicates(), replicates as u64);
    merged.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::Direct;
    use crate::langevin::Langevin;
    use crate::ode;
    use glc_model::{Model, ModelBuilder};

    fn birth_death() -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", 0.0)
            .parameter("kp", 5.0)
            .parameter("kd", 0.1)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn ensemble_mean_tracks_the_ode_solution() {
        let model = birth_death();
        let ensemble =
            run_ensemble(&model, || Box::new(Direct::new()), 64, 60.0, 5.0, 7, 4).unwrap();
        assert_eq!(ensemble.replicates, 64);
        let ode_trace = ode::integrate(&model, 60.0, 0.01, 5.0).unwrap();
        let mean = ensemble.mean.series("X").unwrap();
        let expected = ode_trace.series("X").unwrap();
        assert_eq!(mean.len(), expected.len());
        for (k, (&m, &e)) in mean.iter().zip(expected).enumerate().skip(1) {
            // Standard error of 64 replicates around Poisson-ish spread.
            assert!((m - e).abs() < 4.0, "sample {k}: ensemble {m} vs ODE {e}");
        }
    }

    #[test]
    fn ensemble_std_matches_poisson_at_stationarity() {
        let model = birth_death();
        let ensemble =
            run_ensemble(&model, || Box::new(Direct::new()), 128, 120.0, 10.0, 3, 4).unwrap();
        let std = ensemble.std_dev.series("X").unwrap();
        // Stationary distribution is Poisson(50): σ = √50 ≈ 7.07.
        let last = *std.last().unwrap();
        assert!((last - 50.0f64.sqrt()).abs() < 2.0, "σ = {last}");
        // Initial condition is deterministic: σ(0) = 0.
        assert_eq!(std[0], 0.0);
    }

    #[test]
    fn deterministic_given_base_seed() {
        let model = birth_death();
        let run = |threads| {
            run_ensemble(
                &model,
                || Box::new(Direct::new()),
                16,
                30.0,
                5.0,
                11,
                threads,
            )
            .unwrap()
        };
        // Seeds are assigned per replicate index, so thread count must
        // not change the aggregate.
        assert_eq!(run(1).mean, run(4).mean);
    }

    #[test]
    fn deterministic_for_non_integral_traces_too() {
        // Langevin traces are continuous-valued, so this exercises the
        // exact accumulators: plain f64 merge-on-arrival would make the
        // result depend on grouping through fp non-associativity.
        let model = birth_death();
        let run = |threads| {
            run_ensemble(
                &model,
                || Box::new(Langevin::new(0.05).unwrap()),
                12,
                20.0,
                2.0,
                23,
                threads,
            )
            .unwrap()
        };
        let single = run(1);
        let multi = run(3);
        assert_eq!(single.mean, multi.mean);
        assert_eq!(single.std_dev, multi.std_dev);
    }

    #[test]
    fn run_partial_shards_reproduce_run_ensemble_bitwise() {
        let model = birth_death();
        let reference = run_ensemble(
            &model,
            || Box::new(Langevin::new(0.05).unwrap()),
            9,
            10.0,
            1.0,
            5,
            1,
        )
        .unwrap();
        // Shard 0..9 as [0,4) + [4,9), merged in either order.
        let engine = || Box::new(Langevin::new(0.05).unwrap()) as Box<dyn Engine>;
        let a = run_partial(&model, engine, 5..9, 10.0, 1.0).unwrap();
        let b = run_partial(&model, engine, 9..14, 10.0, 1.0).unwrap();
        let mut forward = a.clone();
        forward.merge(&b).unwrap();
        let mut backward = b.clone();
        backward.merge(&a).unwrap();
        for merged in [forward, backward] {
            let ensemble = merged.finalize().unwrap();
            assert_eq!(ensemble.replicates, reference.replicates);
            assert_eq!(ensemble.mean, reference.mean);
            assert_eq!(ensemble.std_dev, reference.std_dev);
        }
    }

    #[test]
    fn seed_space_wraparound_runs_every_replicate() {
        // A base seed near u64::MAX makes `base_seed + i` wrap; seeds
        // advance with wrapping arithmetic, so no replicate may be
        // silently dropped (a `Range<u64>` across the wrap is empty).
        let model = birth_death();
        let ensemble = run_ensemble(
            &model,
            || Box::new(Direct::new()),
            4,
            2.0,
            1.0,
            u64::MAX - 1,
            2,
        )
        .unwrap();
        assert_eq!(ensemble.replicates, 4);
        let engine = || Box::new(Direct::new()) as Box<dyn Engine>;
        let partial = run_partial_from(&model, engine, u64::MAX - 1, 4, 2.0, 1.0).unwrap();
        assert_eq!(partial.replicates(), 4);
        let reference = partial.finalize().unwrap();
        assert_eq!(ensemble.mean, reference.mean);
        assert_eq!(ensemble.std_dev, reference.std_dev);
    }

    #[test]
    fn partial_serde_round_trip_is_bitwise() {
        let model = birth_death();
        let engine = || Box::new(Langevin::new(0.1).unwrap()) as Box<dyn Engine>;
        let partial = run_partial(&model, engine, 3..7, 8.0, 2.0).unwrap();
        let json = serde_json::to_string(&partial).unwrap();
        let back: EnsemblePartial = serde_json::from_str(&json).unwrap();
        assert_eq!(back, partial);
        let a = partial.finalize().unwrap();
        let b = back.finalize().unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std_dev, b.std_dev);
    }

    #[test]
    fn partial_binary_round_trip_is_bitwise_and_fails_closed() {
        let model = birth_death();
        let engine = || Box::new(Langevin::new(0.1).unwrap()) as Box<dyn Engine>;
        // A Langevin partial (non-integral cells), a wrap-straddling
        // one, and an empty one.
        let mut cases = vec![
            run_partial(&model, engine, 3..7, 8.0, 2.0).unwrap(),
            run_partial_from(&model, engine, u64::MAX - 1, 4, 2.0, 1.0).unwrap(),
            EnsemblePartial::new(&model, 8.0, 2.0).unwrap(),
        ];
        // And a poisoned one: an infinite trace value poisons cells.
        let mut poisoned = EnsemblePartial::new(&model, 2.0, 1.0).unwrap();
        let mut hot = Trace::new(vec!["X".into()], 1.0, 0.0);
        for _ in 0..3 {
            hot.push_row(&[f64::INFINITY]);
        }
        poisoned.accumulate(&hot, 0).unwrap();
        cases.push(poisoned);
        for partial in &cases {
            let bytes = partial.to_binary();
            let back = EnsemblePartial::from_binary(&bytes).unwrap();
            assert_eq!(&back, partial);
            assert_eq!(back.to_binary(), bytes, "canonical re-encode");
            // The binary and JSON paths decode to the same value —
            // where JSON can: its numbers travel through f64, so seed
            // ranges beyond 2^53 lose low bits there, while the binary
            // varints are exact for the full u64 range.
            if partial
                .covered_seeds()
                .iter()
                .all(|&(s, c)| s < (1 << 53) && c < (1 << 53))
            {
                let via_json: EnsemblePartial =
                    serde_json::from_str(&serde_json::to_string(partial).unwrap()).unwrap();
                assert_eq!(via_json, back);
            }
            // Truncations fail closed (sampled for speed).
            for cut in (0..bytes.len()).step_by(17) {
                assert!(EnsemblePartial::from_binary(&bytes[..cut]).is_err());
            }
            assert!(EnsemblePartial::from_binary(&[]).is_err());
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert!(EnsemblePartial::from_binary(&trailing).is_err());
        }
        // A structurally invalid payload (overlapping coverage) is
        // rejected by the embedded validate, not trusted.
        let clean = run_partial(&model, engine, 1..3, 2.0, 1.0).unwrap();
        let mut buf = Vec::new();
        put_string(&mut buf, &clean.fingerprint.model_id);
        put_varint(&mut buf, 1);
        put_string(&mut buf, "X");
        put_f64_bits(&mut buf, 1.0);
        put_f64_bits(&mut buf, 2.0);
        put_varint(&mut buf, 3); // samples
        put_varint(&mut buf, 2); // replicates
        put_varint(&mut buf, 2); // two overlapping ranges
        for _ in 0..2 {
            put_varint(&mut buf, 1);
            put_varint(&mut buf, 1);
        }
        put_varint(&mut buf, 3);
        for _ in 0..3 {
            ExactSum::new().encode_binary(&mut buf);
        }
        put_varint(&mut buf, 3);
        for _ in 0..3 {
            ExactSum::new().encode_binary(&mut buf);
        }
        assert!(EnsemblePartial::from_binary(&buf).is_err());
    }

    #[test]
    fn mismatched_traces_are_rejected_not_mismerged() {
        // Regression for the latent pre-refactor hazard: the merge loop
        // sized its buffers from the first arriving trace and silently
        // assumed every later trace matched. Injected mismatches (as a
        // buggy or misconfigured engine/worker would produce) must now
        // be InvalidConfig errors.
        let model = birth_death();
        let mut partial = EnsemblePartial::new(&model, 4.0, 1.0).unwrap();
        let good = simulate(&model, &mut Direct::new(), 4.0, 1.0, 1).unwrap();
        partial.accumulate(&good, 1).unwrap();

        // Wrong length: a trace cut short mid-run.
        let mut short = Trace::new(vec!["X".into()], 1.0, 0.0);
        short.push_row(&[1.0]);
        short.push_row(&[2.0]);
        let err = partial.accumulate(&short, 2).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");

        // Wrong species set.
        let mut alien = Trace::new(vec!["Y".into()], 1.0, 0.0);
        for _ in 0..5 {
            alien.push_row(&[0.0]);
        }
        let err = partial.accumulate(&alien, 3).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");

        // Wrong sampling interval.
        let mut coarse = Trace::new(vec!["X".into()], 2.0, 0.0);
        for _ in 0..5 {
            coarse.push_row(&[0.0]);
        }
        let err = partial.accumulate(&coarse, 4).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");

        // A duplicate seed is double-counting, even with a valid trace.
        let err = partial.accumulate(&good, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");

        // The rejected traces must not have corrupted the aggregate.
        assert_eq!(partial.replicates(), 1);
        let mut clean = EnsemblePartial::new(&model, 4.0, 1.0).unwrap();
        clean.accumulate(&good, 1).unwrap();
        assert_eq!(partial, clean);
    }

    #[test]
    fn seed_coverage_is_tracked_coalesced_and_validated() {
        let model = birth_death();
        let engine = || Box::new(Direct::new()) as Box<dyn Engine>;
        // Extend path: 10..13 then 13..15 coalesces to one run…
        let mut extended = run_partial(&model, engine, 10..13, 4.0, 1.0).unwrap();
        assert_eq!(extended.covered_seeds(), &[(10, 3)]);
        let next = run_partial(&model, engine, 13..15, 4.0, 1.0).unwrap();
        extended.merge(&next).unwrap();
        assert_eq!(extended.covered_seeds(), &[(10, 5)]);
        assert!(extended.covers_contiguous_from(10));
        assert!(!extended.covers_contiguous_from(11));
        // …and is *equal* to the fresh 10..15 partial, coverage
        // included (the resident-extend contract).
        let fresh = run_partial(&model, engine, 10..15, 4.0, 1.0).unwrap();
        assert_eq!(extended, fresh);

        // Overlapping shards are rejected and leave self untouched.
        let overlap = run_partial(&model, engine, 12..14, 4.0, 1.0).unwrap();
        let before = extended.clone();
        let err = extended.merge(&overlap).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
        assert_eq!(extended, before);

        // Disjoint non-adjacent shards keep separate runs.
        let gap = run_partial(&model, engine, 20..22, 4.0, 1.0).unwrap();
        extended.merge(&gap).unwrap();
        assert_eq!(extended.covered_seeds(), &[(10, 5), (20, 2)]);
        assert!(!extended.covers_contiguous_from(10));
    }

    #[test]
    fn seed_coverage_splits_at_the_top_of_the_seed_space() {
        let model = birth_death();
        let engine = || Box::new(Direct::new()) as Box<dyn Engine>;
        let partial = run_partial_from(&model, engine, u64::MAX - 1, 4, 2.0, 1.0).unwrap();
        // Seeds MAX-1, MAX, 0, 1: two non-wrapping halves.
        assert_eq!(partial.covered_seeds(), &[(0, 2), (u64::MAX - 1, 2)]);
        assert!(partial.covers_contiguous_from(u64::MAX - 1));
        assert!(!partial.covers_contiguous_from(0));
        // The wrapped coverage is reproduced identically by an
        // extend-style split at the wrap point.
        let mut extended = run_partial_from(&model, engine, u64::MAX - 1, 2, 2.0, 1.0).unwrap();
        let rest = run_partial_from(&model, engine, 0, 2, 2.0, 1.0).unwrap();
        extended.merge(&rest).unwrap();
        assert_eq!(extended, partial);
    }

    #[test]
    fn malformed_deserialized_coverage_is_rejected_not_trusted() {
        // The derived Deserialize accepts seed_ranges verbatim, so a
        // corrupt reply can claim a wrapping or empty run that
        // insert_seed_run would never produce. Both accumulate and
        // merge must reject such a partial with InvalidConfig — no
        // overflow panic, no silent double-count.
        let model = birth_death();
        let engine = || Box::new(Direct::new()) as Box<dyn Engine>;
        let clean = run_partial(&model, engine, 1..2, 2.0, 1.0).unwrap();
        let json = serde_json::to_string(&clean).unwrap();
        assert!(json.contains("[[1.0,1.0]]"), "fixture drifted: {json}");
        // A run wrapping the seed space (the 2^64-ish count saturates
        // to u64::MAX through the JSON number layer) and an empty run.
        for bogus in ["[[10.0,18446744073709551615.0]]", "[[5.0,0.0]]"] {
            let corrupt: EnsemblePartial =
                serde_json::from_str(&json.replace("[[1.0,1.0]]", bogus)).unwrap();
            assert_ne!(corrupt.covered_seeds(), clean.covered_seeds());
            let mut victim = corrupt.clone();
            let trace = simulate(&model, &mut Direct::new(), 2.0, 1.0, 12).unwrap();
            let err = victim.accumulate(&trace, 12).unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
            let other = run_partial(&model, engine, 30..31, 2.0, 1.0).unwrap();
            let mut victim = corrupt.clone();
            let err = victim.merge(&other).unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
        }
        // A replicate count disagreeing with the coverage is rejected
        // by merge as well.
        let lying: EnsemblePartial =
            serde_json::from_str(&json.replace("\"replicates\":1.0", "\"replicates\":3.0"))
                .unwrap();
        let other = run_partial(&model, engine, 30..31, 2.0, 1.0).unwrap();
        let mut victim = lying.clone();
        let err = victim.merge(&other).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn truncated_accumulator_grids_are_rejected_not_zipped_short() {
        // A deserialized partial whose accumulator vectors are shorter
        // than species × samples (a truncated or hand-corrupted
        // snapshot file) used to truncate the zip in `merge` silently
        // and panic `finalize`. validate() now rejects it at every
        // trust boundary.
        let model = birth_death();
        let engine = || Box::new(Direct::new()) as Box<dyn Engine>;
        let clean = run_partial(&model, engine, 1..3, 2.0, 1.0).unwrap();
        let json = serde_json::to_string(&clean).unwrap();
        let truncated = {
            // Drop the last cell of the sums array textually.
            let sums_start = json.find("\"sums\":[").unwrap() + "\"sums\":[".len();
            let sums_end = json[sums_start..].find("],\"squares\"").unwrap() + sums_start;
            let body = &json[sums_start..sums_end];
            let last_obj = body.rfind(",{").unwrap();
            format!(
                "{}{}{}",
                &json[..sums_start],
                &body[..last_obj],
                &json[sums_end..]
            )
        };
        let corrupt: EnsemblePartial = serde_json::from_str(&truncated).unwrap();
        let err = corrupt.validate().unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
        assert!(matches!(
            corrupt.finalize(),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            corrupt.species_moments("X"),
            Err(SimError::InvalidConfig(_))
        ));
        let other = run_partial(&model, engine, 10..11, 2.0, 1.0).unwrap();
        let mut victim = other.clone();
        let err = victim.merge(&corrupt).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
        assert_eq!(victim, other, "rejected merge leaves self untouched");
        // Non-canonical (unsorted / uncoalesced) coverage is rejected
        // even when disjoint.
        let swapped: EnsemblePartial = serde_json::from_str(
            &serde_json::to_string(&clean)
                .unwrap()
                .replace("[[1.0,2.0]]", "[[2.0,1.0],[1.0,1.0]]"),
        )
        .unwrap();
        assert!(swapped.validate().is_err());
        // The clean partial passes.
        clean.validate().unwrap();
    }

    #[test]
    fn species_moments_match_finalized_traces_bitwise() {
        let model = birth_death();
        let engine = || Box::new(Langevin::new(0.05).unwrap()) as Box<dyn Engine>;
        let partial = run_partial(&model, engine, 3..9, 10.0, 2.0).unwrap();
        let ensemble = partial.finalize().unwrap();
        let moments = partial.species_moments("X").unwrap();
        let mean = ensemble.mean.series("X").unwrap();
        let std = ensemble.std_dev.series("X").unwrap();
        assert_eq!(moments.len(), mean.len());
        for (k, &(t, m, sd)) in moments.iter().enumerate() {
            assert_eq!(t.to_bits(), ensemble.mean.time(k).to_bits());
            assert_eq!(m.to_bits(), mean[k].to_bits(), "mean at {k}");
            assert_eq!(sd.to_bits(), std[k].to_bits(), "σ at {k}");
        }
        // Unknown species and empty partials are rejected like
        // finalize rejects them.
        assert!(partial.species_moments("ghost").is_err());
        let empty = EnsemblePartial::new(&model, 10.0, 2.0).unwrap();
        assert!(empty.species_moments("X").is_err());
    }

    #[test]
    fn mismatched_partials_refuse_to_merge() {
        let model = birth_death();
        let engine = || Box::new(Direct::new()) as Box<dyn Engine>;
        let mut a = run_partial(&model, engine, 0..2, 4.0, 1.0).unwrap();
        // Different grid.
        let b = run_partial(&model, engine, 2..4, 4.0, 2.0).unwrap();
        let err = a.merge(&b).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
        // Different model.
        let other = ModelBuilder::new("other")
            .species("X", 0.0)
            .reaction("prod", &[], &["X"], "1.0")
            .unwrap()
            .build()
            .unwrap();
        let other = CompiledModel::new(&other).unwrap();
        let c = run_partial(&other, engine, 0..2, 4.0, 1.0).unwrap();
        let err = a.merge(&c).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn empty_partial_cannot_finalize() {
        let model = birth_death();
        let partial = EnsemblePartial::new(&model, 4.0, 1.0).unwrap();
        assert!(matches!(
            partial.finalize(),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn config_validation() {
        let model = birth_death();
        assert!(run_ensemble(&model, || Box::new(Direct::new()), 0, 1.0, 1.0, 0, 1).is_err());
        assert!(run_ensemble(&model, || Box::new(Direct::new()), 1, 1.0, 1.0, 0, 0).is_err());
        assert!(EnsemblePartial::new(&model, 1.0, 0.0).is_err());
        assert!(EnsemblePartial::new(&model, -1.0, 1.0).is_err());
    }

    #[test]
    fn zero_species_model_is_rejected_not_a_panic() {
        let model = Model::from_parts("empty", vec![], vec![], vec![]).unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let err =
            run_ensemble(&compiled, || Box::new(Direct::new()), 4, 1.0, 1.0, 0, 2).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn replicate_failures_propagate() {
        let model = ModelBuilder::new("bad")
            .species("X", 0.0)
            .reaction("boom", &[], &["X"], "1 / X")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let err =
            run_ensemble(&compiled, || Box::new(Direct::new()), 4, 1.0, 1.0, 0, 2).unwrap_err();
        assert!(matches!(err, SimError::NonFinitePropensity { .. }));
        let engine = || Box::new(Direct::new()) as Box<dyn Engine>;
        let err = run_partial(&compiled, engine, 0..4, 1.0, 1.0).unwrap_err();
        assert!(matches!(err, SimError::NonFinitePropensity { .. }));
    }
}
