//! Ensemble simulation: many stochastic replicates, aggregated.
//!
//! A single SSA trajectory is one sample of a distribution; circuit
//! noise analyses (and the mean-vs-ODE cross-checks) need the ensemble
//! mean and spread. [`run_ensemble`] runs independent replicates on
//! worker threads (std scoped threads, one RNG stream per replicate
//! derived from a base seed) and aggregates them into mean /
//! standard-deviation traces on the common sampling grid.
//!
//! # Accumulation without locks
//!
//! Workers claim replicate indices from an atomic counter and send
//! finished traces over a channel; the calling thread merges them into
//! the sum / sum-of-squares buffers **in replicate order** (out-of-order
//! arrivals are parked until their turn). Two consequences:
//!
//! * no `Mutex` anywhere on the per-replicate path, so ensemble
//!   throughput scales with cores instead of serializing on a lock;
//! * floating-point accumulation order is a function of the replicate
//!   indices only, so the aggregate is bitwise independent of the
//!   thread count — even for engines with non-integral traces
//!   (Langevin), not just the exact integer-count engines.

use crate::compiled::CompiledModel;
use crate::engine::Engine;
use crate::error::SimError;
use crate::simulate;
use crate::trace::Trace;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Aggregated result of an ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    /// Point-wise ensemble mean of every species.
    pub mean: Trace,
    /// Point-wise ensemble standard deviation (population).
    pub std_dev: Trace,
    /// Number of replicates aggregated.
    pub replicates: usize,
}

/// Sum and sum-of-squares per species per sample, merged in strict
/// replicate order.
struct Accumulator {
    sums: Vec<Vec<f64>>,
    squares: Vec<Vec<f64>>,
    merged: usize,
}

impl Accumulator {
    fn new(species: usize, samples: usize) -> Self {
        Accumulator {
            sums: vec![vec![0.0; samples]; species],
            squares: vec![vec![0.0; samples]; species],
            merged: 0,
        }
    }

    fn merge(&mut self, trace: &Trace) {
        for (s, (sums, squares)) in self.sums.iter_mut().zip(&mut self.squares).enumerate() {
            for (k, &v) in trace.series_at(s).iter().enumerate() {
                sums[k] += v;
                squares[k] += v * v;
            }
        }
        self.merged += 1;
    }
}

/// Runs `replicates` independent simulations of `model` until `t_end`
/// (sampled every `sample_dt`), seeding replicate `i` with
/// `base_seed + i`, spread across `threads` workers.
///
/// `make_engine` is called once per worker to create that worker's
/// engine (engines are stateful scratch, not shareable).
///
/// The aggregate is independent of `threads`: replicate seeds depend
/// only on the replicate index, and accumulation happens in replicate
/// order on the calling thread.
///
/// # Errors
///
/// Returns the lowest-replicate [`SimError`] any replicate produced,
/// and [`SimError::InvalidConfig`] for zero `replicates`/`threads` or a
/// model with no species (there would be nothing to aggregate).
pub fn run_ensemble<F>(
    model: &CompiledModel,
    make_engine: F,
    replicates: usize,
    t_end: f64,
    sample_dt: f64,
    base_seed: u64,
    threads: usize,
) -> Result<Ensemble, SimError>
where
    F: Fn() -> Box<dyn Engine> + Sync,
{
    if replicates == 0 {
        return Err(SimError::InvalidConfig("replicates must be >= 1".into()));
    }
    if threads == 0 {
        return Err(SimError::InvalidConfig("threads must be >= 1".into()));
    }
    if model.species_count() == 0 {
        return Err(SimError::InvalidConfig(
            "model has no species to aggregate".into(),
        ));
    }

    let worker_count = threads.min(replicates);
    // In-flight window: a worker may not start a replicate more than
    // this far ahead of the merge frontier, which bounds the merger's
    // `pending` buffer at `window` traces even when one early replicate
    // happens to simulate much slower than its successors.
    let window = worker_count * 4;
    let next = AtomicUsize::new(0);
    let merged_frontier = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, Result<Trace, SimError>)>();
    let make_engine = &make_engine;

    let (accumulator, first_error) = std::thread::scope(|scope| {
        for _ in 0..worker_count {
            let tx = tx.clone();
            let next = &next;
            let merged_frontier = &merged_frontier;
            let abort = &abort;
            scope.spawn(move || {
                let mut engine = make_engine();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        return;
                    }
                    let replicate = next.fetch_add(1, Ordering::Relaxed);
                    if replicate >= replicates {
                        return;
                    }
                    // Throttle: wait until the merge frontier is within
                    // `window` of this replicate. The frontier replicate
                    // itself never waits (replicate == frontier < frontier
                    // + window), so progress is always possible.
                    while replicate >= merged_frontier.load(Ordering::Acquire) + window {
                        if abort.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::yield_now();
                    }
                    let seed = base_seed.wrapping_add(replicate as u64);
                    let outcome = simulate(model, engine.as_mut(), t_end, sample_dt, seed);
                    if outcome.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if tx.send((replicate, outcome)).is_err() {
                        return;
                    }
                }
            });
        }
        // Close the original sender so the receive loop ends when the
        // last worker exits.
        drop(tx);

        // Ordered merge on this thread: replicate `merged` is always the
        // next one folded in, so summation order never depends on thread
        // scheduling. Out-of-order arrivals wait in `pending`, which the
        // claim throttle above keeps at no more than `window` entries.
        let mut accumulator: Option<Accumulator> = None;
        let mut pending: BTreeMap<usize, Trace> = BTreeMap::new();
        let mut first_error: Option<(usize, SimError)> = None;
        for (replicate, outcome) in rx {
            match outcome {
                Ok(trace) => {
                    pending.insert(replicate, trace);
                    let accumulator = accumulator.get_or_insert_with(|| {
                        let samples = pending.values().next().expect("just inserted").len();
                        Accumulator::new(model.species_count(), samples)
                    });
                    while let Some(trace) = pending.remove(&accumulator.merged) {
                        accumulator.merge(&trace);
                        merged_frontier.store(accumulator.merged, Ordering::Release);
                    }
                }
                Err(err) => {
                    if first_error
                        .as_ref()
                        .is_none_or(|(prev, _)| replicate < *prev)
                    {
                        first_error = Some((replicate, err));
                    }
                }
            }
        }
        (accumulator, first_error)
    });

    if let Some((_, err)) = first_error {
        return Err(err);
    }
    let accumulator = accumulator.expect("replicates >= 1 and no error");
    debug_assert_eq!(accumulator.merged, replicates);

    let names = model.species_names().to_vec();
    let mut mean = Trace::new(names.clone(), sample_dt, 0.0);
    let mut std_dev = Trace::new(names, sample_dt, 0.0);
    let samples = accumulator.sums[0].len();
    let species = accumulator.sums.len();
    let n = accumulator.merged as f64;
    for k in 0..samples {
        let mean_row: Vec<f64> = (0..species).map(|s| accumulator.sums[s][k] / n).collect();
        let std_row: Vec<f64> = (0..species)
            .map(|s| {
                let m = accumulator.sums[s][k] / n;
                (accumulator.squares[s][k] / n - m * m).max(0.0).sqrt()
            })
            .collect();
        mean.push_row(&mean_row);
        std_dev.push_row(&std_row);
    }
    Ok(Ensemble {
        mean,
        std_dev,
        replicates: accumulator.merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::Direct;
    use crate::langevin::Langevin;
    use crate::ode;
    use glc_model::{Model, ModelBuilder};

    fn birth_death() -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", 0.0)
            .parameter("kp", 5.0)
            .parameter("kd", 0.1)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn ensemble_mean_tracks_the_ode_solution() {
        let model = birth_death();
        let ensemble =
            run_ensemble(&model, || Box::new(Direct::new()), 64, 60.0, 5.0, 7, 4).unwrap();
        assert_eq!(ensemble.replicates, 64);
        let ode_trace = ode::integrate(&model, 60.0, 0.01, 5.0).unwrap();
        let mean = ensemble.mean.series("X").unwrap();
        let expected = ode_trace.series("X").unwrap();
        assert_eq!(mean.len(), expected.len());
        for (k, (&m, &e)) in mean.iter().zip(expected).enumerate().skip(1) {
            // Standard error of 64 replicates around Poisson-ish spread.
            assert!((m - e).abs() < 4.0, "sample {k}: ensemble {m} vs ODE {e}");
        }
    }

    #[test]
    fn ensemble_std_matches_poisson_at_stationarity() {
        let model = birth_death();
        let ensemble =
            run_ensemble(&model, || Box::new(Direct::new()), 128, 120.0, 10.0, 3, 4).unwrap();
        let std = ensemble.std_dev.series("X").unwrap();
        // Stationary distribution is Poisson(50): σ = √50 ≈ 7.07.
        let last = *std.last().unwrap();
        assert!((last - 50.0f64.sqrt()).abs() < 2.0, "σ = {last}");
        // Initial condition is deterministic: σ(0) = 0.
        assert_eq!(std[0], 0.0);
    }

    #[test]
    fn deterministic_given_base_seed() {
        let model = birth_death();
        let run = |threads| {
            run_ensemble(
                &model,
                || Box::new(Direct::new()),
                16,
                30.0,
                5.0,
                11,
                threads,
            )
            .unwrap()
        };
        // Seeds are assigned per replicate index, so thread count must
        // not change the aggregate.
        assert_eq!(run(1).mean, run(4).mean);
    }

    #[test]
    fn deterministic_for_non_integral_traces_too() {
        // Langevin traces are continuous-valued, so this exercises the
        // ordered merge: naive merge-on-arrival would make the result
        // depend on thread scheduling through fp non-associativity.
        let model = birth_death();
        let run = |threads| {
            run_ensemble(
                &model,
                || Box::new(Langevin::new(0.05).unwrap()),
                12,
                20.0,
                2.0,
                23,
                threads,
            )
            .unwrap()
        };
        let single = run(1);
        let multi = run(3);
        assert_eq!(single.mean, multi.mean);
        assert_eq!(single.std_dev, multi.std_dev);
    }

    #[test]
    fn config_validation() {
        let model = birth_death();
        assert!(run_ensemble(&model, || Box::new(Direct::new()), 0, 1.0, 1.0, 0, 1).is_err());
        assert!(run_ensemble(&model, || Box::new(Direct::new()), 1, 1.0, 1.0, 0, 0).is_err());
    }

    #[test]
    fn zero_species_model_is_rejected_not_a_panic() {
        let model = Model::from_parts("empty", vec![], vec![], vec![]).unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let err =
            run_ensemble(&compiled, || Box::new(Direct::new()), 4, 1.0, 1.0, 0, 2).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn replicate_failures_propagate() {
        let model = ModelBuilder::new("bad")
            .species("X", 0.0)
            .reaction("boom", &[], &["X"], "1 / X")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let err =
            run_ensemble(&compiled, || Box::new(Direct::new()), 4, 1.0, 1.0, 0, 2).unwrap_err();
        assert!(matches!(err, SimError::NonFinitePropensity { .. }));
    }
}
