//! Piecewise-constant input schedules.
//!
//! Genetic-circuit inputs are boundary species whose amounts the virtual
//! lab clamps from outside the model (the wet-lab equivalent is adding or
//! washing out an inducer). An [`InputSchedule`] lists timed set-points;
//! a [`ScheduleRunner`] executes a simulation in segments, applying the
//! set-points between engine runs, and records one continuous trace.

use crate::compiled::{CompiledModel, State};
use crate::engine::Engine;
use crate::error::SimError;
use crate::trace::{Trace, TraceRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A timed list of species set-points.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InputSchedule {
    /// `(time, species slot, amount)` triples, kept sorted by time
    /// (stable for equal times, preserving insertion order).
    events: Vec<(f64, usize, f64)>,
}

impl InputSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a set-point: at time `t`, clamp species `slot` to `amount`.
    pub fn set(&mut self, t: f64, slot: usize, amount: f64) -> &mut Self {
        let insert_at = self.events.partition_point(|&(et, _, _)| et <= t);
        self.events.insert(insert_at, (t, slot, amount));
        self
    }

    /// All events in time order.
    pub fn events(&self) -> &[(f64, usize, f64)] {
        &self.events
    }

    /// Distinct event times, in order.
    pub fn event_times(&self) -> Vec<f64> {
        let mut times: Vec<f64> = Vec::new();
        for &(t, _, _) in &self.events {
            if times.last().is_none_or(|&last| t > last) {
                times.push(t);
            }
        }
        times
    }

    /// Applies every event with time in `[from, to)` to `state`.
    pub fn apply_range(&self, from: f64, to: f64, state: &mut State) {
        for &(t, slot, amount) in &self.events {
            if t >= from && t < to {
                state.set_species(slot, amount);
            }
        }
    }
}

/// Executes a simulation under an [`InputSchedule`].
#[derive(Debug, Clone)]
pub struct ScheduleRunner {
    schedule: InputSchedule,
    sample_dt: f64,
}

impl ScheduleRunner {
    /// Creates a runner for `schedule`, recording samples every
    /// `sample_dt`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `sample_dt` is not strictly
    /// positive or any event time is negative.
    pub fn new(schedule: InputSchedule, sample_dt: f64) -> Result<Self, SimError> {
        if !(sample_dt.is_finite() && sample_dt > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "sample_dt must be positive and finite, got {sample_dt}"
            )));
        }
        if schedule.events().iter().any(|&(t, _, _)| t < 0.0) {
            return Err(SimError::InvalidConfig(
                "schedule contains a negative event time".into(),
            ));
        }
        Ok(ScheduleRunner {
            schedule,
            sample_dt,
        })
    }

    /// Runs `engine` on `model` from its initial state to `t_end`,
    /// applying scheduled set-points and recording one continuous trace.
    ///
    /// Events at `t = 0` are applied before the first engine segment;
    /// events at or beyond `t_end` are ignored.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; rejects a negative `t_end`.
    pub fn run(
        &self,
        model: &CompiledModel,
        engine: &mut dyn Engine,
        t_end: f64,
        seed: u64,
    ) -> Result<Trace, SimError> {
        if t_end < 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "t_end must be non-negative, got {t_end}"
            )));
        }
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recorder = TraceRecorder::new(model, self.sample_dt);

        let mut boundaries: Vec<f64> = self
            .schedule
            .event_times()
            .into_iter()
            .filter(|&t| t < t_end)
            .collect();
        boundaries.push(t_end);

        let mut segment_start = 0.0;
        // Apply t = 0 events before simulating.
        self.schedule
            .apply_range(-f64::EPSILON, f64::MIN_POSITIVE, &mut state);
        for &boundary in &boundaries {
            if boundary > segment_start {
                engine.run(model, &mut state, boundary, &mut rng, &mut recorder)?;
            }
            if boundary < t_end {
                // Apply the set-points firing exactly at this boundary.
                self.schedule.apply_range(
                    boundary.max(f64::MIN_POSITIVE),
                    boundary + boundary_width(boundary),
                    &mut state,
                );
            }
            segment_start = boundary;
        }
        Ok(recorder.finish(t_end, &state))
    }
}

/// Half-open width used to select the events at exactly one boundary.
fn boundary_width(t: f64) -> f64 {
    (t.abs() * f64::EPSILON).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::Direct;
    use glc_model::ModelBuilder;

    fn clamp_model() -> CompiledModel {
        // Output Y relaxes toward the clamped input X.
        let model = ModelBuilder::new("follow")
            .boundary_species("X", 0.0)
            .species("Y", 0.0)
            .parameter("k", 0.5)
            .reaction_full(
                "prod",
                vec![],
                vec![("Y".into(), 1)],
                vec!["X".into()],
                "k * X",
            )
            .unwrap()
            .reaction("deg", &["Y"], &[], "k * Y")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn schedule_keeps_events_sorted() {
        let mut schedule = InputSchedule::new();
        schedule.set(5.0, 0, 1.0);
        schedule.set(1.0, 0, 2.0);
        schedule.set(3.0, 1, 3.0);
        let times: Vec<f64> = schedule.events().iter().map(|e| e.0).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(schedule.event_times(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn equal_time_events_preserve_insertion_order() {
        let mut schedule = InputSchedule::new();
        schedule.set(1.0, 0, 10.0);
        schedule.set(1.0, 0, 20.0); // later insertion wins when applied
        let mut state = State {
            t: 0.0,
            values: vec![0.0],
        };
        schedule.apply_range(0.5, 1.5, &mut state);
        assert_eq!(state.values[0], 20.0);
        assert_eq!(schedule.event_times(), vec![1.0]);
    }

    #[test]
    fn runner_applies_clamps_and_output_follows() {
        let model = clamp_model();
        let mut schedule = InputSchedule::new();
        let x = model.species_slot("X").unwrap();
        schedule.set(0.0, x, 100.0);
        schedule.set(100.0, x, 0.0);
        let runner = ScheduleRunner::new(schedule, 1.0).unwrap();
        let trace = runner.run(&model, &mut Direct::new(), 200.0, 7).unwrap();

        let xs = trace.series("X").unwrap();
        let ys = trace.series("Y").unwrap();
        // Input clamps visible in the trace.
        assert_eq!(xs[1], 100.0);
        assert_eq!(xs[150], 0.0);
        // Output approaches 100 before the switch, decays after.
        assert!(ys[90] > 60.0, "Y[90] = {}", ys[90]);
        assert!(ys[199] < 30.0, "Y[199] = {}", ys[199]);
        assert_eq!(trace.len(), 201);
    }

    #[test]
    fn events_beyond_horizon_are_ignored() {
        let model = clamp_model();
        let mut schedule = InputSchedule::new();
        schedule.set(1000.0, 0, 99.0);
        let runner = ScheduleRunner::new(schedule, 1.0).unwrap();
        let trace = runner.run(&model, &mut Direct::new(), 10.0, 7).unwrap();
        assert!(trace.series("X").unwrap().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ScheduleRunner::new(InputSchedule::new(), 0.0).is_err());
        let mut schedule = InputSchedule::new();
        schedule.set(-1.0, 0, 1.0);
        assert!(ScheduleRunner::new(schedule, 1.0).is_err());
        let runner = ScheduleRunner::new(InputSchedule::new(), 1.0).unwrap();
        let model = clamp_model();
        assert!(runner.run(&model, &mut Direct::new(), -5.0, 0).is_err());
    }

    #[test]
    fn apply_range_is_half_open() {
        let mut schedule = InputSchedule::new();
        schedule.set(2.0, 0, 5.0);
        let mut state = State {
            t: 0.0,
            values: vec![0.0],
        };
        schedule.apply_range(0.0, 2.0, &mut state); // [0, 2) excludes t=2
        assert_eq!(state.values[0], 0.0);
        schedule.apply_range(2.0, 3.0, &mut state);
        assert_eq!(state.values[0], 5.0);
    }
}
