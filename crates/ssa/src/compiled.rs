//! Compilation of a [`glc_model::Model`] into a simulation-ready form.
//!
//! Compilation resolves every kinetic-law identifier to a slot in a flat
//! value vector (species first, parameters after), precomputes each
//! reaction's net state change (excluding boundary species, which are
//! clamped), and builds the reaction dependency graph used by the
//! Gibson–Bruck next-reaction method.

use crate::error::SimError;
use glc_model::expr::{CompiledExpr, EvalMemo, KineticFormBank};
use glc_model::{Model, ModelError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock};

/// Simulation state: current time plus the flat value vector.
///
/// `values[0..species_count]` are species amounts (kept integral by the
/// exact engines), followed by the constant parameter values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    /// Current simulation time.
    pub t: f64,
    /// Species amounts followed by parameter values.
    pub values: Vec<f64>,
}

impl State {
    /// Species amount at `slot`.
    pub fn species(&self, slot: usize) -> f64 {
        self.values[slot]
    }

    /// Sets the species amount at `slot` (used by input schedules to clamp
    /// boundary species).
    pub fn set_species(&mut self, slot: usize, amount: f64) {
        self.values[slot] = amount;
    }
}

/// A model compiled for simulation.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    id: String,
    species_names: Vec<String>,
    reaction_ids: Vec<String>,
    species_count: usize,
    kinetics: Vec<CompiledExpr>,
    /// Batched structure-of-arrays evaluator over `kinetics`; the hot
    /// propensity paths all go through it (bitwise identical to per-law
    /// evaluation).
    bank: KineticFormBank,
    deltas: Vec<Vec<(usize, i64)>>,
    dependents: Vec<Vec<usize>>,
    initial_values: Vec<f64>,
}

impl CompiledModel {
    /// Compiles `model`.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] if a kinetic law references an unknown
    /// identifier (cannot happen for a model that passed validation).
    pub fn new(model: &Model) -> Result<Self, ModelError> {
        let kinetics = model.compile_kinetics()?;
        let species_count = model.species().len();

        let mut deltas = Vec::with_capacity(model.reactions().len());
        for reaction in model.reactions() {
            let mut delta: Vec<(usize, i64)> = Vec::new();
            let mut touched: BTreeSet<&str> = BTreeSet::new();
            for (id, _) in reaction.reactants.iter().chain(&reaction.products) {
                touched.insert(id);
            }
            for id in touched {
                let slot = model
                    .species_id(id)
                    .expect("validated model has all species")
                    .0;
                if model.species()[slot].boundary {
                    // Boundary species are clamped: the reaction reads them
                    // but firing it must not change them.
                    continue;
                }
                let net = reaction.net_change(id);
                if net != 0 {
                    delta.push((slot, net));
                }
            }
            deltas.push(delta);
        }

        // dependents[r] = reactions whose propensity reads a slot that
        // firing r changes (the Gibson–Bruck dependency graph).
        let refs: Vec<BTreeSet<usize>> = kinetics
            .iter()
            .map(|k| k.referenced_slots().iter().copied().collect())
            .collect();
        let mut dependents = Vec::with_capacity(deltas.len());
        for delta in &deltas {
            let changed: BTreeSet<usize> = delta.iter().map(|&(slot, _)| slot).collect();
            let deps: Vec<usize> = refs
                .iter()
                .enumerate()
                .filter(|(_, r)| !changed.is_disjoint(r))
                .map(|(j, _)| j)
                .collect();
            dependents.push(deps);
        }

        let bank = KineticFormBank::new(&kinetics);
        Ok(CompiledModel {
            id: model.id().to_string(),
            species_names: model.species().iter().map(|s| s.id.clone()).collect(),
            reaction_ids: model.reactions().iter().map(|r| r.id.clone()).collect(),
            species_count,
            kinetics,
            bank,
            deltas,
            dependents,
            initial_values: model.initial_values(),
        })
    }

    /// Model identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of species (and length of the species prefix of the value
    /// vector).
    pub fn species_count(&self) -> usize {
        self.species_count
    }

    /// Number of reactions.
    pub fn reaction_count(&self) -> usize {
        self.kinetics.len()
    }

    /// Species names in slot order.
    pub fn species_names(&self) -> &[String] {
        &self.species_names
    }

    /// Slot of the species named `name`.
    pub fn species_slot(&self, name: &str) -> Option<usize> {
        self.species_names.iter().position(|n| n == name)
    }

    /// Identifier of reaction `r`.
    pub fn reaction_id(&self, r: usize) -> &str {
        &self.reaction_ids[r]
    }

    /// Fresh state at `t = 0` with initial amounts and parameter values.
    pub fn initial_state(&self) -> State {
        State {
            t: 0.0,
            values: self.initial_values.clone(),
        }
    }

    /// Net state change of reaction `r` as `(slot, delta)` pairs
    /// (boundary species already excluded).
    pub fn delta(&self, r: usize) -> &[(usize, i64)] {
        &self.deltas[r]
    }

    /// Reactions whose propensity may change when reaction `r` fires.
    pub fn dependents(&self, r: usize) -> &[usize] {
        &self.dependents[r]
    }

    /// Evaluates the propensity of reaction `r`, reusing `stack` as
    /// scratch space.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NegativePropensity`] or
    /// [`SimError::NonFinitePropensity`] for invalid values.
    pub fn propensity_with(
        &self,
        r: usize,
        state: &State,
        stack: &mut Vec<f64>,
    ) -> Result<f64, SimError> {
        // The bank reads the law out of its structure-of-arrays lane
        // (mass-action and Hill shapes with zero dispatch; irregular
        // laws through the retained `CompiledExpr`, which falls back to
        // the postfix VM on `stack`). All paths are bitwise identical,
        // so this is a pure constant-factor win.
        let value = self.bank.eval_one(r, &state.values, stack);
        self.check_propensity(r, value, state.t)
    }

    /// Validates one evaluated propensity.
    fn check_propensity(&self, r: usize, value: f64, t: f64) -> Result<f64, SimError> {
        if !value.is_finite() {
            return Err(SimError::NonFinitePropensity {
                reaction: self.reaction_ids[r].clone(),
                time: t,
            });
        }
        if value < 0.0 {
            return Err(SimError::NegativePropensity {
                reaction: self.reaction_ids[r].clone(),
                time: t,
                value,
            });
        }
        Ok(value)
    }

    /// Evaluates all propensities into `out` (resized as needed) in one
    /// batched sweep through the [`KineticFormBank`].
    ///
    /// The returned total is the sequential sum in reaction order, and
    /// the first invalid propensity (in reaction order) is the error
    /// reported — both exactly as the scalar loop behaved.
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::propensity_with`].
    pub fn propensities_into(
        &self,
        state: &State,
        out: &mut Vec<f64>,
        stack: &mut Vec<f64>,
        memo: &mut EvalMemo,
    ) -> Result<f64, SimError> {
        self.propensities_at(&state.values, state.t, out, stack, memo)
    }

    /// Like [`CompiledModel::propensities_into`] but against a raw value
    /// vector (`t` only labels errors). This is the full-sweep primitive
    /// behind tau-leap/Langevin rebuilds and the ODE derivative.
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::propensity_with`].
    pub fn propensities_at(
        &self,
        values: &[f64],
        t: f64,
        out: &mut Vec<f64>,
        stack: &mut Vec<f64>,
        memo: &mut EvalMemo,
    ) -> Result<f64, SimError> {
        out.resize(self.kinetics.len(), 0.0);
        self.bank.eval_all(values, out, stack, memo);
        // Fast validation: accumulate the sequential in-order total (the
        // exact FP sum the scalar loop produced) while tracking the
        // minimum. A NaN propensity poisons `total` (min() would skip
        // it), a negative one drags `floor` below zero, and an infinity
        // shows up in `total` directly — only then rerun the per-value
        // check to attribute the error to the first offending reaction.
        let mut total = 0.0;
        let mut floor = f64::INFINITY;
        for &value in out.iter() {
            total += value;
            floor = floor.min(value);
        }
        if total.is_finite() && floor >= 0.0 {
            return Ok(total);
        }
        let mut total = 0.0;
        for (r, &value) in out.iter().enumerate() {
            total += self.check_propensity(r, value, t)?;
        }
        Ok(total)
    }

    /// The scalar reference sweep: evaluates every law one at a time via
    /// [`CompiledExpr::eval_fast`], bypassing the bank's SoA layout.
    ///
    /// Kept as the baseline the batched path is benchmarked and
    /// property-tested against; results are bitwise identical to
    /// [`CompiledModel::propensities_into`].
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::propensity_with`].
    pub fn propensities_into_scalar(
        &self,
        state: &State,
        out: &mut Vec<f64>,
        stack: &mut Vec<f64>,
    ) -> Result<f64, SimError> {
        out.resize(self.kinetics.len(), 0.0);
        let mut total = 0.0;
        for (r, slot) in out.iter_mut().enumerate() {
            let value = self.kinetics[r].eval_fast(&state.values, stack);
            *slot = self.check_propensity(r, value, state.t)?;
            total += *slot;
        }
        Ok(total)
    }

    /// The batched evaluator over this model's kinetic laws.
    pub fn bank(&self) -> &KineticFormBank {
        &self.bank
    }

    /// Applies the state change of firing reaction `r` once.
    pub fn apply(&self, r: usize, state: &mut State) {
        for &(slot, delta) in &self.deltas[r] {
            let updated = state.values[slot] + delta as f64;
            debug_assert!(
                updated >= 0.0,
                "species `{}` driven negative by reaction `{}`",
                self.species_names[slot],
                self.reaction_ids[r]
            );
            state.values[slot] = updated.max(0.0);
        }
    }
}

/// A bounded, fingerprint-keyed cache of compiled models.
///
/// Compiling a catalog circuit — parsing every kinetic law, building
/// the dependency graph and the kinetic-form bank — costs far more than
/// a short simulation shard, and the service layer presents the same
/// few circuits over and over (every replicate shard of a work order,
/// every warm session resubmit). Keying an `Arc<CompiledModel>` by the
/// caller's model fingerprint turns those recompiles into a lookup.
///
/// Keys are opaque `u64`s chosen by the caller; the cache trusts that
/// equal keys mean equivalent models (the service layer fingerprints
/// the canonical model JSON plus its amount overrides). Eviction is
/// least-recently-used over a bounded entry list — the working set is
/// a handful of circuits, so a linear scan beats hashing. Lookups and
/// insertions take a `Mutex`; the build itself runs outside the lock,
/// so concurrent misses on the same key may compile twice, with one
/// winner inserted (correct either way since both are equivalent).
#[derive(Debug)]
pub struct ModelCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: Vec<CacheEntry>,
    clock: u64,
}

#[derive(Debug)]
struct CacheEntry {
    key: u64,
    model: Arc<CompiledModel>,
    last_used: u64,
}

/// Default bound for [`ModelCache`]: comfortably above the catalog's
/// circuit count, small enough that retained banks stay negligible.
pub const DEFAULT_MODEL_CACHE_CAPACITY: usize = 32;

impl Default for ModelCache {
    fn default() -> Self {
        ModelCache::new(DEFAULT_MODEL_CACHE_CAPACITY)
    }
}

impl ModelCache {
    /// Creates a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ModelCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The process-wide shared cache (used by one-shot workers and the
    /// relay, where every connection thread sees the same models).
    pub fn shared() -> &'static ModelCache {
        static SHARED: OnceLock<ModelCache> = OnceLock::new();
        SHARED.get_or_init(ModelCache::default)
    }

    /// Number of cached models.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("model cache lock").entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, building and inserting on a miss. Returns the
    /// cached model and whether this call was a hit. Build errors are
    /// propagated and nothing is inserted — a failing key stays a miss.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns.
    pub fn get_or_insert<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<CompiledModel, E>,
    ) -> Result<(Arc<CompiledModel>, bool), E> {
        {
            let mut inner = self.inner.lock().expect("model cache lock");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) {
                entry.last_used = clock;
                return Ok((Arc::clone(&entry.model), true));
            }
        }
        // Compile outside the lock: model builds are milliseconds-long
        // and must not serialize unrelated lookups.
        let model = Arc::new(build()?);
        let mut inner = self.inner.lock().expect("model cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) {
            // Lost a build race; prefer the resident copy so every
            // holder shares one allocation. Still a miss: we compiled.
            entry.last_used = clock;
            return Ok((Arc::clone(&entry.model), false));
        }
        if inner.entries.len() >= self.capacity {
            let evict = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache at capacity is non-empty");
            inner.entries.swap_remove(evict);
        }
        inner.entries.push(CacheEntry {
            key,
            model: Arc::clone(&model),
            last_used: clock,
        });
        Ok((model, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glc_model::ModelBuilder;

    fn sample() -> CompiledModel {
        let model = ModelBuilder::new("m")
            .boundary_species("I", 100.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .parameter("k", 0.5)
            .reaction("r0", &["A"], &["B"], "k * A * I")
            .unwrap()
            .reaction("r1", &["B"], &[], "k * B")
            .unwrap()
            .reaction("r2", &[], &["A"], "k")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn layout_and_names() {
        let compiled = sample();
        assert_eq!(compiled.species_count(), 3);
        assert_eq!(compiled.reaction_count(), 3);
        assert_eq!(compiled.species_slot("A"), Some(1));
        assert_eq!(compiled.species_slot("nope"), None);
        assert_eq!(compiled.reaction_id(1), "r1");
        assert_eq!(compiled.id(), "m");
        let state = compiled.initial_state();
        assert_eq!(state.values, vec![100.0, 10.0, 0.0, 0.5]);
        assert_eq!(state.t, 0.0);
    }

    #[test]
    fn boundary_species_are_not_changed_by_apply() {
        // A reaction consuming the boundary species I must leave it intact.
        let model = ModelBuilder::new("m")
            .boundary_species("I", 5.0)
            .species("P", 0.0)
            .reaction("uptake", &["I"], &["P"], "I")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let mut state = compiled.initial_state();
        compiled.apply(0, &mut state);
        assert_eq!(state.values[0], 5.0, "boundary species clamped");
        assert_eq!(state.values[1], 1.0, "product still produced");
    }

    #[test]
    fn deltas_cancel_catalytic_species() {
        // A + A -> A + B style: net change of catalyst is zero and should
        // not appear in the delta list.
        let model = ModelBuilder::new("m")
            .species("A", 1.0)
            .species("B", 0.0)
            .reaction_full(
                "cat",
                vec![("A".into(), 1)],
                vec![("A".into(), 1), ("B".into(), 1)],
                vec![],
                "A",
            )
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        assert_eq!(compiled.delta(0), &[(1, 1)]);
    }

    #[test]
    fn dependency_graph_links_changed_slots_to_readers() {
        let compiled = sample();
        // r0 changes A (slot 1) and B (slot 2); r0 reads A, r1 reads B,
        // r2 reads nothing.
        assert_eq!(compiled.dependents(0), &[0, 1]);
        // r1 changes B only; r1 reads B.
        assert_eq!(compiled.dependents(1), &[1]);
        // r2 changes A; r0 reads A.
        assert_eq!(compiled.dependents(2), &[0]);
    }

    #[test]
    fn propensities_evaluate_against_state() {
        let compiled = sample();
        let state = compiled.initial_state();
        let mut stack = Vec::new();
        let a0 = compiled.propensity_with(0, &state, &mut stack).unwrap();
        assert_eq!(a0, 0.5 * 10.0 * 100.0);
        let mut all = Vec::new();
        let mut memo = EvalMemo::new();
        let total = compiled
            .propensities_into(&state, &mut all, &mut stack, &mut memo)
            .unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(total, a0 + 0.0 + 0.5);
    }

    #[test]
    fn sweep_errors_match_scalar_reference() {
        // The fast-validation path must report the same first-offender
        // error the scalar loop does, for both failure kinds.
        for (law, probe) in [("1 / X", "nonfinite"), ("X - 1", "negative")] {
            let model = ModelBuilder::new("m")
                .species("X", 0.0)
                .reaction("ok", &[], &["X"], "2.5")
                .unwrap()
                .reaction("bad", &[], &["X"], law)
                .unwrap()
                .build()
                .unwrap();
            let compiled = CompiledModel::new(&model).unwrap();
            let state = compiled.initial_state();
            let mut out = Vec::new();
            let mut stack = Vec::new();
            let mut memo = EvalMemo::new();
            let batched = compiled
                .propensities_into(&state, &mut out, &mut stack, &mut memo)
                .unwrap_err();
            let scalar = compiled
                .propensities_into_scalar(&state, &mut out, &mut stack)
                .unwrap_err();
            assert_eq!(format!("{batched:?}"), format!("{scalar:?}"), "{probe}");
        }
    }

    #[test]
    fn model_cache_hits_and_evicts() {
        let build = |id: &str| {
            let model = ModelBuilder::new(id)
                .species("X", 1.0)
                .reaction("deg", &["X"], &[], "X")
                .unwrap()
                .build()
                .unwrap();
            CompiledModel::new(&model).unwrap()
        };
        let cache = ModelCache::new(2);
        let (a, hit) = cache
            .get_or_insert(1, || Ok::<_, SimError>(build("a")))
            .unwrap();
        assert!(!hit);
        let (a2, hit) = cache
            .get_or_insert(1, || Ok::<_, SimError>(build("never")))
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &a2), "hit returns the resident copy");
        assert_eq!(a2.id(), "a");

        // Fill to capacity, touch key 1, insert a third: key 2 (least
        // recently used) must be the one evicted.
        cache
            .get_or_insert(2, || Ok::<_, SimError>(build("b")))
            .unwrap();
        cache
            .get_or_insert(1, || Ok::<_, SimError>(build("never")))
            .unwrap();
        cache
            .get_or_insert(3, || Ok::<_, SimError>(build("c")))
            .unwrap();
        assert_eq!(cache.len(), 2);
        let (_, hit) = cache
            .get_or_insert(1, || Ok::<_, SimError>(build("never")))
            .unwrap();
        assert!(hit, "recently touched key survives eviction");
        let (_, hit) = cache
            .get_or_insert(2, || Ok::<_, SimError>(build("b2")))
            .unwrap();
        assert!(!hit, "LRU key was evicted");
    }

    #[test]
    fn model_cache_does_not_retain_failed_builds() {
        let cache = ModelCache::new(4);
        let err = cache
            .get_or_insert(9, || Err::<CompiledModel, _>("compile failed"))
            .unwrap_err();
        assert_eq!(err, "compile failed");
        assert!(cache.is_empty());
    }

    #[test]
    fn non_finite_propensity_is_reported() {
        let model = ModelBuilder::new("m")
            .species("X", 0.0)
            .reaction("bad", &[], &["X"], "1 / X")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let state = compiled.initial_state();
        let mut stack = Vec::new();
        let err = compiled.propensity_with(0, &state, &mut stack).unwrap_err();
        assert!(matches!(err, SimError::NonFinitePropensity { .. }));
    }

    #[test]
    fn negative_propensity_is_reported() {
        let model = ModelBuilder::new("m")
            .species("X", 0.0)
            .reaction("bad", &[], &["X"], "X - 1")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let state = compiled.initial_state();
        let mut stack = Vec::new();
        let err = compiled.propensity_with(0, &state, &mut stack).unwrap_err();
        assert!(matches!(
            err,
            SimError::NegativePropensity { value, .. } if value == -1.0
        ));
    }

    #[test]
    fn state_accessors() {
        let compiled = sample();
        let mut state = compiled.initial_state();
        assert_eq!(state.species(1), 10.0);
        state.set_species(1, 25.0);
        assert_eq!(state.species(1), 25.0);
    }
}
