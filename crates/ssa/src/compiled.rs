//! Compilation of a [`glc_model::Model`] into a simulation-ready form.
//!
//! Compilation resolves every kinetic-law identifier to a slot in a flat
//! value vector (species first, parameters after), precomputes each
//! reaction's net state change (excluding boundary species, which are
//! clamped), and builds the reaction dependency graph used by the
//! Gibson–Bruck next-reaction method.

use crate::error::SimError;
use glc_model::expr::{CompiledExpr, KineticFormBank};
use glc_model::{Model, ModelError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Simulation state: current time plus the flat value vector.
///
/// `values[0..species_count]` are species amounts (kept integral by the
/// exact engines), followed by the constant parameter values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    /// Current simulation time.
    pub t: f64,
    /// Species amounts followed by parameter values.
    pub values: Vec<f64>,
}

impl State {
    /// Species amount at `slot`.
    pub fn species(&self, slot: usize) -> f64 {
        self.values[slot]
    }

    /// Sets the species amount at `slot` (used by input schedules to clamp
    /// boundary species).
    pub fn set_species(&mut self, slot: usize, amount: f64) {
        self.values[slot] = amount;
    }
}

/// A model compiled for simulation.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    id: String,
    species_names: Vec<String>,
    reaction_ids: Vec<String>,
    species_count: usize,
    kinetics: Vec<CompiledExpr>,
    /// Batched structure-of-arrays evaluator over `kinetics`; the hot
    /// propensity paths all go through it (bitwise identical to per-law
    /// evaluation).
    bank: KineticFormBank,
    deltas: Vec<Vec<(usize, i64)>>,
    dependents: Vec<Vec<usize>>,
    initial_values: Vec<f64>,
}

impl CompiledModel {
    /// Compiles `model`.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] if a kinetic law references an unknown
    /// identifier (cannot happen for a model that passed validation).
    pub fn new(model: &Model) -> Result<Self, ModelError> {
        let kinetics = model.compile_kinetics()?;
        let species_count = model.species().len();

        let mut deltas = Vec::with_capacity(model.reactions().len());
        for reaction in model.reactions() {
            let mut delta: Vec<(usize, i64)> = Vec::new();
            let mut touched: BTreeSet<&str> = BTreeSet::new();
            for (id, _) in reaction.reactants.iter().chain(&reaction.products) {
                touched.insert(id);
            }
            for id in touched {
                let slot = model
                    .species_id(id)
                    .expect("validated model has all species")
                    .0;
                if model.species()[slot].boundary {
                    // Boundary species are clamped: the reaction reads them
                    // but firing it must not change them.
                    continue;
                }
                let net = reaction.net_change(id);
                if net != 0 {
                    delta.push((slot, net));
                }
            }
            deltas.push(delta);
        }

        // dependents[r] = reactions whose propensity reads a slot that
        // firing r changes (the Gibson–Bruck dependency graph).
        let refs: Vec<BTreeSet<usize>> = kinetics
            .iter()
            .map(|k| k.referenced_slots().iter().copied().collect())
            .collect();
        let mut dependents = Vec::with_capacity(deltas.len());
        for delta in &deltas {
            let changed: BTreeSet<usize> = delta.iter().map(|&(slot, _)| slot).collect();
            let deps: Vec<usize> = refs
                .iter()
                .enumerate()
                .filter(|(_, r)| !changed.is_disjoint(r))
                .map(|(j, _)| j)
                .collect();
            dependents.push(deps);
        }

        let bank = KineticFormBank::new(&kinetics);
        Ok(CompiledModel {
            id: model.id().to_string(),
            species_names: model.species().iter().map(|s| s.id.clone()).collect(),
            reaction_ids: model.reactions().iter().map(|r| r.id.clone()).collect(),
            species_count,
            kinetics,
            bank,
            deltas,
            dependents,
            initial_values: model.initial_values(),
        })
    }

    /// Model identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of species (and length of the species prefix of the value
    /// vector).
    pub fn species_count(&self) -> usize {
        self.species_count
    }

    /// Number of reactions.
    pub fn reaction_count(&self) -> usize {
        self.kinetics.len()
    }

    /// Species names in slot order.
    pub fn species_names(&self) -> &[String] {
        &self.species_names
    }

    /// Slot of the species named `name`.
    pub fn species_slot(&self, name: &str) -> Option<usize> {
        self.species_names.iter().position(|n| n == name)
    }

    /// Identifier of reaction `r`.
    pub fn reaction_id(&self, r: usize) -> &str {
        &self.reaction_ids[r]
    }

    /// Fresh state at `t = 0` with initial amounts and parameter values.
    pub fn initial_state(&self) -> State {
        State {
            t: 0.0,
            values: self.initial_values.clone(),
        }
    }

    /// Net state change of reaction `r` as `(slot, delta)` pairs
    /// (boundary species already excluded).
    pub fn delta(&self, r: usize) -> &[(usize, i64)] {
        &self.deltas[r]
    }

    /// Reactions whose propensity may change when reaction `r` fires.
    pub fn dependents(&self, r: usize) -> &[usize] {
        &self.dependents[r]
    }

    /// Evaluates the propensity of reaction `r`, reusing `stack` as
    /// scratch space.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NegativePropensity`] or
    /// [`SimError::NonFinitePropensity`] for invalid values.
    pub fn propensity_with(
        &self,
        r: usize,
        state: &State,
        stack: &mut Vec<f64>,
    ) -> Result<f64, SimError> {
        // The bank reads the law out of its structure-of-arrays lane
        // (mass-action and Hill shapes with zero dispatch; irregular
        // laws through the retained `CompiledExpr`, which falls back to
        // the postfix VM on `stack`). All paths are bitwise identical,
        // so this is a pure constant-factor win.
        let value = self.bank.eval_one(r, &state.values, stack);
        self.check_propensity(r, value, state.t)
    }

    /// Validates one evaluated propensity.
    fn check_propensity(&self, r: usize, value: f64, t: f64) -> Result<f64, SimError> {
        if !value.is_finite() {
            return Err(SimError::NonFinitePropensity {
                reaction: self.reaction_ids[r].clone(),
                time: t,
            });
        }
        if value < 0.0 {
            return Err(SimError::NegativePropensity {
                reaction: self.reaction_ids[r].clone(),
                time: t,
                value,
            });
        }
        Ok(value)
    }

    /// Evaluates all propensities into `out` (resized as needed) in one
    /// batched sweep through the [`KineticFormBank`].
    ///
    /// The returned total is the sequential sum in reaction order, and
    /// the first invalid propensity (in reaction order) is the error
    /// reported — both exactly as the scalar loop behaved.
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::propensity_with`].
    pub fn propensities_into(
        &self,
        state: &State,
        out: &mut Vec<f64>,
        stack: &mut Vec<f64>,
    ) -> Result<f64, SimError> {
        self.propensities_at(&state.values, state.t, out, stack)
    }

    /// Like [`CompiledModel::propensities_into`] but against a raw value
    /// vector (`t` only labels errors). This is the full-sweep primitive
    /// behind tau-leap/Langevin rebuilds and the ODE derivative.
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::propensity_with`].
    pub fn propensities_at(
        &self,
        values: &[f64],
        t: f64,
        out: &mut Vec<f64>,
        stack: &mut Vec<f64>,
    ) -> Result<f64, SimError> {
        out.resize(self.kinetics.len(), 0.0);
        self.bank.eval_all(values, out, stack);
        let mut total = 0.0;
        for (r, &value) in out.iter().enumerate() {
            total += self.check_propensity(r, value, t)?;
        }
        Ok(total)
    }

    /// The scalar reference sweep: evaluates every law one at a time via
    /// [`CompiledExpr::eval_fast`], bypassing the bank's SoA layout.
    ///
    /// Kept as the baseline the batched path is benchmarked and
    /// property-tested against; results are bitwise identical to
    /// [`CompiledModel::propensities_into`].
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::propensity_with`].
    pub fn propensities_into_scalar(
        &self,
        state: &State,
        out: &mut Vec<f64>,
        stack: &mut Vec<f64>,
    ) -> Result<f64, SimError> {
        out.resize(self.kinetics.len(), 0.0);
        let mut total = 0.0;
        for (r, slot) in out.iter_mut().enumerate() {
            let value = self.kinetics[r].eval_fast(&state.values, stack);
            *slot = self.check_propensity(r, value, state.t)?;
            total += *slot;
        }
        Ok(total)
    }

    /// The batched evaluator over this model's kinetic laws.
    pub fn bank(&self) -> &KineticFormBank {
        &self.bank
    }

    /// Applies the state change of firing reaction `r` once.
    pub fn apply(&self, r: usize, state: &mut State) {
        for &(slot, delta) in &self.deltas[r] {
            let updated = state.values[slot] + delta as f64;
            debug_assert!(
                updated >= 0.0,
                "species `{}` driven negative by reaction `{}`",
                self.species_names[slot],
                self.reaction_ids[r]
            );
            state.values[slot] = updated.max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glc_model::ModelBuilder;

    fn sample() -> CompiledModel {
        let model = ModelBuilder::new("m")
            .boundary_species("I", 100.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .parameter("k", 0.5)
            .reaction("r0", &["A"], &["B"], "k * A * I")
            .unwrap()
            .reaction("r1", &["B"], &[], "k * B")
            .unwrap()
            .reaction("r2", &[], &["A"], "k")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn layout_and_names() {
        let compiled = sample();
        assert_eq!(compiled.species_count(), 3);
        assert_eq!(compiled.reaction_count(), 3);
        assert_eq!(compiled.species_slot("A"), Some(1));
        assert_eq!(compiled.species_slot("nope"), None);
        assert_eq!(compiled.reaction_id(1), "r1");
        assert_eq!(compiled.id(), "m");
        let state = compiled.initial_state();
        assert_eq!(state.values, vec![100.0, 10.0, 0.0, 0.5]);
        assert_eq!(state.t, 0.0);
    }

    #[test]
    fn boundary_species_are_not_changed_by_apply() {
        // A reaction consuming the boundary species I must leave it intact.
        let model = ModelBuilder::new("m")
            .boundary_species("I", 5.0)
            .species("P", 0.0)
            .reaction("uptake", &["I"], &["P"], "I")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let mut state = compiled.initial_state();
        compiled.apply(0, &mut state);
        assert_eq!(state.values[0], 5.0, "boundary species clamped");
        assert_eq!(state.values[1], 1.0, "product still produced");
    }

    #[test]
    fn deltas_cancel_catalytic_species() {
        // A + A -> A + B style: net change of catalyst is zero and should
        // not appear in the delta list.
        let model = ModelBuilder::new("m")
            .species("A", 1.0)
            .species("B", 0.0)
            .reaction_full(
                "cat",
                vec![("A".into(), 1)],
                vec![("A".into(), 1), ("B".into(), 1)],
                vec![],
                "A",
            )
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        assert_eq!(compiled.delta(0), &[(1, 1)]);
    }

    #[test]
    fn dependency_graph_links_changed_slots_to_readers() {
        let compiled = sample();
        // r0 changes A (slot 1) and B (slot 2); r0 reads A, r1 reads B,
        // r2 reads nothing.
        assert_eq!(compiled.dependents(0), &[0, 1]);
        // r1 changes B only; r1 reads B.
        assert_eq!(compiled.dependents(1), &[1]);
        // r2 changes A; r0 reads A.
        assert_eq!(compiled.dependents(2), &[0]);
    }

    #[test]
    fn propensities_evaluate_against_state() {
        let compiled = sample();
        let state = compiled.initial_state();
        let mut stack = Vec::new();
        let a0 = compiled.propensity_with(0, &state, &mut stack).unwrap();
        assert_eq!(a0, 0.5 * 10.0 * 100.0);
        let mut all = Vec::new();
        let total = compiled
            .propensities_into(&state, &mut all, &mut stack)
            .unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(total, a0 + 0.0 + 0.5);
    }

    #[test]
    fn non_finite_propensity_is_reported() {
        let model = ModelBuilder::new("m")
            .species("X", 0.0)
            .reaction("bad", &[], &["X"], "1 / X")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let state = compiled.initial_state();
        let mut stack = Vec::new();
        let err = compiled.propensity_with(0, &state, &mut stack).unwrap_err();
        assert!(matches!(err, SimError::NonFinitePropensity { .. }));
    }

    #[test]
    fn negative_propensity_is_reported() {
        let model = ModelBuilder::new("m")
            .species("X", 0.0)
            .reaction("bad", &[], &["X"], "X - 1")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let state = compiled.initial_state();
        let mut stack = Vec::new();
        let err = compiled.propensity_with(0, &state, &mut stack).unwrap_err();
        assert!(matches!(
            err,
            SimError::NegativePropensity { value, .. } if value == -1.0
        ));
    }

    #[test]
    fn state_accessors() {
        let compiled = sample();
        let mut state = compiled.initial_state();
        assert_eq!(state.species(1), 10.0);
        state.set_species(1, 25.0);
        assert_eq!(state.species(1), 25.0);
    }
}
