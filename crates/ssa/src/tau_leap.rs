//! Fixed-step tau-leaping (approximate SSA).
//!
//! Advances time in fixed increments `tau`, firing each reaction a
//! Poisson-distributed number of times with mean `a_j * tau`. Much faster
//! than exact methods on stiff models at the cost of accuracy; provided
//! for the engine-ablation benchmark. Species counts are clamped at zero
//! (the standard non-negativity fix-up for plain tau-leaping).

use crate::compiled::{CompiledModel, State};
use crate::engine::{Engine, Observer, DEFAULT_STEP_LIMIT};
use crate::error::SimError;
use crate::propensity::PropensitySet;
use rand::rngs::StdRng;
use rand::Rng;

/// The tau-leaping engine.
#[derive(Debug, Clone)]
pub struct TauLeap {
    tau: f64,
    step_limit: u64,
    propensities: PropensitySet,
}

impl TauLeap {
    /// Creates a tau-leaping engine with the given fixed leap length.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `tau` is not strictly
    /// positive and finite.
    pub fn new(tau: f64) -> Result<Self, SimError> {
        if !(tau.is_finite() && tau > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "leap length must be positive and finite, got {tau}"
            )));
        }
        Ok(TauLeap {
            tau,
            step_limit: DEFAULT_STEP_LIMIT,
            propensities: PropensitySet::new(),
        })
    }

    /// The fixed leap length.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

/// Samples `Poisson(lambda)`.
///
/// Knuth's product method for small means; for large means a rounded
/// normal approximation `N(lambda, lambda)`, which is accurate to well
/// under a percent for `lambda > 30` — fine for an approximate engine.
pub(crate) fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let threshold = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > threshold {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // Box–Muller.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let sample = lambda + lambda.sqrt() * z;
        sample.round().max(0.0) as u64
    }
}

impl Engine for TauLeap {
    fn name(&self) -> &'static str {
        "tau-leap"
    }

    fn step_limit(&self) -> u64 {
        self.step_limit
    }

    fn run(
        &mut self,
        model: &CompiledModel,
        state: &mut State,
        t_end: f64,
        rng: &mut StdRng,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError> {
        if t_end < state.t {
            return Err(SimError::InvalidConfig(format!(
                "t_end {t_end} is before current time {}",
                state.t
            )));
        }
        let mut steps: u64 = 0;
        while state.t < t_end {
            let t_next = (state.t + self.tau).min(t_end);
            // A leap fires many reactions at once, so the union of their
            // dependency sets approaches all of R anyway: a full rebuild
            // — one batched structure-of-arrays sweep through the
            // model's kinetic-form bank — is the right granularity. The
            // tree maintenance inside `rebuild` (~2R adds) is noise next
            // to the R kinetic-law evaluations and R Poisson draws each
            // leap already pays; sharing `PropensitySet` keeps one
            // propensity code path across engines.
            self.propensities.rebuild(model, state)?;
            observer.on_advance(t_next, &state.values);
            let dt = t_next - state.t;
            for r in 0..model.reaction_count() {
                let firings = poisson(rng, self.propensities.propensity(r) * dt);
                if firings == 0 {
                    continue;
                }
                // Bulk update: equivalent to applying the reaction
                // `firings` times, in O(species touched) instead of
                // O(firings).
                for &(slot, delta) in model.delta(r) {
                    state.values[slot] += delta as f64 * firings as f64;
                }
            }
            // Clamp any species driven negative by the approximation.
            for slot in 0..model.species_count() {
                if state.values[slot] < 0.0 {
                    state.values[slot] = 0.0;
                }
            }
            state.t = t_next;
            steps += 1;
            if steps >= self.step_limit {
                return Err(SimError::StepLimitExceeded {
                    limit: self.step_limit,
                    time: state.t,
                });
            }
        }
        state.t = t_end;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullObserver;
    use glc_model::ModelBuilder;
    use rand::SeedableRng;

    fn birth_death() -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", 0.0)
            .parameter("kp", 5.0)
            .parameter("kd", 0.1)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn rejects_bad_tau() {
        assert!(TauLeap::new(0.0).is_err());
        assert!(TauLeap::new(-1.0).is_err());
        assert!(TauLeap::new(f64::NAN).is_err());
        assert!(TauLeap::new(f64::INFINITY).is_err());
        assert_eq!(TauLeap::new(0.5).unwrap().tau(), 0.5);
    }

    #[test]
    fn approximates_stationary_mean() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(17);
        let mut engine = TauLeap::new(0.1).unwrap();
        engine
            .run(&model, &mut state, 200.0, &mut rng, &mut NullObserver)
            .unwrap();
        let mut sum = 0.0;
        for _ in 0..1500 {
            let t_next = state.t + 1.0;
            engine
                .run(&model, &mut state, t_next, &mut rng, &mut NullObserver)
                .unwrap();
            sum += state.values[0];
        }
        let mean = sum / 1500.0;
        assert!(
            (mean - 50.0).abs() < 5.0,
            "empirical mean {mean} too far from 50"
        );
    }

    #[test]
    fn time_lands_exactly_on_horizon() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        TauLeap::new(0.3)
            .unwrap()
            .run(&model, &mut state, 1.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 1.0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let lambda = 3.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let lambda = 250.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn species_never_go_negative() {
        let model = birth_death();
        let mut state = model.initial_state();
        state.set_species(0, 5.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut engine = TauLeap::new(2.0).unwrap(); // coarse leap on purpose
        for _ in 0..200 {
            let t_next = state.t + 2.0;
            engine
                .run(&model, &mut state, t_next, &mut rng, &mut NullObserver)
                .unwrap();
            assert!(state.values[0] >= 0.0);
        }
    }
}
