//! Fixed-step tau-leaping (approximate SSA).
//!
//! Advances time in fixed increments `tau`, firing each reaction a
//! Poisson-distributed number of times with mean `a_j * tau`. Much faster
//! than exact methods on stiff models at the cost of accuracy; provided
//! for the engine-ablation benchmark. Species counts are clamped at zero
//! (the standard non-negativity fix-up for plain tau-leaping).

use crate::compiled::{CompiledModel, State};
use crate::draws::{standard_normal, NormalCarry};
use crate::engine::{Engine, Observer, DEFAULT_STEP_LIMIT};
use crate::error::SimError;
use glc_model::expr::EvalMemo;
use rand::rngs::StdRng;
use rand::Rng;

/// The tau-leaping engine.
///
/// Unlike the exact engines, a leap touches every reaction every step,
/// so there is nothing for the incremental `PropensitySet`/sum-tree
/// machinery to save: the engine keeps a flat propensity slice filled
/// by one batched bank sweep per leap, and draws firings in a single
/// chunked loop over precomputed means. All per-step scratch (the
/// slices, the VM stack, the Hill memo, the per-reaction Poisson
/// threshold memo) lives on the engine, so steady-state stepping
/// allocates nothing.
#[derive(Debug, Clone)]
pub struct TauLeap {
    tau: f64,
    step_limit: u64,
    /// Per-reaction propensities, rebuilt each leap by one bank sweep.
    propensities: Vec<f64>,
    /// Operand stack for kinetic laws that fall back to the postfix VM.
    stack: Vec<f64>,
    /// Hill-response memo threaded through the bank sweep.
    memo: EvalMemo,
    /// Per-reaction Poisson means `a_r * dt` for the current leap.
    lambdas: Vec<f64>,
    /// Per-reaction `(lambda bits, exp(-lambda))` memo for the Knuth
    /// sampler. The mapping is model-independent (a pure function of
    /// the bits), so entries surviving a model switch are still exact.
    thresholds: Vec<(u64, f64)>,
    /// Carry slot of the paired Box–Muller scheme used by the large-λ
    /// normal approximation (reset at every run start).
    carry: NormalCarry,
}

impl TauLeap {
    /// Creates a tau-leaping engine with the given fixed leap length.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `tau` is not strictly
    /// positive and finite.
    pub fn new(tau: f64) -> Result<Self, SimError> {
        if !(tau.is_finite() && tau > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "leap length must be positive and finite, got {tau}"
            )));
        }
        Ok(TauLeap {
            tau,
            step_limit: DEFAULT_STEP_LIMIT,
            propensities: Vec::new(),
            stack: Vec::new(),
            memo: EvalMemo::new(),
            lambdas: Vec::new(),
            thresholds: Vec::new(),
            carry: NormalCarry::new(),
        })
    }

    /// The fixed leap length.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

/// Samples `Poisson(lambda)`.
///
/// Knuth's product method for small means; for large means a rounded
/// normal approximation `N(lambda, lambda)`, which is accurate to well
/// under a percent for `lambda > 30` — fine for an approximate engine.
/// The normal branch draws through the paired Box–Muller scheme
/// ([`standard_normal`]): `carry` holds the sine half of a pair between
/// large-λ draws, so consecutive normal-branch samples cost one
/// uniform pair per *two* samples. Knuth-branch draws consume raw
/// uniforms and leave the carry untouched, so any interleaving of
/// branches is stream-deterministic.
///
/// Public so benches and the bitwise-equivalence tests can replay the
/// engine's exact draw sequence against a reference loop.
pub fn poisson(rng: &mut StdRng, lambda: f64, carry: &mut NormalCarry) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let threshold = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > threshold {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let z = standard_normal(rng, carry);
        let sample = lambda + lambda.sqrt() * z;
        sample.round().max(0.0) as u64
    }
}

/// [`poisson`] with the Knuth threshold `exp(-lambda)` memoized per
/// reaction: a leap re-presents the same mean whenever the reaction's
/// propensity did not change, which elides the `exp` on the hot path.
/// `exp` is a pure function of the operand bits and the memo is keyed
/// on exactly those bits, so draws — and the RNG stream — are bitwise
/// identical to [`poisson`]. The sentinel `u64::MAX` (a NaN pattern)
/// can never collide: a NaN mean fails `lambda < 30.0` and skips the
/// memo entirely.
#[inline]
fn poisson_memo(
    rng: &mut StdRng,
    lambda: f64,
    memo: &mut (u64, f64),
    carry: &mut NormalCarry,
) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let bits = lambda.to_bits();
        let threshold = if memo.0 == bits {
            memo.1
        } else {
            let threshold = (-lambda).exp();
            *memo = (bits, threshold);
            threshold
        };
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > threshold {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let z = standard_normal(rng, carry);
        let sample = lambda + lambda.sqrt() * z;
        sample.round().max(0.0) as u64
    }
}

impl Engine for TauLeap {
    fn name(&self) -> &'static str {
        "tau-leap"
    }

    fn step_limit(&self) -> u64 {
        self.step_limit
    }

    fn run(
        &mut self,
        model: &CompiledModel,
        state: &mut State,
        t_end: f64,
        rng: &mut StdRng,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError> {
        if t_end < state.t {
            return Err(SimError::InvalidConfig(format!(
                "t_end {t_end} is before current time {}",
                state.t
            )));
        }
        let reactions = model.reaction_count();
        self.lambdas.resize(reactions, 0.0);
        self.thresholds.resize(reactions, (u64::MAX, 0.0));
        // Engines are stateless between run calls: discard any sine
        // half a previous run's large-λ branch left behind.
        self.carry.reset();
        let mut steps: u64 = 0;
        while state.t < t_end {
            let t_next = (state.t + self.tau).min(t_end);
            // A leap fires many reactions at once, so the union of their
            // dependency sets approaches all of R anyway: one batched
            // structure-of-arrays sweep through the model's
            // kinetic-form bank is the right granularity, and no
            // selection happens, so no sum tree is maintained.
            model.propensities_into(
                state,
                &mut self.propensities,
                &mut self.stack,
                &mut self.memo,
            )?;
            observer.on_advance(t_next, &state.values);
            let dt = t_next - state.t;
            // Precompute the Poisson means so the draw loop runs over
            // one contiguous slice (dt is leap-constant; only the final
            // clipped leap changes it).
            for (lambda, &a) in self.lambdas.iter_mut().zip(&self.propensities) {
                *lambda = a * dt;
            }
            for r in 0..reactions {
                let firings = poisson_memo(
                    rng,
                    self.lambdas[r],
                    &mut self.thresholds[r],
                    &mut self.carry,
                );
                if firings == 0 {
                    continue;
                }
                // Bulk update: equivalent to applying the reaction
                // `firings` times, in O(species touched) instead of
                // O(firings).
                for &(slot, delta) in model.delta(r) {
                    state.values[slot] += delta as f64 * firings as f64;
                }
            }
            // Clamp any species driven negative by the approximation.
            for slot in 0..model.species_count() {
                if state.values[slot] < 0.0 {
                    state.values[slot] = 0.0;
                }
            }
            state.t = t_next;
            steps += 1;
            if steps >= self.step_limit {
                return Err(SimError::StepLimitExceeded {
                    limit: self.step_limit,
                    time: state.t,
                });
            }
        }
        state.t = t_end;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullObserver;
    use glc_model::ModelBuilder;
    use rand::SeedableRng;

    fn birth_death() -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", 0.0)
            .parameter("kp", 5.0)
            .parameter("kd", 0.1)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn rejects_bad_tau() {
        assert!(TauLeap::new(0.0).is_err());
        assert!(TauLeap::new(-1.0).is_err());
        assert!(TauLeap::new(f64::NAN).is_err());
        assert!(TauLeap::new(f64::INFINITY).is_err());
        assert_eq!(TauLeap::new(0.5).unwrap().tau(), 0.5);
    }

    #[test]
    fn approximates_stationary_mean() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(17);
        let mut engine = TauLeap::new(0.1).unwrap();
        engine
            .run(&model, &mut state, 200.0, &mut rng, &mut NullObserver)
            .unwrap();
        let mut sum = 0.0;
        for _ in 0..1500 {
            let t_next = state.t + 1.0;
            engine
                .run(&model, &mut state, t_next, &mut rng, &mut NullObserver)
                .unwrap();
            sum += state.values[0];
        }
        let mean = sum / 1500.0;
        assert!(
            (mean - 50.0).abs() < 5.0,
            "empirical mean {mean} too far from 50"
        );
    }

    #[test]
    fn time_lands_exactly_on_horizon() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        TauLeap::new(0.3)
            .unwrap()
            .run(&model, &mut state, 1.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 1.0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut carry = NormalCarry::new();
        let lambda = 3.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda, &mut carry)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut carry = NormalCarry::new();
        let lambda = 250.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda, &mut carry)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_pairs_draws() {
        // Two consecutive large-λ draws share one Box–Muller pair: the
        // second must come from the carry, not fresh uniforms.
        let mut rng = StdRng::seed_from_u64(8);
        let mut carry = NormalCarry::new();
        poisson(&mut rng, 100.0, &mut carry);
        assert!(carry.0.is_some(), "sine half must be parked");
        let probe = rng.clone();
        poisson(&mut rng, 40.0, &mut carry);
        assert!(carry.0.is_none());
        assert_eq!(rng, probe, "second draw must not consume uniforms");
    }

    #[test]
    fn poisson_memo_matches_poisson_bitwise() {
        let mut plain_rng = StdRng::seed_from_u64(11);
        let mut memo_rng = StdRng::seed_from_u64(11);
        let mut memo = (u64::MAX, 0.0);
        let mut plain_carry = NormalCarry::new();
        let mut memo_carry = NormalCarry::new();
        // Repeats exercise memo hits; 0.0 and 250.0 the memo-free
        // paths; the interleaved large λs the carry hand-off between
        // normal-branch draws with Knuth draws in between.
        for lambda in [0.5, 0.5, 3.0, 250.0, 0.5, 0.0, 250.0, 3.0, 31.0, 3.0, 29.9] {
            assert_eq!(
                poisson(&mut plain_rng, lambda, &mut plain_carry),
                poisson_memo(&mut memo_rng, lambda, &mut memo, &mut memo_carry),
                "lambda {lambda}"
            );
        }
        assert_eq!(plain_carry, memo_carry);
        // Both samplers must have consumed the identical draw stream.
        assert_eq!(plain_rng.gen::<u64>(), memo_rng.gen::<u64>());
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut carry = NormalCarry::new();
        assert_eq!(poisson(&mut rng, 0.0, &mut carry), 0);
        assert_eq!(poisson(&mut rng, -1.0, &mut carry), 0);
    }

    #[test]
    fn species_never_go_negative() {
        let model = birth_death();
        let mut state = model.initial_state();
        state.set_species(0, 5.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut engine = TauLeap::new(2.0).unwrap(); // coarse leap on purpose
        for _ in 0..200 {
            let t_next = state.t + 2.0;
            engine
                .run(&model, &mut state, t_next, &mut rng, &mut NullObserver)
                .unwrap();
            assert!(state.values[0] >= 0.0);
        }
    }
}
