//! Incremental propensity maintenance for the SSA hot loop.
//!
//! Every exact SSA step needs the current propensity of each reaction,
//! their total, and (for the direct method) an inverse-CDF selection.
//! Recomputing all `R` kinetic laws per firing — as the original
//! engines did — costs O(R·|expr|) even though a firing only changes a
//! few species. [`PropensitySet`] instead:
//!
//! * caches the propensity of every reaction;
//! * after reaction `r` fires, re-evaluates **only**
//!   [`CompiledModel::dependents`]`(r)` — the Gibson–Bruck dependency
//!   set: reactions whose kinetic law reads a slot that firing `r`
//!   changed;
//! * maintains the values as leaves of a [`SumTree`], so the total is
//!   the root and selection is an O(log R) descent instead of an O(R)
//!   scan.
//!
//! # Update/selection invariants
//!
//! 1. **Cache coherence**: after [`PropensitySet::rebuild`] and any
//!    sequence of [`PropensitySet::update_after`] calls that mirrors
//!    the actual firings applied to `state`, every cached propensity
//!    equals a fresh evaluation of its kinetic law against `state` —
//!    bitwise. This holds because the dependency graph is sound (a
//!    reaction not in `dependents(r)` reads no slot that `r` writes,
//!    and kinetic laws are pure functions of the value vector) and
//!    evaluation itself is deterministic.
//! 2. **History independence**: the sum tree recomputes ancestors as
//!    `left + right` on every leaf write, so tree state is a pure
//!    function of the cached leaves. Together with (1): an engine that
//!    rebuilds from scratch every step and one that updates
//!    incrementally walk through bitwise-identical totals and
//!    selections, and hence — for a fixed seed — produce identical
//!    trajectories. `Direct::with_full_recompute` exists precisely to
//!    exercise this equivalence (and to serve as the benchmark
//!    baseline).
//! 3. **External edits require a rebuild**: callers that mutate state
//!    outside [`CompiledModel::apply`] (input clamping between run
//!    segments) must call `rebuild`; engines do this at the top of
//!    every `run`, preserving the documented "stateless between runs"
//!    engine contract.

use crate::compiled::{CompiledModel, State};
use crate::error::SimError;
use crate::sum_tree::SumTree;
use glc_model::expr::EvalMemo;

/// Cached per-reaction propensities with an incremental sum tree.
///
/// Owned by an engine as scratch state; resized to the model on every
/// [`PropensitySet::rebuild`], so one set can serve models of any size
/// over the engine's lifetime.
#[derive(Debug, Clone, Default)]
pub struct PropensitySet {
    tree: SumTree,
    /// Scratch for full recomputes (kept to avoid per-rebuild allocs).
    scratch: Vec<f64>,
    /// Operand stack for kinetic laws that fall back to the postfix VM.
    stack: Vec<f64>,
    /// Hill-response memo threaded through full sweeps (see
    /// [`EvalMemo`]; rebinds itself if the model changes).
    memo: EvalMemo,
}

impl PropensitySet {
    /// Creates an empty set; size is established by `rebuild`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked reactions.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the set tracks no reactions.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Fully re-evaluates every propensity against `state` — one batched
    /// structure-of-arrays sweep through the model's
    /// [`glc_model::expr::KineticFormBank`] — and rebuilds the tree.
    /// Call at the start of every engine run and whenever `state` was
    /// edited outside [`CompiledModel::apply`].
    ///
    /// # Errors
    ///
    /// Propagates the first invalid propensity in reaction order
    /// ([`SimError::NegativePropensity`] /
    /// [`SimError::NonFinitePropensity`]), like the scalar loop it
    /// replaces.
    pub fn rebuild(&mut self, model: &CompiledModel, state: &State) -> Result<(), SimError> {
        let reactions = model.reaction_count();
        if self.tree.len() != reactions {
            self.tree.reset(reactions);
        }
        model.propensities_into(state, &mut self.scratch, &mut self.stack, &mut self.memo)?;
        self.tree.fill_from(&self.scratch);
        Ok(())
    }

    /// Re-evaluates the propensities of `dependents(fired)` after
    /// reaction `fired` was applied to `state`. All other cached values
    /// are untouched — their kinetic laws read no slot the firing
    /// changed. Each dependent is read out of its bank lane
    /// ([`CompiledModel::propensity_with`]); dependent sets are small
    /// and scattered, so per-lane reads beat re-gathering a chunk.
    ///
    /// # Errors
    ///
    /// See [`PropensitySet::rebuild`].
    #[inline]
    pub fn update_after(
        &mut self,
        model: &CompiledModel,
        state: &State,
        fired: usize,
    ) -> Result<(), SimError> {
        self.update_after_with(model, state, fired, |_, _, _| ())
    }

    /// Like [`PropensitySet::update_after`], but reports each dependent's
    /// `(reaction, old propensity, new propensity)` to `visit` as it is
    /// re-evaluated — the hook the next-reaction method uses to rescale
    /// its tentative firing times off the shared cache without
    /// evaluating any law twice.
    ///
    /// `visit` runs in `dependents(fired)` order, after the cache slot
    /// has been updated.
    ///
    /// # Errors
    ///
    /// See [`PropensitySet::rebuild`]. On error, dependents earlier in
    /// the order have already been updated and visited (the run is
    /// abandoned anyway — engines rebuild per run).
    #[inline]
    pub fn update_after_with(
        &mut self,
        model: &CompiledModel,
        state: &State,
        fired: usize,
        mut visit: impl FnMut(usize, f64, f64),
    ) -> Result<(), SimError> {
        for &dep in model.dependents(fired) {
            let old = self.tree.get(dep);
            let value = model.propensity_with(dep, state, &mut self.stack)?;
            self.tree.set(dep, value);
            visit(dep, old, value);
        }
        Ok(())
    }

    /// Total propensity `a0` (the sum-tree root).
    #[inline]
    pub fn total(&self) -> f64 {
        self.tree.total()
    }

    /// Cached propensity of reaction `r`.
    #[inline]
    pub fn propensity(&self, r: usize) -> f64 {
        self.tree.get(r)
    }

    /// All cached propensities, in reaction order.
    pub fn as_slice(&self) -> &[f64] {
        self.tree.leaves()
    }

    /// Selects the reaction hit by `target ∈ [0, total())` under the
    /// inverse-CDF walk, in O(log R).
    #[inline]
    pub fn select(&self, target: f64) -> usize {
        self.tree.select(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glc_model::ModelBuilder;

    fn three_reaction_model() -> CompiledModel {
        let model = ModelBuilder::new("m")
            .species("A", 10.0)
            .species("B", 0.0)
            .parameter("k", 0.5)
            .reaction("a_to_b", &["A"], &["B"], "k * A")
            .unwrap()
            .reaction("b_gone", &["B"], &[], "k * B")
            .unwrap()
            .reaction("a_in", &[], &["A"], "k")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn rebuild_matches_direct_evaluation() {
        let model = three_reaction_model();
        let state = model.initial_state();
        let mut set = PropensitySet::new();
        set.rebuild(&model, &state).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.as_slice(), &[5.0, 0.0, 0.5]);
        assert_eq!(set.total(), 5.5);
        assert_eq!(set.propensity(2), 0.5);
    }

    #[test]
    fn incremental_updates_track_firings_bitwise() {
        let model = three_reaction_model();
        let mut state = model.initial_state();
        let mut incremental = PropensitySet::new();
        incremental.rebuild(&model, &state).unwrap();

        let mut reference = PropensitySet::new();
        for fired in [0usize, 0, 1, 2, 0, 1, 1] {
            model.apply(fired, &mut state);
            incremental.update_after(&model, &state, fired).unwrap();
            reference.rebuild(&model, &state).unwrap();
            for r in 0..model.reaction_count() {
                assert_eq!(
                    incremental.propensity(r).to_bits(),
                    reference.propensity(r).to_bits(),
                    "reaction {r} after firing {fired}"
                );
            }
            assert_eq!(incremental.total().to_bits(), reference.total().to_bits());
        }
    }

    #[test]
    fn selection_covers_the_cdf() {
        let model = three_reaction_model();
        let state = model.initial_state();
        let mut set = PropensitySet::new();
        set.rebuild(&model, &state).unwrap();
        // Propensities are [5.0, 0.0, 0.5].
        assert_eq!(set.select(0.0), 0);
        assert_eq!(set.select(4.999), 0);
        assert_eq!(set.select(5.0), 2); // skips the zero-propensity leaf
        assert_eq!(set.select(5.4), 2);
    }

    #[test]
    fn invalid_propensities_propagate() {
        let model = ModelBuilder::new("bad")
            .species("X", 0.0)
            .reaction("boom", &[], &["X"], "1 / X")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let state = compiled.initial_state();
        let mut set = PropensitySet::new();
        let err = set.rebuild(&compiled, &state).unwrap_err();
        assert!(matches!(err, SimError::NonFinitePropensity { .. }));
    }

    #[test]
    fn rebuild_adapts_to_model_size() {
        let model = three_reaction_model();
        let state = model.initial_state();
        let mut set = PropensitySet::new();
        set.rebuild(&model, &state).unwrap();
        assert_eq!(set.len(), 3);

        let small = ModelBuilder::new("s")
            .species("X", 1.0)
            .reaction("deg", &["X"], &[], "X")
            .unwrap()
            .build()
            .unwrap();
        let small = CompiledModel::new(&small).unwrap();
        set.rebuild(&small, &small.initial_state()).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.total(), 1.0);
    }
}
