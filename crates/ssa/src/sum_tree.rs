//! Flat binary sum tree over per-reaction propensities.
//!
//! The exact SSA needs two aggregate operations per step: the total
//! propensity `a0 = Σ a_j` (for the waiting-time draw) and the inverse
//! CDF lookup "first `j` with `Σ_{i<=j} a_i > target`" (for reaction
//! selection). A linear scan pays O(R) for the second; this tree pays
//! O(log R) for both update and selection, with the total read off the
//! root for free.
//!
//! # Layout
//!
//! Standard implicit binary heap layout in one `Vec<f64>`: node `i` has
//! children `2i` and `2i + 1`, leaves occupy `cap .. cap + len` where
//! `cap` is `len` rounded up to a power of two (unused leaves stay
//! `0.0` and are unreachable by selection as long as values are
//! non-negative).
//!
//! # Invariants
//!
//! 1. **Parents are sums of children**: after every mutation each
//!    internal node is *recomputed* as `left + right` — never adjusted
//!    by a delta. Node values are therefore a pure function of the
//!    current leaf values, so a tree maintained incrementally through
//!    any sequence of [`SumTree::set`] calls is **bitwise identical**
//!    to one rebuilt from scratch with [`SumTree::fill_from`] over the
//!    same leaves. The incremental propensity engine relies on this to
//!    keep incremental and full-recompute trajectories identical.
//! 2. **Selection follows the CDF walk**: [`SumTree::select`] descends
//!    from the root, going left when `target` is below the left
//!    subtree's sum and subtracting it otherwise — the tree-shaped
//!    equivalent of the classic linear scan. For `target` in
//!    `[0, total)` and non-negative leaves it returns a leaf index with
//!    positive prefix mass; fp round-off at the very top of the range
//!    is clamped to the last live leaf, mirroring the scan's fallback.

/// A fixed-size sum tree over `f64` values (non-negative by contract of
/// the propensity use; `set` itself accepts anything).
#[derive(Debug, Clone, PartialEq)]
pub struct SumTree {
    len: usize,
    cap: usize,
    /// 1-indexed implicit tree; `nodes[0]` unused.
    nodes: Vec<f64>,
}

impl Default for SumTree {
    /// Equivalent to [`SumTree::new`]`(0)`: no leaves, zero total.
    fn default() -> Self {
        SumTree::new(0)
    }
}

impl SumTree {
    /// Creates a tree of `len` zero leaves.
    pub fn new(len: usize) -> Self {
        let cap = len.next_power_of_two().max(1);
        SumTree {
            len,
            cap,
            nodes: vec![0.0; 2 * cap],
        }
    }

    /// Number of live leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resizes to `len` leaves, zeroing everything.
    pub fn reset(&mut self, len: usize) {
        let cap = len.next_power_of_two().max(1);
        self.len = len;
        self.cap = cap;
        self.nodes.clear();
        self.nodes.resize(2 * cap, 0.0);
    }

    /// Leaf value at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> f64 {
        debug_assert!(index < self.len);
        self.nodes[self.cap + index]
    }

    /// The live leaves as a slice.
    pub fn leaves(&self) -> &[f64] {
        &self.nodes[self.cap..self.cap + self.len]
    }

    /// Sets leaf `index` to `value` and refreshes the path to the root
    /// (each ancestor recomputed as `left + right`).
    #[inline]
    pub fn set(&mut self, index: usize, value: f64) {
        debug_assert!(index < self.len);
        let mut node = self.cap + index;
        self.nodes[node] = value;
        while node > 1 {
            node /= 2;
            self.nodes[node] = self.nodes[2 * node] + self.nodes[2 * node + 1];
        }
    }

    /// Rewrites all leaves from `values` (`values.len()` must equal
    /// [`SumTree::len`]) and rebuilds every level bottom-up — the same
    /// pairwise sums an incremental history would have produced.
    pub fn fill_from(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.len, "leaf count mismatch");
        self.nodes[self.cap..self.cap + self.len].copy_from_slice(values);
        for node in (1..self.cap).rev() {
            self.nodes[node] = self.nodes[2 * node] + self.nodes[2 * node + 1];
        }
    }

    /// Sum of all leaves (the root).
    #[inline]
    pub fn total(&self) -> f64 {
        self.nodes[1]
    }

    /// Finds the leaf selected by `target` under the CDF walk: the
    /// first leaf `j` (in index order) whose cumulative sum exceeds
    /// `target`. `target` should lie in `[0, total())`; values at or
    /// beyond the total clamp to the last live leaf.
    ///
    /// # Panics
    ///
    /// Panics (debug) on an empty tree.
    #[inline]
    pub fn select(&self, mut target: f64) -> usize {
        debug_assert!(self.len > 0, "select on empty tree");
        let mut node = 1usize;
        while node < self.cap {
            let left = 2 * node;
            let left_sum = self.nodes[left];
            if target < left_sum {
                node = left;
            } else {
                target -= left_sum;
                node = left + 1;
            }
        }
        (node - self.cap).min(self.len - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference linear scan with the same semantics as `select`.
    fn scan_select(leaves: &[f64], mut target: f64) -> usize {
        for (j, &a) in leaves.iter().enumerate() {
            if target < a {
                return j;
            }
            target -= a;
        }
        leaves.len() - 1
    }

    #[test]
    fn totals_and_updates() {
        let mut tree = SumTree::new(5);
        assert_eq!(tree.total(), 0.0);
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().enumerate() {
            tree.set(i, v);
        }
        assert_eq!(tree.total(), 15.0);
        assert_eq!(tree.get(2), 3.0);
        tree.set(2, 0.0);
        assert_eq!(tree.total(), 12.0);
        assert_eq!(tree.leaves(), &[1.0, 2.0, 0.0, 4.0, 5.0]);
    }

    #[test]
    fn incremental_equals_rebuild_bitwise() {
        // Awkward magnitudes on purpose: the pure-function invariant
        // must hold through fp round-off.
        let values = [0.1, 1e-9, 3.7e5, 0.0, 2.2250738585072014e-308, 42.0, 7.5];
        let mut incremental = SumTree::new(values.len());
        // Write in a scrambled order, with some overwrites.
        for &i in &[3usize, 0, 6, 2, 5, 1, 4, 0, 6] {
            incremental.set(i, values[i]);
        }
        let mut rebuilt = SumTree::new(values.len());
        rebuilt.fill_from(&values);
        assert_eq!(incremental, rebuilt);
        assert_eq!(incremental.total().to_bits(), rebuilt.total().to_bits());
    }

    #[test]
    fn select_matches_linear_scan() {
        let leaves = [0.0, 2.5, 0.0, 1.25, 4.0, 0.25, 0.0, 1.0, 3.5];
        let mut tree = SumTree::new(leaves.len());
        tree.fill_from(&leaves);
        let total = tree.total();
        let mut target = 0.0;
        while target < total {
            let by_tree = tree.select(target);
            let by_scan = scan_select(&leaves, target);
            // Both walk the same CDF; they may differ only through fp
            // associativity, which these dyadic values exclude.
            assert_eq!(by_tree, by_scan, "target {target}");
            target += 0.125;
        }
        // At or past the total: clamp to last leaf like the scan.
        assert_eq!(tree.select(total), leaves.len() - 1);
        assert_eq!(tree.select(total + 10.0), leaves.len() - 1);
    }

    #[test]
    fn select_skips_zero_leaves() {
        let mut tree = SumTree::new(4);
        tree.set(2, 1.0);
        assert_eq!(tree.select(0.0), 2);
        assert_eq!(tree.select(0.999), 2);
    }

    #[test]
    fn default_and_zero_leaf_trees_are_benign() {
        let tree = SumTree::default();
        assert!(tree.is_empty());
        assert_eq!(tree.total(), 0.0);
        let tree = SumTree::new(0);
        assert_eq!(tree.total(), 0.0);
        assert_eq!(tree.leaves(), &[] as &[f64]);
    }

    #[test]
    fn single_leaf_and_reset() {
        let mut tree = SumTree::new(1);
        tree.set(0, 2.0);
        assert_eq!(tree.total(), 2.0);
        assert_eq!(tree.select(1.9), 0);
        tree.reset(3);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.total(), 0.0);
        tree.set(1, 1.0);
        assert_eq!(tree.select(0.5), 1);
    }

    #[test]
    fn non_power_of_two_padding_is_invisible() {
        let leaves = [1.0, 1.0, 1.0, 1.0, 1.0]; // cap = 8, 3 padding leaves
        let mut tree = SumTree::new(5);
        tree.fill_from(&leaves);
        assert_eq!(tree.total(), 5.0);
        assert_eq!(tree.select(4.5), 4);
        assert_eq!(tree.select(4.999), 4);
    }
}
