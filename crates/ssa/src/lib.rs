//! Stochastic simulation of reaction-network models.
//!
//! Genetic circuits involve small, discrete molecule counts, so the paper
//! (following Gillespie [7] and McAdams & Arkin [6]) simulates them with a
//! stochastic simulation algorithm rather than ODEs. This crate provides:
//!
//! * [`compiled`] — a [`compiled::CompiledModel`]: kinetic laws compiled to
//!   slot-indexed programs and grouped by shape into a batched
//!   structure-of-arrays evaluator (`glc_model::expr::KineticFormBank`),
//!   per-reaction state deltas (boundary species excluded), and the
//!   reaction dependency graph;
//! * [`propensity`] / [`sum_tree`] — the incremental propensity engine
//!   shared by **all** engines: cached propensities updated only for
//!   `dependents(fired)` after each firing (full-sweep engines rebuild
//!   through one batched bank sweep), with O(log R) reaction selection
//!   through a flat binary sum tree;
//! * [`draws`] — the batched Gaussian source (pairwise Box–Muller over
//!   block-refilled uniforms, with a carry slot for odd draw counts)
//!   behind the Langevin engine and tau-leap's large-λ normal branch;
//! * [`engine`] — the [`engine::Engine`] trait plus four implementations:
//!   [`direct::Direct`] (Gillespie's direct method),
//!   [`first_reaction::FirstReaction`],
//!   [`next_reaction::NextReaction`] (Gibson–Bruck, using the indexed
//!   priority queue in [`ipq`] on top of the shared propensity cache),
//!   and [`tau_leap::TauLeap`];
//! * [`trace`] — uniformly-sampled simulation traces (the "simulation data
//!   of all I/O species", `SDA`, consumed by the logic analyzer);
//! * [`control`] — piecewise-constant input schedules for driving boundary
//!   (input) species through the 2^N input combinations;
//! * [`ode`] — a deterministic RK4 integrator for mean-behaviour checks.
//!
//! # Example
//!
//! ```
//! use glc_model::ModelBuilder;
//! use glc_ssa::{CompiledModel, Direct, simulate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = ModelBuilder::new("birth_death")
//!     .species("X", 0.0)
//!     .parameter("k_prod", 5.0)
//!     .parameter("k_deg", 0.1)
//!     .reaction("prod", &[], &["X"], "k_prod")?
//!     .reaction("deg", &["X"], &[], "k_deg * X")?
//!     .build()?;
//! let compiled = CompiledModel::new(&model)?;
//! // Steady state is k_prod / k_deg = 50 molecules.
//! let trace = simulate(&compiled, &mut Direct::new(), 1000.0, 1.0, 42)?;
//! let x = trace.series("X").unwrap();
//! let tail_mean: f64 = x[500..].iter().sum::<f64>() / (x.len() - 500) as f64;
//! assert!((tail_mean - 50.0).abs() < 10.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compiled;
pub mod control;
pub mod direct;
pub mod draws;
pub mod engine;
pub mod ensemble;
pub mod error;
pub mod exact;
pub mod first_reaction;
pub mod ipq;
pub mod langevin;
pub mod next_reaction;
pub mod ode;
pub mod propensity;
pub mod sum_tree;
pub mod tau_leap;
pub mod trace;
pub mod wire;

pub use compiled::{CompiledModel, ModelCache, State, DEFAULT_MODEL_CACHE_CAPACITY};
pub use control::{InputSchedule, ScheduleRunner};
pub use direct::Direct;
pub use draws::{standard_normal, NormalBlock, NormalCarry};
pub use engine::{Engine, Observer};
pub use ensemble::{
    run_ensemble, run_partial, run_partial_from, Ensemble, EnsemblePartial, PartialFingerprint,
};
pub use error::SimError;
pub use exact::ExactSum;
pub use first_reaction::FirstReaction;
pub use langevin::Langevin;
pub use next_reaction::NextReaction;
pub use propensity::PropensitySet;
pub use sum_tree::SumTree;
pub use tau_leap::TauLeap;
pub use trace::{Trace, TraceRecorder};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `engine` on `model` from its initial state until `t_end`,
/// recording every species at interval `sample_dt`.
///
/// Convenience wrapper over [`CompiledModel::initial_state`],
/// [`TraceRecorder`] and [`Engine::run`].
///
/// # Errors
///
/// Propagates [`SimError`] from the engine (e.g. a kinetic law producing a
/// non-finite propensity).
pub fn simulate(
    model: &CompiledModel,
    engine: &mut dyn Engine,
    t_end: f64,
    sample_dt: f64,
    seed: u64,
) -> Result<Trace, SimError> {
    let mut state = model.initial_state();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut recorder = TraceRecorder::new(model, sample_dt);
    engine.run(model, &mut state, t_end, &mut rng, &mut recorder)?;
    Ok(recorder.finish(t_end, &state))
}
