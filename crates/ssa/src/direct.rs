//! Gillespie's direct method (SSA).
//!
//! At each step the total propensity `a0 = Σ a_j` determines an
//! exponentially distributed waiting time `τ ~ Exp(a0)`, and the firing
//! reaction is chosen with probability `a_j / a0` (Gillespie 1977, the
//! algorithm the paper cites as reference [7]).
//!
//! Propensities live in a [`PropensitySet`]: after each firing only the
//! reactions in `dependents(fired)` are re-evaluated and selection is
//! an O(log R) sum-tree descent. [`Direct::with_full_recompute`] keeps
//! the naive O(R)-per-step path callable — it re-evaluates every
//! propensity every step through the same set, which by the set's
//! history-independence invariant produces **bitwise-identical
//! trajectories** for the same seed. Benchmarks report the two side by
//! side; tests assert the equivalence.

use crate::compiled::{CompiledModel, State};
use crate::engine::{Engine, Observer, DEFAULT_STEP_LIMIT};
use crate::error::SimError;
use crate::propensity::PropensitySet;
use rand::rngs::StdRng;
use rand::Rng;

/// The direct method.
#[derive(Debug, Clone)]
pub struct Direct {
    step_limit: u64,
    propensities: PropensitySet,
    full_recompute: bool,
}

impl Direct {
    /// Creates a direct-method engine with the default step limit.
    pub fn new() -> Self {
        Self::with_step_limit(DEFAULT_STEP_LIMIT)
    }

    /// Creates a direct-method engine with a custom per-run step limit.
    pub fn with_step_limit(step_limit: u64) -> Self {
        Direct {
            step_limit,
            propensities: PropensitySet::new(),
            full_recompute: false,
        }
    }

    /// Creates the retained full-recompute baseline: every propensity
    /// is re-evaluated on every step instead of only `dependents`.
    ///
    /// Exists for benchmarking old-vs-new and for equivalence tests;
    /// trajectories are bitwise identical to [`Direct::new`] for the
    /// same seed. Note this reproduces the *schedule* of the
    /// pre-incremental engine, not its exact arithmetic: totals and
    /// selection go through the sum tree here, where the old engine
    /// summed sequentially and scanned linearly, so pre-PR trajectories
    /// differed in fp round-off.
    pub fn with_full_recompute() -> Self {
        Direct {
            step_limit: DEFAULT_STEP_LIMIT,
            propensities: PropensitySet::new(),
            full_recompute: true,
        }
    }
}

impl Default for Direct {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine for Direct {
    fn name(&self) -> &'static str {
        if self.full_recompute {
            "direct-full-recompute"
        } else {
            "direct"
        }
    }

    fn step_limit(&self) -> u64 {
        self.step_limit
    }

    fn run(
        &mut self,
        model: &CompiledModel,
        state: &mut State,
        t_end: f64,
        rng: &mut StdRng,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError> {
        if t_end < state.t {
            return Err(SimError::InvalidConfig(format!(
                "t_end {t_end} is before current time {}",
                state.t
            )));
        }
        // Engines are stateless between runs: a fresh rebuild picks up
        // any external state edits (input clamping) since the last run.
        self.propensities.rebuild(model, state)?;
        let mut steps: u64 = 0;
        loop {
            let a0 = self.propensities.total();
            if a0 <= 0.0 {
                // Quiescent: nothing can ever fire again (propensities only
                // change when state changes). Jump to the horizon.
                break;
            }
            // τ ~ Exp(a0). `gen` yields [0, 1); use 1 - u to avoid ln(0).
            let u: f64 = rng.gen();
            let tau = -(1.0 - u).ln() / a0;
            let t_next = state.t + tau;
            if t_next >= t_end {
                break;
            }
            // Pick reaction j with probability a_j / a0: O(log R) descent.
            let target = rng.gen::<f64>() * a0;
            let fired = self.propensities.select(target);
            observer.on_advance(t_next, &state.values);
            state.t = t_next;
            model.apply(fired, state);
            if self.full_recompute {
                self.propensities.rebuild(model, state)?;
            } else {
                self.propensities.update_after(model, state, fired)?;
            }
            steps += 1;
            if steps >= self.step_limit {
                return Err(SimError::StepLimitExceeded {
                    limit: self.step_limit,
                    time: state.t,
                });
            }
        }
        observer.on_advance(t_end, &state.values);
        state.t = t_end;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullObserver;
    use glc_model::ModelBuilder;
    use rand::SeedableRng;

    fn birth_death(k_prod: f64, k_deg: f64, x0: f64) -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", x0)
            .parameter("kp", k_prod)
            .parameter("kd", k_deg)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn reaches_horizon_and_sets_time() {
        let model = birth_death(5.0, 0.1, 0.0);
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        Direct::new()
            .run(&model, &mut state, 10.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 10.0);
    }

    #[test]
    fn quiescent_model_jumps_to_horizon() {
        // No production, nothing to degrade: zero total propensity.
        let model = birth_death(0.0, 0.1, 0.0);
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        Direct::new()
            .run(&model, &mut state, 100.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 100.0);
        assert_eq!(state.values[0], 0.0);
    }

    #[test]
    fn birth_death_converges_to_analytic_mean() {
        // Stationary distribution is Poisson(kp/kd); mean 50.
        let model = birth_death(5.0, 0.1, 0.0);
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(7);
        let mut engine = Direct::new();
        // Burn in.
        engine
            .run(&model, &mut state, 200.0, &mut rng, &mut NullObserver)
            .unwrap();
        // Time-average over a long window.
        let mut sum = 0.0;
        let mut count = 0usize;
        for _ in 0..2000 {
            let t_next = state.t + 1.0;
            engine
                .run(&model, &mut state, t_next, &mut rng, &mut NullObserver)
                .unwrap();
            sum += state.values[0];
            count += 1;
        }
        let mean = sum / count as f64;
        assert!(
            (mean - 50.0).abs() < 3.0,
            "empirical mean {mean} too far from 50"
        );
    }

    #[test]
    fn step_limit_is_enforced() {
        let model = birth_death(1e6, 0.0, 0.0);
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        let err = Direct::with_step_limit(100)
            .run(&model, &mut state, 1e9, &mut rng, &mut NullObserver)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::StepLimitExceeded { limit: 100, .. }
        ));
    }

    #[test]
    fn t_end_in_the_past_is_rejected() {
        let model = birth_death(1.0, 1.0, 0.0);
        let mut state = model.initial_state();
        state.t = 5.0;
        let mut rng = StdRng::seed_from_u64(1);
        let err = Direct::new()
            .run(&model, &mut state, 1.0, &mut rng, &mut NullObserver)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn species_counts_stay_non_negative_and_integral() {
        let model = birth_death(5.0, 0.5, 20.0);
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(3);
        struct Check;
        impl Observer for Check {
            fn on_advance(&mut self, _t: f64, values: &[f64]) {
                assert!(values[0] >= 0.0);
                assert_eq!(values[0].fract(), 0.0);
            }
        }
        Direct::new()
            .run(&model, &mut state, 50.0, &mut rng, &mut Check)
            .unwrap();
    }

    #[test]
    fn deterministic_given_same_seed() {
        let model = birth_death(5.0, 0.1, 0.0);
        let run = |seed: u64| {
            let mut state = model.initial_state();
            let mut rng = StdRng::seed_from_u64(seed);
            Direct::new()
                .run(&model, &mut state, 100.0, &mut rng, &mut NullObserver)
                .unwrap();
            state.values[0]
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn incremental_is_bitwise_identical_to_full_recompute() {
        // The acceptance invariant of the incremental propensity
        // engine: for a fixed seed the dependency-driven updates must
        // reproduce the naive full-recompute trajectory exactly, step
        // by step.
        let model = birth_death(5.0, 0.1, 20.0);

        #[derive(Default)]
        struct Record(Vec<(u64, u64)>);
        impl Observer for Record {
            fn on_advance(&mut self, t: f64, values: &[f64]) {
                self.0.push((t.to_bits(), values[0].to_bits()));
            }
        }

        for seed in [1u64, 42, 1337] {
            let run = |mut engine: Direct| {
                let mut state = model.initial_state();
                let mut rng = StdRng::seed_from_u64(seed);
                let mut record = Record::default();
                engine
                    .run(&model, &mut state, 200.0, &mut rng, &mut record)
                    .unwrap();
                record.0
            };
            let incremental = run(Direct::new());
            let full = run(Direct::with_full_recompute());
            assert_eq!(incremental, full, "seed {seed}");
        }
    }
}
