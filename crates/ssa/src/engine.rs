//! The [`Engine`] trait shared by all stochastic simulation algorithms.

use crate::compiled::{CompiledModel, State};
use crate::error::SimError;
use rand::rngs::StdRng;

/// Default cap on the number of reaction firings per [`Engine::run`] call,
/// guarding against runaway models.
pub const DEFAULT_STEP_LIMIT: u64 = 500_000_000;

/// Receives simulation progress.
///
/// `on_advance(t_new, values)` is called when simulated time advances to
/// `t_new` while the state held in `values` was valid over the preceding
/// interval — i.e. *before* the state change at `t_new` is applied. This
/// is exactly what a uniform sampler needs: every sample point in
/// `[t_prev, t_new)` takes the old state.
pub trait Observer {
    /// Reports that time advanced to `t_new` with `values` valid until
    /// then.
    fn on_advance(&mut self, t_new: f64, values: &[f64]);
}

/// A no-op observer for callers that only want the final state.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_advance(&mut self, _t_new: f64, _values: &[f64]) {}
}

/// A stochastic simulation algorithm.
///
/// Engines are stateless between [`Engine::run`] calls (any internal
/// structures are rebuilt at the start of each call), so a run can be
/// split into segments with external state edits — input clamping —
/// in between. That is how the virtual lab applies input combinations.
pub trait Engine {
    /// Algorithm name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Advances `state` until `state.t >= t_end` or no reaction can fire.
    ///
    /// The observer is notified per firing; see [`Observer`]. On return
    /// `state.t == t_end` (time is always advanced to the horizon, even
    /// when the system went quiescent).
    ///
    /// # Errors
    ///
    /// [`SimError`] on invalid propensities or when the step limit is
    /// exceeded.
    fn run(
        &mut self,
        model: &CompiledModel,
        state: &mut State,
        t_end: f64,
        rng: &mut StdRng,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError>;

    /// Maximum number of firings allowed per `run` call.
    fn step_limit(&self) -> u64 {
        DEFAULT_STEP_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_a_unit() {
        let mut obs = NullObserver;
        obs.on_advance(1.0, &[1.0, 2.0]);
    }
}
