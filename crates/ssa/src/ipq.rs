//! Indexed binary min-heap used by the Gibson–Bruck next-reaction method.
//!
//! Supports `O(log n)` key updates of arbitrary items, which is the
//! operation the next-reaction method performs for every dependent
//! reaction after a firing.

/// A min-heap over items `0..n` keyed by `f64` (typically absolute firing
/// times; `f64::INFINITY` marks reactions that currently cannot fire).
///
/// NaN keys are not supported and will panic in debug builds.
#[derive(Debug, Clone)]
pub struct IndexedPriorityQueue {
    /// Heap array of item ids.
    heap: Vec<usize>,
    /// `pos[item]` = index of `item` within `heap`.
    pos: Vec<usize>,
    /// `keys[item]` = current key of `item`.
    keys: Vec<f64>,
}

impl IndexedPriorityQueue {
    /// Builds a queue from initial keys (item ids are `0..keys.len()`).
    pub fn new(keys: Vec<f64>) -> Self {
        debug_assert!(keys.iter().all(|k| !k.is_nan()), "NaN key");
        let n = keys.len();
        let mut queue = IndexedPriorityQueue {
            heap: (0..n).collect(),
            pos: (0..n).collect(),
            keys,
        };
        // Standard bottom-up heapify.
        for i in (0..n / 2).rev() {
            queue.sift_down(i);
        }
        queue
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The item with the smallest key and its key.
    ///
    /// Returns `None` only for an empty queue.
    pub fn min(&self) -> Option<(usize, f64)> {
        self.heap.first().map(|&item| (item, self.keys[item]))
    }

    /// Current key of `item`.
    pub fn key(&self, item: usize) -> f64 {
        self.keys[item]
    }

    /// Sets the key of `item`, restoring the heap property.
    pub fn update(&mut self, item: usize, key: f64) {
        debug_assert!(!key.is_nan(), "NaN key");
        let old = self.keys[item];
        self.keys[item] = key;
        let index = self.pos[item];
        if key < old {
            self.sift_up(index);
        } else if key > old {
            self.sift_down(index);
        }
    }

    fn sift_up(&mut self, mut index: usize) {
        while index > 0 {
            let parent = (index - 1) / 2;
            if self.keys[self.heap[index]] < self.keys[self.heap[parent]] {
                self.swap(index, parent);
                index = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut index: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * index + 1;
            let right = left + 1;
            let mut smallest = index;
            if left < n && self.keys[self.heap[left]] < self.keys[self.heap[smallest]] {
                smallest = left;
            }
            if right < n && self.keys[self.heap[right]] < self.keys[self.heap[smallest]] {
                smallest = right;
            }
            if smallest == index {
                break;
            }
            self.swap(index, smallest);
            index = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a;
        self.pos[self.heap[b]] = b;
    }

    /// Debug check: verifies the heap property and the position index.
    #[cfg(test)]
    fn check_invariants(&self) {
        for (index, &item) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[item], index, "pos index out of sync");
            if index > 0 {
                let parent = (index - 1) / 2;
                assert!(
                    self.keys[self.heap[parent]] <= self.keys[item],
                    "heap property violated at index {index}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn heapify_finds_minimum() {
        let queue = IndexedPriorityQueue::new(vec![5.0, 1.0, 3.0, 0.5, 9.0]);
        queue.check_invariants();
        assert_eq!(queue.min(), Some((3, 0.5)));
        assert_eq!(queue.len(), 5);
        assert!(!queue.is_empty());
    }

    #[test]
    fn empty_queue_has_no_min() {
        let queue = IndexedPriorityQueue::new(vec![]);
        assert_eq!(queue.min(), None);
        assert!(queue.is_empty());
    }

    #[test]
    fn update_moves_items_both_directions() {
        let mut queue = IndexedPriorityQueue::new(vec![1.0, 2.0, 3.0, 4.0]);
        queue.update(0, 10.0); // min moves away
        queue.check_invariants();
        assert_eq!(queue.min(), Some((1, 2.0)));
        queue.update(3, 0.1); // last becomes min
        queue.check_invariants();
        assert_eq!(queue.min(), Some((3, 0.1)));
        assert_eq!(queue.key(0), 10.0);
    }

    #[test]
    fn update_with_equal_key_is_a_no_op() {
        let mut queue = IndexedPriorityQueue::new(vec![1.0, 2.0]);
        queue.update(1, 2.0);
        queue.check_invariants();
        assert_eq!(queue.min(), Some((0, 1.0)));
    }

    #[test]
    fn infinity_keys_sink_to_the_bottom() {
        let mut queue = IndexedPriorityQueue::new(vec![f64::INFINITY, 2.0, f64::INFINITY]);
        assert_eq!(queue.min(), Some((1, 2.0)));
        queue.update(1, f64::INFINITY);
        let (_, key) = queue.min().unwrap();
        assert!(key.is_infinite());
    }

    #[test]
    fn randomized_updates_preserve_invariants_and_min() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 64usize;
        let mut keys: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut queue = IndexedPriorityQueue::new(keys.clone());
        for _ in 0..2000 {
            let item = rng.gen_range(0..n);
            let key = if rng.gen_bool(0.1) {
                f64::INFINITY
            } else {
                rng.gen_range(0.0..100.0)
            };
            keys[item] = key;
            queue.update(item, key);
            queue.check_invariants();
            let expected_min = keys.iter().cloned().fold(f64::INFINITY, f64::min);
            let (_, actual_min) = queue.min().unwrap();
            assert_eq!(actual_min, expected_min);
        }
    }
}
