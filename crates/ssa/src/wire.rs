//! Binary wire primitives shared by the GLCB compact codec.
//!
//! The service fabric's hot payloads (chunk orders, `RelayReply`
//! partials, spill snapshots) optionally travel in "GLCB", a compact
//! binary layout negotiated per connection. The aggregate types that
//! dominate those payloads — [`crate::ExactSum`] and
//! [`crate::EnsemblePartial`] — live in this crate, so the primitive
//! encoders live here too and the service crate builds its message
//! framing on top of them.
//!
//! Primitives:
//!
//! * **varint** — LEB128 unsigned integers (lengths, counts, ids,
//!   seeds): 1 byte for values < 128, ≤ 10 bytes for the full `u64`
//!   range;
//! * **f64** — 8-byte little-endian IEEE bit patterns via
//!   [`f64::to_bits`], preserving NaN payloads and signed zeros
//!   bitwise (the JSON layer's shortest-round-trip spelling is
//!   value-preserving too, but costs a parse);
//! * **i64** — 8-byte little-endian two's complement (`ExactSum`
//!   digits);
//! * **str** — varint byte length + UTF-8 bytes.
//!
//! Decoding is fail-closed: every read comes off a [`Reader`] that
//! errors on truncation, and container decoders reject trailing bytes,
//! so a corrupt or truncated payload never half-decodes.

/// A decode error: a short human-readable reason, later wrapped into
/// the service layer's protocol error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// A truncation error naming what was being read.
    pub fn truncated(what: &str) -> Self {
        WireError(format!("truncated payload reading {what}"))
    }
}

/// A fail-closed cursor over a byte slice: every read checks bounds
/// and truncation is an error, never a default.
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Whether every byte has been consumed (containers require this
    /// before accepting a decoded value).
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors unless the payload was fully consumed — the fail-closed
    /// tail check every top-level decoder ends with.
    pub fn expect_end(&self, what: &str) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError(format!(
                "{} trailing bytes after {what}",
                self.remaining()
            )))
        }
    }

    /// Reads one byte.
    pub fn byte(&mut self, what: &str) -> Result<u8, WireError> {
        let Some(&b) = self.bytes.get(self.at) else {
            return Err(WireError::truncated(what));
        };
        self.at += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::truncated(what));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Reads a LEB128 varint `u64`, rejecting encodings past the 10
    /// bytes a `u64` can need and any overflow of the top byte.
    pub fn varint(&mut self, what: &str) -> Result<u64, WireError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte(what)?;
            let low = u64::from(byte & 0x7F);
            if shift == 63 && low > 1 {
                return Err(WireError(format!("varint overflow reading {what}")));
            }
            value |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(WireError(format!("varint too long reading {what}")))
    }

    /// Reads a varint and bounds-checks it as a container length, so a
    /// corrupt count cannot drive a huge allocation.
    pub fn length(&mut self, what: &str, max: usize) -> Result<usize, WireError> {
        let n = self.varint(what)?;
        if n > max as u64 {
            return Err(WireError(format!(
                "{what} length {n} exceeds the {max} cap"
            )));
        }
        Ok(n as usize)
    }

    /// Reads an 8-byte little-endian `f64` bit pattern.
    pub fn f64_bits(&mut self, what: &str) -> Result<f64, WireError> {
        let raw = self.take(8, what)?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }

    /// Reads an 8-byte little-endian `i64`.
    pub fn i64_le(&mut self, what: &str) -> Result<i64, WireError> {
        let raw = self.take(8, what)?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(raw);
        Ok(i64::from_le_bytes(bits))
    }

    /// Reads a length-prefixed UTF-8 string (capped at 64 MiB, the
    /// frame-payload bound).
    pub fn string(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.length(what, 64 << 20)?;
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WireError(format!("invalid UTF-8 reading {what}")))
    }
}

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends an `f64` as its 8-byte little-endian bit pattern.
pub fn put_f64_bits(buf: &mut Vec<u8>, value: f64) {
    buf.extend_from_slice(&value.to_bits().to_le_bytes());
}

/// Appends an `i64` little-endian.
pub fn put_i64_le(buf: &mut Vec<u8>, value: i64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut Vec<u8>, value: &str) {
    put_varint(buf, value.len() as u64);
    buf.extend_from_slice(value.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_across_the_u64_range() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u64::from(u32::MAX),
            1 << 53,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut reader = Reader::new(&buf);
        for &v in &values {
            assert_eq!(reader.varint("test").unwrap(), v);
        }
        assert!(reader.is_empty());
    }

    #[test]
    fn floats_round_trip_bitwise_including_nan_payloads() {
        let values = [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            5e-324,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7FF8_0000_DEAD_BEEF), // NaN with a payload
        ];
        let mut buf = Vec::new();
        for &v in &values {
            put_f64_bits(&mut buf, v);
        }
        let mut reader = Reader::new(&buf);
        for &v in &values {
            let back = reader.f64_bits("test").unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut buf = Vec::new();
        put_string(&mut buf, "cello_0x1C");
        put_string(&mut buf, "");
        let mut reader = Reader::new(&buf);
        assert_eq!(reader.string("a").unwrap(), "cello_0x1C");
        assert_eq!(reader.string("b").unwrap(), "");
        reader.expect_end("strings").unwrap();

        let mut bad = Vec::new();
        put_varint(&mut bad, 2);
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&bad).string("bad").is_err());
    }

    #[test]
    fn truncation_and_trailing_bytes_fail_closed() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 300);
        assert!(Reader::new(&buf[..1]).varint("cut").is_err());
        assert!(Reader::new(&[0u8; 4]).f64_bits("short").is_err());
        let mut reader = Reader::new(&buf);
        reader.varint("ok").unwrap();
        assert!(Reader::new(&buf).expect_end("payload").is_err());
        reader.expect_end("payload").unwrap();
        // Over-long varint encodings are rejected, not wrapped.
        let overlong = [0xFFu8; 11];
        assert!(Reader::new(&overlong).varint("overlong").is_err());
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(Reader::new(&overflow).varint("overflow").is_err());
    }

    #[test]
    fn length_caps_reject_corrupt_counts() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1_000_000);
        assert!(Reader::new(&buf).length("cells", 4096).is_err());
        assert_eq!(
            Reader::new(&buf).length("cells", 1 << 24).unwrap(),
            1_000_000
        );
    }
}
