//! Uniformly-sampled simulation traces.
//!
//! The paper's logic analyzer consumes "simulation data of all I/O
//! species" (`SDA`) — a table of species amounts sampled at a fixed
//! interval. [`TraceRecorder`] implements the sampling as an [`Observer`]
//! (zero-order hold: each sample takes the state valid at that instant)
//! and produces a [`Trace`].

use crate::compiled::{CompiledModel, State};
use crate::engine::Observer;
use serde::{Deserialize, Serialize};

/// A recorded simulation trace: per-species time series on a uniform grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    species: Vec<String>,
    sample_dt: f64,
    t0: f64,
    /// `data[s][k]` = amount of species `s` at time `t0 + k * sample_dt`.
    data: Vec<Vec<f64>>,
}

impl Trace {
    /// Creates an empty trace for the given species, sampling interval
    /// and start time.
    ///
    /// # Panics
    ///
    /// Panics if `sample_dt` is not strictly positive.
    pub fn new(species: Vec<String>, sample_dt: f64, t0: f64) -> Self {
        assert!(sample_dt > 0.0, "sample_dt must be positive");
        let n = species.len();
        Trace {
            species,
            sample_dt,
            t0,
            data: vec![Vec::new(); n],
        }
    }

    /// Species names, in column order.
    pub fn species(&self) -> &[String] {
        &self.species
    }

    /// Sampling interval.
    pub fn sample_dt(&self) -> f64 {
        self.sample_dt
    }

    /// Time of the first sample.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Number of samples per series.
    pub fn len(&self) -> usize {
        self.data.first().map_or(0, Vec::len)
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Time of sample `k`.
    pub fn time(&self, k: usize) -> f64 {
        self.t0 + k as f64 * self.sample_dt
    }

    /// Series for species `name`, if present.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        let idx = self.species.iter().position(|s| s == name)?;
        Some(&self.data[idx])
    }

    /// Series by column index.
    pub fn series_at(&self, idx: usize) -> &[f64] {
        &self.data[idx]
    }

    /// Appends one sample row (used by the recorder and by trace
    /// concatenation).
    ///
    /// # Panics
    ///
    /// Panics if `row` length differs from the species count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.data.len(), "row width mismatch");
        for (series, value) in self.data.iter_mut().zip(row) {
            series.push(*value);
        }
    }

    /// Appends all samples of `other` (same species, same `sample_dt`;
    /// `other` is assumed to continue where `self` ends).
    ///
    /// # Panics
    ///
    /// Panics if the species lists or sampling intervals differ.
    pub fn extend(&mut self, other: &Trace) {
        assert_eq!(self.species, other.species, "species mismatch");
        assert_eq!(self.sample_dt, other.sample_dt, "sample_dt mismatch");
        for (mine, theirs) in self.data.iter_mut().zip(&other.data) {
            mine.extend_from_slice(theirs);
        }
    }

    /// Mean of a series over the sample range `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn mean(&self, name: &str, from: usize, to: usize) -> f64 {
        let series = self.series(name).expect("unknown species");
        let window = &series[from..to];
        assert!(!window.is_empty(), "empty window");
        window.iter().sum::<f64>() / window.len() as f64
    }
}

/// Records a [`Trace`] while an engine runs, sampling with zero-order
/// hold at a fixed interval.
#[derive(Debug)]
pub struct TraceRecorder {
    trace: Trace,
    species_count: usize,
    next_sample_t: f64,
}

impl TraceRecorder {
    /// Creates a recorder for all species of `model`, sampling every
    /// `sample_dt` starting at `t = 0`.
    pub fn new(model: &CompiledModel, sample_dt: f64) -> Self {
        Self::with_start(model, sample_dt, 0.0)
    }

    /// Creates a recorder whose first sample is at `t0`.
    pub fn with_start(model: &CompiledModel, sample_dt: f64, t0: f64) -> Self {
        TraceRecorder {
            trace: Trace::new(model.species_names().to_vec(), sample_dt, t0),
            species_count: model.species_count(),
            next_sample_t: t0,
        }
    }

    /// Finalizes the trace, sampling up to *and including* `t_end` with
    /// the final state.
    pub fn finish(mut self, t_end: f64, state: &State) -> Trace {
        // Take remaining samples at the final state, inclusive horizon.
        while self.next_sample_t <= t_end + 1e-9 {
            self.trace.push_row(&state.values[..self.species_count]);
            self.next_sample_t += self.trace.sample_dt;
        }
        self.trace
    }

    /// The trace recorded so far (mainly for tests).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl Observer for TraceRecorder {
    fn on_advance(&mut self, t_new: f64, values: &[f64]) {
        // `values` is valid on [previous time, t_new): every sample point
        // strictly before t_new takes it.
        while self.next_sample_t < t_new - 1e-12 {
            self.trace.push_row(&values[..self.species_count]);
            self.next_sample_t += self.trace.sample_dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glc_model::ModelBuilder;

    fn tiny_model() -> CompiledModel {
        let model = ModelBuilder::new("m")
            .species("A", 1.0)
            .species("B", 2.0)
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn recorder_zero_order_hold() {
        let model = tiny_model();
        let mut rec = TraceRecorder::new(&model, 1.0);
        // State [1, 2] holds until t = 2.5.
        rec.on_advance(2.5, &[1.0, 2.0]);
        // State [5, 6] holds until t = 4.2.
        rec.on_advance(4.2, &[5.0, 6.0]);
        let state = State {
            t: 4.2,
            values: vec![9.0, 10.0],
        };
        let trace = rec.finish(5.0, &state);
        // Samples at t = 0,1,2 take [1,2]; t = 3,4 take [5,6]; t = 5 final.
        assert_eq!(trace.series("A").unwrap(), &[1.0, 1.0, 1.0, 5.0, 5.0, 9.0]);
        assert_eq!(trace.series("B").unwrap(), &[2.0, 2.0, 2.0, 6.0, 6.0, 10.0]);
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.time(5), 5.0);
    }

    #[test]
    fn sample_exactly_at_event_takes_pre_event_state() {
        let model = tiny_model();
        let mut rec = TraceRecorder::new(&model, 1.0);
        rec.on_advance(1.0, &[1.0, 1.0]);
        // The sample at t = 1.0 must NOT take [1,1]: the state changes at
        // exactly t = 1.0, and zero-order hold assigns the new state.
        let state = State {
            t: 1.0,
            values: vec![7.0, 7.0],
        };
        let trace = rec.finish(1.0, &state);
        assert_eq!(trace.series("A").unwrap(), &[1.0, 7.0]);
    }

    #[test]
    fn finish_without_events_fills_with_final_state() {
        let model = tiny_model();
        let rec = TraceRecorder::new(&model, 0.5);
        let state = State {
            t: 2.0,
            values: vec![3.0, 4.0],
        };
        let trace = rec.finish(2.0, &state);
        assert_eq!(trace.len(), 5); // t = 0, 0.5, 1, 1.5, 2
        assert!(trace.series("A").unwrap().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn trace_extend_concatenates() {
        let mut a = Trace::new(vec!["X".into()], 1.0, 0.0);
        a.push_row(&[1.0]);
        a.push_row(&[2.0]);
        let mut b = Trace::new(vec!["X".into()], 1.0, 2.0);
        b.push_row(&[3.0]);
        a.extend(&b);
        assert_eq!(a.series("X").unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "species mismatch")]
    fn trace_extend_rejects_different_species() {
        let mut a = Trace::new(vec!["X".into()], 1.0, 0.0);
        let b = Trace::new(vec!["Y".into()], 1.0, 0.0);
        a.extend(&b);
    }

    #[test]
    fn mean_over_window() {
        let mut trace = Trace::new(vec!["X".into()], 1.0, 0.0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            trace.push_row(&[v]);
        }
        assert_eq!(trace.mean("X", 1, 4), 3.0);
        assert_eq!(trace.mean("X", 0, 4), 2.5);
    }

    #[test]
    fn unknown_series_is_none() {
        let trace = Trace::new(vec!["X".into()], 1.0, 0.0);
        assert!(trace.series("Y").is_none());
        assert!(trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "sample_dt must be positive")]
    fn zero_dt_is_rejected() {
        let _ = Trace::new(vec!["X".into()], 0.0, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut trace = Trace::new(vec!["X".into(), "Y".into()], 2.0, 1.0);
        trace.push_row(&[1.0, 2.0]);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
