//! Chemical Langevin equation engine (Euler–Maruyama).
//!
//! Between the exact SSA (every firing resolved) and the deterministic
//! reaction-rate ODE (no noise at all) sits the chemical Langevin
//! equation: species evolve continuously with drift `Σ ν_j a_j(x)` and
//! per-reaction Gaussian noise of magnitude `√a_j(x)`. It reproduces the
//! right noise *scale* when molecule counts are moderately large at a
//! fraction of the exact methods' cost, and it is the standard middle
//! rung of the simulation-fidelity ladder the engine ablation sweeps.
//!
//! States are continuous here; amounts are clamped at zero and the trace
//! is *not* integer-valued (unlike the exact engines).

use crate::compiled::{CompiledModel, State};
use crate::draws::NormalBlock;
use crate::engine::{Engine, Observer, DEFAULT_STEP_LIMIT};
use crate::error::SimError;
use glc_model::expr::EvalMemo;
use rand::rngs::StdRng;

pub use crate::draws::{standard_normal, NormalCarry};

/// The chemical Langevin engine with fixed time step.
///
/// Every Euler–Maruyama step needs all `R` propensities, so the engine
/// fills a flat propensity slice with one batched kinetic-form-bank
/// sweep per step (no sum tree — nothing here selects reactions). The
/// step itself then runs as three contiguous passes: *compact* the
/// active (non-quiescent) reactions into dense `drift`/`sigma` slices,
/// *fill* one standard normal per active reaction from the batched
/// [`NormalBlock`] source, and a *fused* increment-and-scatter loop
/// `drift[i] + sigma[i]·z[i]` through `model.delta`. All scratch lives
/// on the engine, so steady-state stepping allocates nothing.
#[derive(Debug, Clone)]
pub struct Langevin {
    dt: f64,
    step_limit: u64,
    /// Per-reaction propensities, rebuilt each step by one bank sweep.
    propensities: Vec<f64>,
    /// Operand stack for kinetic laws that fall back to the postfix VM.
    stack: Vec<f64>,
    /// Hill-response memo threaded through the bank sweep.
    memo: EvalMemo,
    /// Reaction ids with non-zero propensity this step, densely packed.
    active: Vec<u32>,
    /// Drift increments `a_r * h`, packed to match `active`.
    drift: Vec<f64>,
    /// Noise scales `√a_r * √h`, packed to match `active`.
    sigma: Vec<f64>,
    /// One standard normal per active reaction, batch-filled per step.
    z: Vec<f64>,
    /// The batched Gaussian source (carry reset at every run start).
    normals: NormalBlock,
}

impl Langevin {
    /// Creates a Langevin engine with the given Euler–Maruyama step.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `dt` is positive and
    /// finite.
    pub fn new(dt: f64) -> Result<Self, SimError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "dt must be positive and finite, got {dt}"
            )));
        }
        Ok(Langevin {
            dt,
            step_limit: DEFAULT_STEP_LIMIT,
            propensities: Vec::new(),
            stack: Vec::new(),
            memo: EvalMemo::new(),
            active: Vec::new(),
            drift: Vec::new(),
            sigma: Vec::new(),
            z: Vec::new(),
            normals: NormalBlock::new(),
        })
    }

    /// The integration step.
    pub fn dt(&self) -> f64 {
        self.dt
    }
}

impl Engine for Langevin {
    fn name(&self) -> &'static str {
        "langevin"
    }

    fn step_limit(&self) -> u64 {
        self.step_limit
    }

    fn run(
        &mut self,
        model: &CompiledModel,
        state: &mut State,
        t_end: f64,
        rng: &mut StdRng,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError> {
        if t_end < state.t {
            return Err(SimError::InvalidConfig(format!(
                "t_end {t_end} is before current time {}",
                state.t
            )));
        }
        // Engines are stateless between run calls: a leftover sine half
        // from a previous run is discarded so every run's draw stream is
        // a pure function of the RNG state handed in.
        self.normals.reset();
        let reactions = model.reaction_count();
        let mut steps: u64 = 0;
        while state.t < t_end {
            let h = self.dt.min(t_end - state.t);
            let t_next = state.t + h;
            model.propensities_into(
                state,
                &mut self.propensities,
                &mut self.stack,
                &mut self.memo,
            )?;
            // Per the Observer contract (see `engine::Observer`): the
            // callback fires *before* this step's increments land, so
            // `values` is the state that held over `[t, t_next)` — the
            // hold semantics uniform samplers need. A recorder sample
            // exactly at `t_next` is deliberately deferred to the next
            // callback (or `finish`) and takes the post-step state.
            observer.on_advance(t_next, &state.values);
            let sqrt_h = h.sqrt();
            // Quiescent reactions draw no noise (and consume no RNG
            // values — part of the per-seed trajectory contract), so
            // they never get a dense slot. `a*h + a.sqrt()*sqrt_h*z`
            // associates as `(a*h) + ((a.sqrt()*sqrt_h) * z)`, so
            // splitting off the z-independent parts replays the
            // identical op sequence either way.
            self.drift.clear();
            self.sigma.clear();
            if self.propensities.iter().all(|&a| a != 0.0) {
                // All reactions live — the steady case on the reference
                // circuits once transcription ramps up. Unit-stride
                // drift/σ passes over the propensity slice (each output
                // a pure per-element function, so bitwise ≡ the packed
                // loop below) and a scatter with no index indirection.
                self.drift.extend(self.propensities.iter().map(|&a| a * h));
                self.sigma
                    .extend(self.propensities.iter().map(|&a| a.sqrt() * sqrt_h));
                self.z.resize(reactions, 0.0);
                self.normals.fill(rng, &mut self.z);
                for r in 0..reactions {
                    let increment = self.drift[r] + self.sigma[r] * self.z[r];
                    for &(slot, delta) in model.delta(r) {
                        state.values[slot] += delta as f64 * increment;
                    }
                }
            } else {
                // Compaction pass: densely pack the active reactions.
                self.active.clear();
                for r in 0..reactions {
                    let a = self.propensities[r];
                    if a == 0.0 {
                        continue;
                    }
                    self.active.push(r as u32);
                    self.drift.push(a * h);
                    self.sigma.push(a.sqrt() * sqrt_h);
                }
                // Batched draw: one normal per active reaction, in
                // reaction order — bitwise what the reference draws.
                self.z.resize(self.active.len(), 0.0);
                self.normals.fill(rng, &mut self.z);
                // Fused increment-and-scatter over the dense slices.
                for i in 0..self.active.len() {
                    let increment = self.drift[i] + self.sigma[i] * self.z[i];
                    for &(slot, delta) in model.delta(self.active[i] as usize) {
                        state.values[slot] += delta as f64 * increment;
                    }
                }
            }
            for slot in 0..model.species_count() {
                if state.values[slot] < 0.0 {
                    state.values[slot] = 0.0;
                }
            }
            state.t = t_next;
            steps += 1;
            if steps >= self.step_limit {
                return Err(SimError::StepLimitExceeded {
                    limit: self.step_limit,
                    time: state.t,
                });
            }
        }
        state.t = t_end;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullObserver;
    use crate::simulate;
    use glc_model::ModelBuilder;
    use rand::SeedableRng;

    fn birth_death() -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", 0.0)
            .parameter("kp", 5.0)
            .parameter("kd", 0.1)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn rejects_bad_dt() {
        assert!(Langevin::new(0.0).is_err());
        assert!(Langevin::new(f64::NAN).is_err());
        assert_eq!(Langevin::new(0.25).unwrap().dt(), 0.25);
    }

    #[test]
    fn stationary_mean_matches_exact_engines() {
        let model = birth_death();
        let mut engine = Langevin::new(0.05).unwrap();
        let trace = simulate(&model, &mut engine, 2000.0, 1.0, 5).unwrap();
        let series = &trace.series("X").unwrap()[200..];
        let mean: f64 = series.iter().sum::<f64>() / series.len() as f64;
        assert!((mean - 50.0).abs() < 4.0, "mean {mean}");
    }

    #[test]
    fn noise_scale_is_poissonian() {
        // CLE should reproduce the √mean noise of the birth–death
        // process: variance ≈ 50 at stationarity.
        let model = birth_death();
        let mut engine = Langevin::new(0.05).unwrap();
        let trace = simulate(&model, &mut engine, 5000.0, 1.0, 11).unwrap();
        let series = &trace.series("X").unwrap()[500..];
        let mean: f64 = series.iter().sum::<f64>() / series.len() as f64;
        let var: f64 = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / series.len() as f64;
        assert!(
            (var / mean - 1.0).abs() < 0.35,
            "Fano {} too far from 1",
            var / mean
        );
    }

    #[test]
    fn states_stay_non_negative() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(2);
        let mut engine = Langevin::new(0.5).unwrap(); // coarse on purpose
        struct NonNegative;
        impl Observer for NonNegative {
            fn on_advance(&mut self, _t: f64, values: &[f64]) {
                assert!(values[0] >= 0.0);
            }
        }
        engine
            .run(&model, &mut state, 200.0, &mut rng, &mut NonNegative)
            .unwrap();
        assert_eq!(state.t, 200.0);
    }

    #[test]
    fn time_lands_on_horizon_and_rejects_past() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        let mut engine = Langevin::new(0.3).unwrap();
        engine
            .run(&model, &mut state, 1.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 1.0);
        assert!(engine
            .run(&model, &mut state, 0.5, &mut rng, &mut NullObserver)
            .is_err());
    }

    #[test]
    fn quiescent_model_stays_put() {
        let model = ModelBuilder::new("still")
            .species("X", 7.0)
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let mut state = compiled.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        Langevin::new(0.1)
            .unwrap()
            .run(&compiled, &mut state, 5.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.values[0], 7.0);
    }

    #[test]
    fn reused_engine_discards_carry_between_runs() {
        // An odd number of normals per run parks a sine half in the
        // engine's carry. A second run on a reused engine must draw the
        // same trajectory as a fresh engine given the same RNG state:
        // engines are stateless between run calls.
        let model = birth_death(); // X starts at 0 ⇒ one active reaction
        let mut rng = StdRng::seed_from_u64(33);
        let mut engine = Langevin::new(0.1).unwrap();
        let mut state = model.initial_state();
        engine
            .run(&model, &mut state, 0.1, &mut rng, &mut NullObserver)
            .unwrap();
        // Snapshot: a fresh engine continuing from the identical state
        // and RNG position must reproduce the reused engine bitwise.
        let mut rng_fresh = rng.clone();
        let mut state_fresh = state.clone();
        engine
            .run(&model, &mut state, 0.2, &mut rng, &mut NullObserver)
            .unwrap();
        let mut fresh = Langevin::new(0.1).unwrap();
        fresh
            .run(
                &model,
                &mut state_fresh,
                0.2,
                &mut rng_fresh,
                &mut NullObserver,
            )
            .unwrap();
        assert_eq!(state.values[0].to_bits(), state_fresh.values[0].to_bits());
        assert_eq!(rng, rng_fresh, "stream positions must agree");
    }
}
