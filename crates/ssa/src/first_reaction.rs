//! Gillespie's first-reaction method.
//!
//! Draws a tentative exponential firing time for *every* reaction and
//! fires the earliest. Statistically equivalent to the direct method but
//! uses `M` random numbers per step; included as the historical baseline
//! the next-reaction method improves on.
//!
//! Propensities come from a [`PropensitySet`]: only `dependents(fired)`
//! are re-evaluated per step. The per-step random-number draws remain
//! O(M) — that is the method, not the bookkeeping.

use crate::compiled::{CompiledModel, State};
use crate::engine::{Engine, Observer, DEFAULT_STEP_LIMIT};
use crate::error::SimError;
use crate::propensity::PropensitySet;
use rand::rngs::StdRng;
use rand::Rng;

/// The first-reaction method.
#[derive(Debug, Clone)]
pub struct FirstReaction {
    step_limit: u64,
    propensities: PropensitySet,
}

impl FirstReaction {
    /// Creates a first-reaction engine with the default step limit.
    pub fn new() -> Self {
        FirstReaction {
            step_limit: DEFAULT_STEP_LIMIT,
            propensities: PropensitySet::new(),
        }
    }
}

impl Default for FirstReaction {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine for FirstReaction {
    fn name(&self) -> &'static str {
        "first-reaction"
    }

    fn step_limit(&self) -> u64 {
        self.step_limit
    }

    fn run(
        &mut self,
        model: &CompiledModel,
        state: &mut State,
        t_end: f64,
        rng: &mut StdRng,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError> {
        if t_end < state.t {
            return Err(SimError::InvalidConfig(format!(
                "t_end {t_end} is before current time {}",
                state.t
            )));
        }
        let m = model.reaction_count();
        self.propensities.rebuild(model, state)?;
        let mut steps: u64 = 0;
        loop {
            let mut best: Option<(f64, usize)> = None;
            for r in 0..m {
                let a = self.propensities.propensity(r);
                if a <= 0.0 {
                    continue;
                }
                let u: f64 = rng.gen();
                let tau = -(1.0 - u).ln() / a;
                if best.is_none_or(|(t, _)| tau < t) {
                    best = Some((tau, r));
                }
            }
            let Some((tau, fired)) = best else {
                break; // quiescent
            };
            let t_next = state.t + tau;
            if t_next >= t_end {
                break;
            }
            observer.on_advance(t_next, &state.values);
            state.t = t_next;
            model.apply(fired, state);
            self.propensities.update_after(model, state, fired)?;
            steps += 1;
            if steps >= self.step_limit {
                return Err(SimError::StepLimitExceeded {
                    limit: self.step_limit,
                    time: state.t,
                });
            }
        }
        observer.on_advance(t_end, &state.values);
        state.t = t_end;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullObserver;
    use glc_model::ModelBuilder;
    use rand::SeedableRng;

    fn birth_death() -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", 0.0)
            .parameter("kp", 5.0)
            .parameter("kd", 0.1)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn reaches_horizon() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        FirstReaction::new()
            .run(&model, &mut state, 10.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 10.0);
    }

    #[test]
    fn matches_direct_method_statistics() {
        // Same stationary mean (Poisson, mean 50) as the direct method.
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(21);
        let mut engine = FirstReaction::new();
        engine
            .run(&model, &mut state, 200.0, &mut rng, &mut NullObserver)
            .unwrap();
        let mut sum = 0.0;
        for _ in 0..1500 {
            let t_next = state.t + 1.0;
            engine
                .run(&model, &mut state, t_next, &mut rng, &mut NullObserver)
                .unwrap();
            sum += state.values[0];
        }
        let mean = sum / 1500.0;
        assert!(
            (mean - 50.0).abs() < 3.5,
            "empirical mean {mean} too far from 50"
        );
    }

    #[test]
    fn quiescent_model_terminates() {
        let model = ModelBuilder::new("still")
            .species("X", 3.0)
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let mut state = compiled.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        FirstReaction::new()
            .run(&compiled, &mut state, 5.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 5.0);
        assert_eq!(state.values[0], 3.0);
    }
}
