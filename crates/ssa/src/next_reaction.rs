//! Gibson–Bruck next-reaction method.
//!
//! An exact SSA variant that stores one absolute tentative firing time per
//! reaction in an indexed priority queue and, after each firing, updates
//! only the reactions whose propensities actually changed (per the
//! dependency graph). Firing times of unaffected reactions are *reused*;
//! affected ones are rescaled by the propensity ratio, so the method
//! consumes one fresh random number per firing.
//!
//! Propensities live in the same [`PropensitySet`] the other exact
//! engines share (one cache, one invalidation path, batched rebuilds
//! through the model's kinetic-form bank); the engine keeps only its
//! indexed priority queue of tentative times on top. The
//! [`PropensitySet::update_after_with`] hook hands this engine each
//! dependent's old and new propensity in one pass, which is exactly
//! what the Gibson–Bruck rescale needs. A reaction whose propensity
//! returns from zero (or whose tentative time was consumed/infinite)
//! cannot be rescaled — the ratio would divide by the stale zero — so
//! that branch always takes a fresh exponential draw instead.

use crate::compiled::{CompiledModel, State};
use crate::engine::{Engine, Observer, DEFAULT_STEP_LIMIT};
use crate::error::SimError;
use crate::ipq::IndexedPriorityQueue;
use crate::propensity::PropensitySet;
use rand::rngs::StdRng;
use rand::Rng;

/// The next-reaction method.
#[derive(Debug, Clone)]
pub struct NextReaction {
    step_limit: u64,
    propensities: PropensitySet,
}

impl NextReaction {
    /// Creates a next-reaction engine with the default step limit.
    pub fn new() -> Self {
        NextReaction {
            step_limit: DEFAULT_STEP_LIMIT,
            propensities: PropensitySet::new(),
        }
    }

    fn draw_time(rng: &mut StdRng, t: f64, propensity: f64) -> f64 {
        if propensity > 0.0 {
            let u: f64 = rng.gen();
            t - (1.0 - u).ln() / propensity
        } else {
            f64::INFINITY
        }
    }
}

impl Default for NextReaction {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine for NextReaction {
    fn name(&self) -> &'static str {
        "next-reaction"
    }

    fn step_limit(&self) -> u64 {
        self.step_limit
    }

    fn run(
        &mut self,
        model: &CompiledModel,
        state: &mut State,
        t_end: f64,
        rng: &mut StdRng,
        observer: &mut dyn Observer,
    ) -> Result<(), SimError> {
        if t_end < state.t {
            return Err(SimError::InvalidConfig(format!(
                "t_end {t_end} is before current time {}",
                state.t
            )));
        }
        let m = model.reaction_count();

        // The shared set is rebuilt every run so external state edits
        // between runs (input clamping) are always picked up.
        self.propensities.rebuild(model, state)?;
        let mut times = vec![f64::INFINITY; m];
        for (r, time) in times.iter_mut().enumerate() {
            *time = Self::draw_time(rng, state.t, self.propensities.propensity(r));
        }
        let mut queue = IndexedPriorityQueue::new(times);

        let mut steps: u64 = 0;
        // `min` is `None` only for a model with zero reactions.
        while let Some((fired, t_next)) = queue.min() {
            if t_next >= t_end {
                break; // also covers the all-infinite (quiescent) case
            }
            observer.on_advance(t_next, &state.values);
            state.t = t_next;
            model.apply(fired, state);

            let t_now = state.t;
            self.propensities
                .update_after_with(model, state, fired, |dep, a_old, a_new| {
                    if dep == fired {
                        return; // handled below with a fresh draw
                    }
                    let t_dep = queue.key(dep);
                    let updated = if a_new <= 0.0 {
                        f64::INFINITY
                    } else if a_old > 0.0 && t_dep.is_finite() {
                        // Rescale the remaining waiting time by the
                        // propensity ratio (Gibson–Bruck reuse; keeps
                        // exactness with no new random number).
                        t_now + (a_old / a_new) * (t_dep - t_now)
                    } else {
                        // Resurrected from zero propensity (or an
                        // exhausted/infinite tentative time): there is
                        // no valid waiting time to rescale, so draw a
                        // fresh exponential.
                        Self::draw_time(rng, t_now, a_new)
                    };
                    queue.update(dep, updated);
                })?;

            // The fired reaction always gets a fresh exponential draw.
            // Its cache slot is current either way: `update_after_with`
            // re-evaluated it if it depends on itself, and a reaction
            // outside its own dependent set reads no slot it changed.
            let a_fired = self.propensities.propensity(fired);
            queue.update(fired, Self::draw_time(rng, state.t, a_fired));

            steps += 1;
            if steps >= self.step_limit {
                return Err(SimError::StepLimitExceeded {
                    limit: self.step_limit,
                    time: state.t,
                });
            }
        }
        observer.on_advance(t_end, &state.values);
        state.t = t_end;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullObserver;
    use glc_model::ModelBuilder;
    use rand::SeedableRng;

    fn birth_death() -> CompiledModel {
        let model = ModelBuilder::new("bd")
            .species("X", 0.0)
            .parameter("kp", 5.0)
            .parameter("kd", 0.1)
            .reaction("prod", &[], &["X"], "kp")
            .unwrap()
            .reaction("deg", &["X"], &[], "kd * X")
            .unwrap()
            .build()
            .unwrap();
        CompiledModel::new(&model).unwrap()
    }

    #[test]
    fn reaches_horizon() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        NextReaction::new()
            .run(&model, &mut state, 10.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 10.0);
    }

    #[test]
    fn stationary_mean_matches_direct_method() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(13);
        let mut engine = NextReaction::new();
        engine
            .run(&model, &mut state, 200.0, &mut rng, &mut NullObserver)
            .unwrap();
        let mut sum = 0.0;
        for _ in 0..1500 {
            let t_next = state.t + 1.0;
            engine
                .run(&model, &mut state, t_next, &mut rng, &mut NullObserver)
                .unwrap();
            sum += state.values[0];
        }
        let mean = sum / 1500.0;
        assert!(
            (mean - 50.0).abs() < 3.5,
            "empirical mean {mean} too far from 50"
        );
    }

    #[test]
    fn quiescent_model_terminates() {
        let model = ModelBuilder::new("still")
            .species("X", 3.0)
            .parameter("k", 0.0)
            .reaction("never", &[], &["X"], "k")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let mut state = compiled.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        NextReaction::new()
            .run(&compiled, &mut state, 5.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 5.0);
        assert_eq!(state.values[0], 3.0);
    }

    #[test]
    fn model_with_no_reactions_is_fine() {
        let model = ModelBuilder::new("empty")
            .species("X", 1.0)
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();
        let mut state = compiled.initial_state();
        let mut rng = StdRng::seed_from_u64(1);
        NextReaction::new()
            .run(&compiled, &mut state, 5.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 5.0);
    }

    #[test]
    fn picks_up_external_state_edits_between_runs() {
        // Clamp-style edit: set X high between segments; the rebuilt
        // queue must see the new degradation propensity.
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(5);
        let mut engine = NextReaction::new();
        engine
            .run(&model, &mut state, 1.0, &mut rng, &mut NullObserver)
            .unwrap();
        state.set_species(0, 10_000.0);
        engine
            .run(&model, &mut state, 60.0, &mut rng, &mut NullObserver)
            .unwrap();
        // After ~6 degradation half-lives from 10k, the count must have
        // collapsed back toward the stationary mean of 50.
        assert!(
            state.values[0] < 300.0,
            "degradation did not act on clamped value: {}",
            state.values[0]
        );
    }

    #[test]
    fn resurrected_reaction_gets_a_fresh_draw_on_the_shared_set() {
        // A chain where the downstream reaction's propensity repeatedly
        // collapses to zero and comes back: production refills A, and
        // conversion (rate k * A) dies whenever A hits 0. On the shared
        // set the `a_old == 0` branch must take a fresh exponential
        // draw — the propensity-ratio rescale would divide the stale
        // zero into the new propensity (0/a_new times an infinite
        // remaining wait: NaN) and wedge the reaction forever.
        let model = ModelBuilder::new("resurrect")
            .species("A", 0.0)
            .species("B", 0.0)
            .parameter("ka", 2.0)
            .parameter("k", 10.0)
            .reaction("prod_a", &[], &["A"], "ka")
            .unwrap()
            .reaction("a_to_b", &["A"], &["B"], "k * A")
            .unwrap()
            .build()
            .unwrap();
        let compiled = CompiledModel::new(&model).unwrap();

        // `a_to_b` starts at zero propensity (A = 0) and, with k >> ka,
        // drains A back to zero after nearly every production event —
        // so the run exercises resurrection from zero many times.
        let mut state = compiled.initial_state();
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = NextReaction::new();
        engine
            .run(&compiled, &mut state, 50.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.t, 50.0);
        // The resurrected reaction really fires: essentially everything
        // produced has been converted (E[B] ≈ ka * t = 100).
        assert!(
            state.values[1] > 50.0,
            "resurrected a_to_b barely fired: B = {}",
            state.values[1]
        );
        assert!(
            state.values[0] < 20.0,
            "A accumulated, conversion wedged: A = {}",
            state.values[0]
        );
        // And the whole thing is reproducible per seed.
        let mut again = compiled.initial_state();
        let mut rng = StdRng::seed_from_u64(3);
        engine
            .run(&compiled, &mut again, 50.0, &mut rng, &mut NullObserver)
            .unwrap();
        assert_eq!(state.values, again.values);
    }

    #[test]
    fn counts_stay_integral() {
        let model = birth_death();
        let mut state = model.initial_state();
        let mut rng = StdRng::seed_from_u64(2);
        struct Check;
        impl Observer for Check {
            fn on_advance(&mut self, _t: f64, values: &[f64]) {
                assert_eq!(values[0].fract(), 0.0);
            }
        }
        NextReaction::new()
            .run(&model, &mut state, 50.0, &mut rng, &mut Check)
            .unwrap();
    }
}
